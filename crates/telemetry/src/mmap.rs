//! A memory-mapped file writer and the [`EventSink`] built on it.
//!
//! [`WriteSink`] pays one `write(2)` per record and
//! [`BufferedWriteSink`](crate::BufferedWriteSink) one per buffer
//! fill; [`MmapWriteSink`] removes the write syscalls entirely. The
//! destination file is preallocated with `ftruncate`, mapped
//! `MAP_SHARED`, and records are memcpy'd straight into the mapping —
//! the kernel writes pages back on its own schedule, and the steady
//! state costs no syscalls at all. When the mapping fills, the file
//! is grown by another `ftruncate` (doubling, so growth is O(log n)
//! remaps for an n-byte log) and remapped; [`MmapWriteSink::finish`]
//! unmaps and trims the preallocation down to the bytes actually
//! written, so the finished file is byte-identical to what
//! [`BinaryLogSink`](crate::BinaryLogSink) would have accumulated in
//! memory (pinned by the 4-way differential test in `sink.rs`).
//!
//! `mmap`/`munmap` are raw syscalls on Linux/x86-64 (same
//! no-new-dependencies discipline as the engine's arena); every other
//! platform falls back to plain `write(2)` calls against the same
//! file, keeping the API and the byte stream identical.

use crate::sink::WriteSink;
use nat_engine::telemetry::{BlockEvent, EventSink, MappingEvent, TelemetryMode};
use std::any::Any;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// Default preallocation: one arena-sized chunk. Big enough that a
/// CI-scale run never remaps, small enough to be invisible on disk
/// (the trailing zeros are a sparse hole until pages are dirtied).
pub const DEFAULT_PREALLOC_BYTES: usize = 2 * 1024 * 1024;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    use std::io;

    /// `mmap(NULL, len, PROT_READ|PROT_WRITE, MAP_SHARED, fd, 0)`.
    pub unsafe fn mmap(len: usize, fd: i32) -> io::Result<*mut u8> {
        const SYS_MMAP: u64 = 9;
        const PROT_READ_WRITE: u64 = 0x3;
        const MAP_SHARED: u64 = 0x1;
        let ret: i64;
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_MMAP => ret,
            in("rdi") 0u64,
            in("rsi") len,
            in("rdx") PROT_READ_WRITE,
            in("r10") MAP_SHARED,
            in("r8") fd as i64,
            in("r9") 0u64,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as *mut u8)
        }
    }

    /// `munmap(ptr, len)`.
    pub unsafe fn munmap(ptr: *mut u8, len: usize) -> io::Result<()> {
        const SYS_MUNMAP: u64 = 11;
        let ret: i64;
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_MUNMAP => ret,
            in("rdi") ptr,
            in("rsi") len,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(())
        }
    }

    /// The raw fd behind a [`std::fs::File`].
    pub fn fd(file: &std::fs::File) -> i32 {
        use std::os::unix::io::AsRawFd;
        file.as_raw_fd()
    }
}

/// An `io::Write` over a memory-mapped, `ftruncate`-preallocated
/// file. Writes are memcpys into the mapping; growth doubles the file
/// and remaps; [`MmapWriter::finish`] unmaps and trims the file to
/// the written length. On non-Linux/x86-64 targets the same API
/// degrades to buffered `write(2)` calls (no mapping, `remaps` stays
/// 0), producing the identical byte stream.
#[derive(Debug)]
pub struct MmapWriter {
    file: File,
    /// Mapping base; null on the portable fallback (and after
    /// `finish`).
    ptr: *mut u8,
    /// Mapped (= preallocated) bytes; 0 on the fallback.
    mapped: usize,
    /// Bytes written so far — the cursor, and the final file length.
    written: usize,
    /// Grow-and-remap cycles paid so far.
    remaps: u64,
}

// SAFETY: the mapping is exclusively owned by this writer (private
// pointer, no aliasing handed out), so moving or sharing the struct
// across threads is as safe as moving the File itself.
unsafe impl Send for MmapWriter {}
unsafe impl Sync for MmapWriter {}

impl MmapWriter {
    /// Create (truncating) `path`, preallocate `capacity` bytes and
    /// map them. A zero capacity rounds up to one page's worth of
    /// usefulness ([`DEFAULT_PREALLOC_BYTES`] is the sensible
    /// default).
    pub fn create(path: &Path, capacity: usize) -> io::Result<MmapWriter> {
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let capacity = capacity.max(4096);
        let mut w = MmapWriter {
            file,
            ptr: std::ptr::null_mut(),
            mapped: 0,
            written: 0,
            remaps: 0,
        };
        w.map_to(capacity)?;
        Ok(w)
    }

    /// Preallocated bytes currently mapped (0 on the fallback path).
    pub fn mapped(&self) -> usize {
        self.mapped
    }

    /// Bytes written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Grow-and-remap cycles paid so far (0 until the first overflow,
    /// and always 0 on the fallback path).
    pub fn remaps(&self) -> u64 {
        self.remaps
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    fn map_to(&mut self, capacity: usize) -> io::Result<()> {
        self.unmap()?;
        self.file.set_len(capacity as u64)?;
        self.ptr = unsafe { sys::mmap(capacity, sys::fd(&self.file))? };
        self.mapped = capacity;
        Ok(())
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    fn unmap(&mut self) -> io::Result<()> {
        if !self.ptr.is_null() {
            let (ptr, len) = (self.ptr, self.mapped);
            self.ptr = std::ptr::null_mut();
            self.mapped = 0;
            unsafe { sys::munmap(ptr, len)? };
        }
        Ok(())
    }

    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    fn map_to(&mut self, _capacity: usize) -> io::Result<()> {
        Ok(()) // fallback: plain writes, no mapping
    }

    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    fn unmap(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Unmap and trim the preallocation to the bytes written, leaving
    /// the file byte-identical to the logical stream. Consumes the
    /// writer; the file handle is returned for callers that want to
    /// fsync or reread.
    pub fn finish(mut self) -> io::Result<File> {
        self.unmap()?;
        self.file.set_len(self.written as u64)?;
        // Drop still runs on `self`, but unmap is now a no-op and the
        // trim is idempotent; cloning the handle is the cheap way to
        // hand the file out of a type with a Drop impl.
        self.file.try_clone()
    }
}

impl Drop for MmapWriter {
    fn drop(&mut self) {
        let _ = self.unmap();
        let _ = self.file.set_len(self.written as u64);
    }
}

impl Write for MmapWriter {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    fn write(&mut self, chunk: &[u8]) -> io::Result<usize> {
        if self.written + chunk.len() > self.mapped {
            // ftruncate growth: double until the chunk fits, so an
            // n-byte log pays O(log n) remaps total.
            let mut target = self.mapped.max(4096);
            while self.written + chunk.len() > target {
                target *= 2;
            }
            self.map_to(target)?;
            self.remaps += 1;
        }
        // SAFETY: `written + chunk.len() <= mapped` after the growth
        // above, and the mapping is private to this writer.
        unsafe {
            std::ptr::copy_nonoverlapping(chunk.as_ptr(), self.ptr.add(self.written), chunk.len());
        }
        self.written += chunk.len();
        Ok(chunk.len())
    }

    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    fn write(&mut self, chunk: &[u8]) -> io::Result<usize> {
        self.file.write_all(chunk)?;
        self.written += chunk.len();
        Ok(chunk.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        // Dirty pages are the kernel's to write back; nothing buffered
        // in userspace.
        Ok(())
    }
}

/// The mmap-backed [`EventSink`]: the same event semantics, counters,
/// sticky-error behaviour, and **byte-identical** output stream as
/// [`WriteSink`], but records land in a
/// memory-mapped preallocated file — zero write syscalls in steady
/// state. [`finish`](MmapWriteSink::finish) trims the preallocation,
/// so the file on disk ends exactly at the last record.
#[derive(Debug)]
pub struct MmapWriteSink {
    inner: WriteSink<MmapWriter>,
}

impl MmapWriteSink {
    /// Create (truncating) `path` with `capacity` preallocated bytes.
    pub fn create(mode: TelemetryMode, path: &Path, capacity: usize) -> io::Result<MmapWriteSink> {
        Ok(MmapWriteSink {
            inner: WriteSink::new(mode, MmapWriter::create(path, capacity)?),
        })
    }

    pub fn mode(&self) -> TelemetryMode {
        self.inner.mode()
    }

    /// Records successfully encoded into the mapping.
    pub fn records_written(&self) -> u64 {
        self.inner.records_written()
    }

    /// Encoded bytes memcpy'd into the mapping.
    pub fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }

    /// Records dropped after the sink went sticky-failed.
    pub fn records_dropped(&self) -> u64 {
        self.inner.records_dropped()
    }

    /// The first I/O error, if any (mapping growth is the only
    /// fallible step on the hot path).
    pub fn io_error(&self) -> Option<&io::Error> {
        self.inner.io_error()
    }

    /// Grow-and-remap cycles the log's size has cost so far.
    pub fn remaps(&self) -> u64 {
        self.inner.writer().remaps()
    }

    /// Unmap, trim the file to the written length, and return the
    /// handle — or the first error the sink swallowed.
    pub fn finish(self) -> io::Result<File> {
        self.inner.finish()?.finish()
    }

    /// Recover an `MmapWriteSink` from the boxed trait object the
    /// engine hands back (`Nat::take_sink`).
    pub fn from_sink(sink: Box<dyn EventSink>) -> Option<MmapWriteSink> {
        sink.into_any().downcast::<MmapWriteSink>().ok().map(|b| *b)
    }
}

impl EventSink for MmapWriteSink {
    fn mapping_created(&mut self, event: &MappingEvent) {
        self.inner.mapping_created(event);
    }

    fn mapping_expired(&mut self, event: &MappingEvent) {
        self.inner.mapping_expired(event);
    }

    fn block_allocated(&mut self, event: &BlockEvent) {
        self.inner.block_allocated(event);
    }

    fn block_released(&mut self, event: &BlockEvent) {
        self.inner.block_released(event);
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn volume(&self) -> Option<(u64, u64)> {
        Some((self.records_written(), self.bytes_written()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::{ip, Endpoint, Protocol, SimTime};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("cgn-mmap-{}-{name}.bin", std::process::id()))
    }

    fn mapping_event(port: u16, secs: u64) -> MappingEvent {
        MappingEvent {
            at: SimTime::from_secs(secs),
            proto: Protocol::Udp,
            internal: Endpoint::new(ip(100, 64, 0, 1), 40_000),
            external: Endpoint::new(ip(198, 51, 100, 1), port),
        }
    }

    /// Growth is by ftruncate + remap, and finish trims the
    /// preallocation so the file ends exactly at the last record.
    #[test]
    fn grows_by_ftruncate_and_trims_on_finish() {
        let path = tmp("grow");
        let mut sink = MmapWriteSink::create(TelemetryMode::PerConnection, &path, 4096)
            .expect("create mapped sink");
        let mut mem = crate::BinaryLogSink::new(TelemetryMode::PerConnection);
        for k in 0..2000u16 {
            let e = mapping_event(1024 + (k % 8000), k as u64);
            sink.mapping_created(&e);
            mem.mapping_created(&e);
        }
        assert!(sink.io_error().is_none());
        assert_eq!(sink.records_written(), 2000);
        assert!(
            sink.bytes_written() > 4096,
            "must outgrow the initial preallocation"
        );
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        assert!(sink.remaps() >= 1, "growth goes through remap");
        let expected_len = sink.bytes_written();
        let file = sink.finish().expect("finish trims");
        assert_eq!(
            file.metadata().expect("metadata").len(),
            expected_len,
            "preallocation trimmed to the written bytes"
        );
        let bytes = std::fs::read(&path).expect("read back");
        assert_eq!(bytes.as_slice(), mem.log().bytes(), "byte-identical");
        let _ = std::fs::remove_file(&path);
    }

    /// Dropping without finish still trims (best effort), so aborted
    /// runs don't leave gigabytes of sparse preallocation behind.
    #[test]
    fn drop_trims_the_preallocation() {
        let path = tmp("drop");
        {
            let mut sink = MmapWriteSink::create(TelemetryMode::PerConnection, &path, 65536)
                .expect("create mapped sink");
            sink.mapping_created(&mapping_event(1024, 1));
            assert!(sink.bytes_written() > 0);
        } // dropped un-finished
        let len = std::fs::metadata(&path).expect("file exists").len();
        assert!(
            len > 0 && len < 65536,
            "drop trimmed the preallocation, kept the records ({len})"
        );
        let _ = std::fs::remove_file(&path);
    }
}
