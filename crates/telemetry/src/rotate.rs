//! Size-rotated log output: the `logrotate` shape for campaign-scale
//! CGN event logs.
//!
//! The §6.2 log-volume study projects ~75 GiB/day per million
//! subscribers under per-connection logging — no operator keeps that
//! in one file. [`RotatingWriteSink`] is the [`crate::WriteSink`]
//! family member that cuts the stream into bounded **generations**:
//! when the next record would push the current generation past
//! `max_generation_bytes`, the sink closes it and asks its factory for
//! the next writer (`log.0`, `log.1`, … for file-backed factories).
//!
//! Two properties matter and are pinned by tests:
//!
//! * **Byte identity** — one [`codec::EventLog`](crate::codec)
//!   encoder spans every generation (interned ids and delta
//!   timestamps are *not* reset at a boundary), so the concatenation
//!   of all generations is byte-identical to what a single
//!   [`WriteSink`](crate::WriteSink) would have produced. A
//!   generation is therefore a byte range of one logical stream, like
//!   a rotated syslog fragment — decode the concatenation, not a lone
//!   fragment.
//! * **Record-boundary rotation** — a generation always ends exactly
//!   between two records, never inside one, so re-assembly needs no
//!   byte surgery.
//!
//! Compression is *modeled*, not performed (the offline build has no
//! compressor): closed generations report
//! `bytes × `[`MODELED_COMPRESSION_RATIO`] as their archived size.
//! The constant is a measured property of this codec: the varint +
//! delta-timestamp + interned-id encoding already removes most field
//! redundancy, and what remains (port numbers, timestamp deltas)
//! squeezes to roughly 40% under a generic LZ pass — in line with the
//! compressed-NetFlow ratios operators plan archives around.

use crate::codec::EventLog;
use nat_engine::telemetry::{BlockEvent, EventSink, MappingEvent, TelemetryMode};
use std::any::Any;
use std::fs::File;
use std::io::Write;
use std::path::PathBuf;

/// Modeled archived-size fraction of a closed generation after a
/// generic LZ compression pass over this crate's binary codec (see
/// the module docs for why this is a constant, not a measurement).
pub const MODELED_COMPRESSION_RATIO: f64 = 0.40;

/// Accounting for one closed log generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenerationStats {
    /// Generation index (0-based, in rotation order).
    pub index: u64,
    /// Encoded bytes written into this generation.
    pub bytes: u64,
    /// Records written into this generation.
    pub records: u64,
}

impl GenerationStats {
    /// The modeled archived size of this generation
    /// (`bytes × MODELED_COMPRESSION_RATIO`, rounded up).
    pub fn compressed_bytes_modeled(&self) -> u64 {
        (self.bytes as f64 * MODELED_COMPRESSION_RATIO).ceil() as u64
    }
}

/// Produces the writer of each log generation. Implemented for any
/// `FnMut(u64) -> io::Result<W>` closure; [`FileGenerations`] is the
/// nameable file-backed factory (a concrete type matters when a
/// boxed sink must be recovered from the engine by downcast —
/// closure types cannot be named).
pub trait GenerationFactory: Send + Sync {
    type Writer: Write + Send + Sync;

    /// Open the writer for generation `generation` (0-based).
    fn open(&mut self, generation: u64) -> std::io::Result<Self::Writer>;
}

impl<W, F> GenerationFactory for F
where
    W: Write + Send + Sync,
    F: FnMut(u64) -> std::io::Result<W> + Send + Sync,
{
    type Writer = W;

    fn open(&mut self, generation: u64) -> std::io::Result<W> {
        self(generation)
    }
}

/// File-backed generations: generation `i` lives at `<stem>.<i>`
/// (the classic `access.log.0`, `access.log.1`, … layout), each
/// behind a [`std::io::BufWriter`].
#[derive(Debug, Clone)]
pub struct FileGenerations {
    /// Path stem the generation index is appended to.
    pub stem: PathBuf,
}

impl GenerationFactory for FileGenerations {
    type Writer = std::io::BufWriter<File>;

    fn open(&mut self, generation: u64) -> std::io::Result<Self::Writer> {
        let mut path = self.stem.clone().into_os_string();
        path.push(format!(".{generation}"));
        Ok(std::io::BufWriter::new(File::create(path)?))
    }
}

/// The file-backed rotating sink — nameable, so it can be installed
/// into the engine as a `Box<dyn EventSink>` and recovered by
/// downcast when the run ends.
pub type RotatingFileSink = RotatingWriteSink<FileGenerations>;

impl RotatingFileSink {
    /// A rotating sink writing generations `<stem>.0`, `<stem>.1`, …
    pub fn create(
        mode: TelemetryMode,
        max_generation_bytes: u64,
        stem: impl Into<PathBuf>,
    ) -> RotatingFileSink {
        RotatingWriteSink::new(
            mode,
            max_generation_bytes,
            FileGenerations { stem: stem.into() },
        )
    }
}

/// A size-rotating [`EventSink`] over the [`WriteSink`](crate::WriteSink)
/// family: same event semantics, counters and sticky-error behaviour,
/// but output is cut into bounded generations produced by a
/// [`GenerationFactory`]. See the module docs for the identity and
/// boundary guarantees.
///
/// The factory is called with the generation index (`0` eagerly at
/// construction, then `1, 2, …` at each rotation); a factory error
/// makes the sink sticky-failed exactly like a write error.
pub struct RotatingWriteSink<F: GenerationFactory> {
    mode: TelemetryMode,
    enc: EventLog,
    make: F,
    out: Option<F::Writer>,
    max_generation_bytes: u64,
    generation: u64,
    generation_bytes: u64,
    generation_records: u64,
    closed: Vec<GenerationStats>,
    records_written: u64,
    bytes_written: u64,
    records_dropped: u64,
    io_error: Option<std::io::Error>,
}

impl<F: GenerationFactory> RotatingWriteSink<F> {
    /// A rotating sink whose generations hold at most
    /// `max_generation_bytes` encoded bytes each (a single record
    /// larger than the cap gets a generation of its own — records are
    /// never split). Opens generation 0 eagerly so a sink that logs
    /// nothing still leaves an (empty) artifact behind, like a
    /// freshly provisioned logger.
    pub fn new(mode: TelemetryMode, max_generation_bytes: u64, mut make: F) -> Self {
        assert!(max_generation_bytes > 0, "generation cap must be non-zero");
        let (out, io_error) = match make.open(0) {
            Ok(w) => (Some(w), None),
            Err(e) => (None, Some(e)),
        };
        RotatingWriteSink {
            mode,
            enc: EventLog::new(),
            make,
            out,
            max_generation_bytes,
            generation: 0,
            generation_bytes: 0,
            generation_records: 0,
            closed: Vec::new(),
            records_written: 0,
            bytes_written: 0,
            records_dropped: 0,
            io_error,
        }
    }

    pub fn mode(&self) -> TelemetryMode {
        self.mode
    }

    /// Completed rotations so far (`cgn_log_rotations_total`).
    pub fn rotations(&self) -> u64 {
        self.closed.len() as u64
    }

    /// Accounting for every closed generation, in rotation order.
    pub fn closed_generations(&self) -> &[GenerationStats] {
        &self.closed
    }

    /// Index of the generation currently being written.
    pub fn current_generation(&self) -> u64 {
        self.generation
    }

    /// Bytes written into the current generation so far.
    pub fn current_generation_bytes(&self) -> u64 {
        self.generation_bytes
    }

    /// Records successfully encoded and handed to a writer, across
    /// all generations.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Encoded bytes across all generations.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Records dropped after the sink went sticky-failed.
    pub fn records_dropped(&self) -> u64 {
        self.records_dropped
    }

    /// The first I/O error, if any (write, flush, or factory).
    pub fn io_error(&self) -> Option<&std::io::Error> {
        self.io_error.as_ref()
    }

    /// Close the final generation: flush the current writer and return
    /// the stats of **every** generation (the last one included), or
    /// the first error the sink swallowed.
    pub fn finish(mut self) -> std::io::Result<Vec<GenerationStats>> {
        if let Some(e) = self.io_error {
            return Err(e);
        }
        if let Some(out) = self.out.as_mut() {
            out.flush()?;
        }
        let mut all = self.closed;
        all.push(GenerationStats {
            index: self.generation,
            bytes: self.generation_bytes,
            records: self.generation_records,
        });
        Ok(all)
    }

    /// Encode one record and write it to the current generation,
    /// rotating first if it would overflow the cap.
    fn record(&mut self, encode: impl FnOnce(&mut EventLog)) {
        if self.io_error.is_some() {
            self.records_dropped += 1;
            return;
        }
        encode(&mut self.enc);
        let chunk = self.enc.drain_bytes();

        // Rotate between records only: a non-empty generation that
        // cannot take the whole chunk is closed first. An oversized
        // chunk into an empty generation writes anyway — records are
        // never split across generations.
        if self.generation_bytes > 0
            && self.generation_bytes + chunk.len() as u64 > self.max_generation_bytes
        {
            if let Err(e) = self.rotate() {
                self.io_error = Some(e);
                self.records_dropped += 1;
                return;
            }
        }

        let out = self.out.as_mut().expect("writer present unless failed");
        match out.write_all(&chunk) {
            Ok(()) => {
                self.records_written += 1;
                self.bytes_written += chunk.len() as u64;
                self.generation_bytes += chunk.len() as u64;
                self.generation_records += 1;
            }
            Err(e) => {
                self.io_error = Some(e);
                self.records_dropped += 1;
            }
        }
    }

    fn rotate(&mut self) -> std::io::Result<()> {
        if let Some(out) = self.out.as_mut() {
            out.flush()?;
        }
        self.closed.push(GenerationStats {
            index: self.generation,
            bytes: self.generation_bytes,
            records: self.generation_records,
        });
        self.generation += 1;
        self.generation_bytes = 0;
        self.generation_records = 0;
        self.out = Some(self.make.open(self.generation)?);
        Ok(())
    }
}

impl<F: GenerationFactory> std::fmt::Debug for RotatingWriteSink<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RotatingWriteSink")
            .field("mode", &self.mode)
            .field("generation", &self.generation)
            .field("rotations", &self.rotations())
            .field("records_written", &self.records_written)
            .field("bytes_written", &self.bytes_written)
            .finish()
    }
}

impl<F: GenerationFactory + 'static> EventSink for RotatingWriteSink<F>
where
    F::Writer: 'static,
{
    fn mapping_created(&mut self, event: &MappingEvent) {
        if self.mode == TelemetryMode::PerConnection {
            let e = *event;
            self.record(|enc| enc.map_create(e.at, e.internal.ip, e.proto, e.external));
        }
    }

    fn mapping_expired(&mut self, event: &MappingEvent) {
        if self.mode == TelemetryMode::PerConnection {
            let e = *event;
            self.record(|enc| enc.map_expire(e.at, e.proto, e.external));
        }
    }

    fn block_allocated(&mut self, event: &BlockEvent) {
        if self.mode == TelemetryMode::PerBlock {
            let e = *event;
            self.record(|enc| {
                enc.block_alloc(
                    e.at,
                    e.subscriber,
                    e.proto,
                    e.ext_ip,
                    e.block_start,
                    e.block_len,
                )
            });
        }
    }

    fn block_released(&mut self, event: &BlockEvent) {
        if self.mode == TelemetryMode::PerBlock {
            let e = *event;
            self.record(|enc| enc.block_release(e.at, e.proto, e.ext_ip, e.block_start));
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn volume(&self) -> Option<(u64, u64)> {
        Some((self.records_written, self.bytes_written))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{BinaryLogSink, WriteSink};
    use netcore::{ip, Endpoint, Protocol, SimTime};
    use std::sync::{Arc, Mutex};

    /// A shared vec-of-generations factory: generation `i` writes into
    /// `pages[i]`.
    fn page_factory(
        pages: &Arc<Mutex<Vec<Vec<u8>>>>,
    ) -> impl FnMut(u64) -> std::io::Result<PageWriter> + Send + Sync {
        let pages = Arc::clone(pages);
        move |gen| {
            let mut p = pages.lock().unwrap();
            assert_eq!(gen as usize, p.len(), "generations open in order");
            p.push(Vec::new());
            Ok(PageWriter {
                pages: Arc::clone(&pages),
                index: gen as usize,
            })
        }
    }

    struct PageWriter {
        pages: Arc<Mutex<Vec<Vec<u8>>>>,
        index: usize,
    }

    impl Write for PageWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.pages.lock().unwrap()[self.index].extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn mapping_event(port: u16, at_ms: u64) -> MappingEvent {
        MappingEvent {
            at: SimTime::from_millis(at_ms),
            internal: Endpoint::new(ip(100, 64, 0, 7), port),
            proto: Protocol::Udp,
            external: Endpoint::new(ip(198, 18, 0, 1), port),
        }
    }

    /// The headline property: the concatenated generations are
    /// byte-identical to a single-file [`WriteSink`] stream (and to
    /// the in-memory [`BinaryLogSink`]), every rotation happens on a
    /// record boundary, and the per-generation accounting sums to the
    /// whole.
    #[test]
    fn concatenated_generations_are_byte_identical_to_single_stream() {
        let pages = Arc::new(Mutex::new(Vec::new()));
        let mut rotating = RotatingWriteSink::new(
            TelemetryMode::PerConnection,
            64, // tiny cap: force many rotations
            page_factory(&pages),
        );
        let mut single = WriteSink::new(TelemetryMode::PerConnection, Vec::<u8>::new());
        let mut reference = BinaryLogSink::new(TelemetryMode::PerConnection);

        for k in 0..200u16 {
            let at = 1_000 + k as u64 * 50;
            let e = mapping_event(10_000 + k, at);
            rotating.mapping_created(&e);
            single.mapping_created(&e);
            reference.mapping_created(&e);
            if k % 3 == 0 {
                let x = mapping_event(10_000 + k, at + 17);
                rotating.mapping_expired(&x);
                single.mapping_expired(&x);
                reference.mapping_expired(&x);
            }
        }

        assert!(rotating.rotations() > 2, "tiny cap must rotate");
        assert_eq!(rotating.records_written(), single.records_written());
        assert_eq!(rotating.bytes_written(), single.bytes_written());
        let total_records = rotating.records_written();
        let total_bytes = rotating.bytes_written();

        let generations = rotating.finish().expect("no I/O errors");
        let single_bytes = single.finish().expect("no I/O errors");
        let pages = pages.lock().unwrap();
        assert_eq!(pages.len(), generations.len());

        let mut concat = Vec::new();
        for (page, stats) in pages.iter().zip(&generations) {
            assert_eq!(page.len() as u64, stats.bytes);
            assert!(
                stats.bytes <= 64 || stats.records == 1,
                "a generation only exceeds the cap for a single oversized record"
            );
            assert!(
                stats.compressed_bytes_modeled() <= stats.bytes,
                "modeled archive never exceeds the raw bytes"
            );
            concat.extend_from_slice(page);
        }
        assert_eq!(concat, single_bytes, "concatenation == single stream");
        assert_eq!(
            concat,
            reference.log().bytes().to_vec(),
            "…and == the in-memory log"
        );
        assert_eq!(
            generations.iter().map(|g| g.records).sum::<u64>(),
            total_records,
            "per-generation records sum to the whole"
        );
        assert_eq!(
            generations.iter().map(|g| g.bytes).sum::<u64>(),
            total_bytes,
            "per-generation bytes sum to the whole"
        );

        // Record-boundary rotation: every generation prefix decodes —
        // the concatenated stream cut at each boundary is a valid
        // stream prefix.
        let mut prefix = Vec::new();
        for page in pages.iter() {
            prefix.extend_from_slice(page);
            crate::codec::decode_bytes(&prefix)
                .expect("every generation boundary is a record boundary");
        }
    }

    /// A factory error behaves exactly like a write error: the sink
    /// goes sticky-failed, later records are dropped and counted, and
    /// `finish` surfaces the error.
    #[test]
    fn factory_failure_is_sticky() {
        let mut calls = 0u64;
        let mut sink = RotatingWriteSink::new(TelemetryMode::PerConnection, 16, move |_gen| {
            calls += 1;
            if calls > 1 {
                Err(std::io::Error::other("disk full"))
            } else {
                Ok(Vec::<u8>::new())
            }
        });
        for k in 0..50u16 {
            sink.mapping_created(&mapping_event(20_000 + k, 5_000 + k as u64 * 29));
        }
        assert!(sink.io_error().is_some(), "second generation failed");
        assert!(sink.records_dropped() > 0);
        assert!(sink.finish().is_err());
    }
}
