//! The abuse-attribution query engine: "which subscriber held external
//! `IP:port` at time `T`?"
//!
//! This is the question that drives the paper's logging-volume
//! trade-off (§2): an abuse complaint arrives with an (external IP,
//! port, timestamp) triple and the operator must resolve it to exactly
//! one subscriber. A [`TraceIndex`] answers it from a decoded
//! [`EventLog`](crate::codec::EventLog):
//!
//! * **per-connection logs** — every mapping contributes a
//!   `[create, expire)` interval on its exact `(proto, IP, port)` key;
//! * **port-block logs** — every block grant contributes a
//!   `[alloc, release)` interval covering `block_len` consecutive
//!   ports; a port probe resolves through the block containing it.
//!
//! Interval semantics are half-open: a mapping expired at `T` no
//! longer owns its port at `T`, and a mapping created at `T` already
//! does — so a same-millisecond expire/create handover (port reuse
//! under churn) attributes to the new holder, exactly like the
//! sequential replay of the raw log.

use crate::codec::Record;
use netcore::{Endpoint, Protocol};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// An interval of ownership: `[start_ms, end_ms)`; still-open
/// intervals (no expire by end of log) carry `end_ms == u64::MAX`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Span {
    start_ms: u64,
    end_ms: u64,
    subscriber: Ipv4Addr,
}

/// A block grant's lifetime: `ports [start, start + len)` held by
/// `subscriber` over `[start_ms, end_ms)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockSpan {
    block_start: u16,
    block_len: u16,
    start_ms: u64,
    end_ms: u64,
    subscriber: Ipv4Addr,
}

/// Time-interval index over one or more decoded event logs.
#[derive(Debug, Default, Clone)]
pub struct TraceIndex {
    /// Exact-port intervals, per `(ext IP, proto, port)`, in log
    /// (= time) order.
    ports: HashMap<(Ipv4Addr, Protocol, u16), Vec<Span>>,
    /// Block intervals, per `(ext IP, proto)`, in log order.
    blocks: HashMap<(Ipv4Addr, Protocol), Vec<BlockSpan>>,
}

impl TraceIndex {
    /// Build the index from time-ordered records (as
    /// [`EventLog::decode`](crate::codec::EventLog::decode) yields
    /// them). Records from several shards can be combined: shard logs
    /// never share an external IP, so per-key ordering is preserved.
    pub fn build<'a>(records: impl IntoIterator<Item = &'a Record>) -> TraceIndex {
        let mut index = TraceIndex::default();
        for r in records {
            match *r {
                Record::MapCreate {
                    at_ms,
                    subscriber,
                    proto,
                    external,
                } => {
                    index
                        .ports
                        .entry((external.ip, proto, external.port))
                        .or_default()
                        .push(Span {
                            start_ms: at_ms,
                            end_ms: u64::MAX,
                            subscriber,
                        });
                }
                Record::MapExpire {
                    at_ms,
                    proto,
                    external,
                } => {
                    if let Some(spans) = index.ports.get_mut(&(external.ip, proto, external.port)) {
                        if let Some(open) = spans.iter_mut().rev().find(|s| s.end_ms == u64::MAX) {
                            open.end_ms = at_ms;
                        }
                    }
                }
                Record::BlockAlloc {
                    at_ms,
                    subscriber,
                    proto,
                    ext_ip,
                    block_start,
                    block_len,
                } => {
                    index
                        .blocks
                        .entry((ext_ip, proto))
                        .or_default()
                        .push(BlockSpan {
                            block_start,
                            block_len,
                            start_ms: at_ms,
                            end_ms: u64::MAX,
                            subscriber,
                        });
                }
                Record::BlockRelease {
                    at_ms,
                    proto,
                    ext_ip,
                    block_start,
                } => {
                    if let Some(spans) = index.blocks.get_mut(&(ext_ip, proto)) {
                        if let Some(open) = spans
                            .iter_mut()
                            .rev()
                            .find(|s| s.block_start == block_start && s.end_ms == u64::MAX)
                        {
                            open.end_ms = at_ms;
                        }
                    }
                }
            }
        }
        index
    }

    /// Exact-port intervals indexed.
    pub fn port_intervals(&self) -> usize {
        self.ports.values().map(Vec::len).sum()
    }

    /// Block intervals indexed.
    pub fn block_intervals(&self) -> usize {
        self.blocks.values().map(Vec::len).sum()
    }

    /// Resolve an abuse probe: the subscriber that held
    /// `proto`/`external` at `at_ms`, if the log can attribute it.
    /// Exact-port intervals win over block intervals (a deployment
    /// logs one kind, but a combined index handles both).
    pub fn query(&self, proto: Protocol, external: Endpoint, at_ms: u64) -> Option<Ipv4Addr> {
        if let Some(spans) = self.ports.get(&(external.ip, proto, external.port)) {
            // Log order is start order: the latest interval starting
            // at or before the probe is the only candidate (per-key
            // intervals never overlap — one port, one holder).
            let idx = spans.partition_point(|s| s.start_ms <= at_ms);
            if idx > 0 {
                let s = spans[idx - 1];
                if at_ms < s.end_ms {
                    return Some(s.subscriber);
                }
            }
        }
        if let Some(spans) = self.blocks.get(&(external.ip, proto)) {
            // Blocks with different starts interleave freely in the
            // list, so scan backward for the containing block whose
            // interval covers the probe.
            return spans
                .iter()
                .rev()
                .find(|s| {
                    external.port >= s.block_start
                        && (external.port as u32) < s.block_start as u32 + s.block_len as u32
                        && s.start_ms <= at_ms
                        && at_ms < s.end_ms
                })
                .map(|s| s.subscriber);
        }
        None
    }
}

/// Reference resolver: sequentially replay the raw records up to the
/// probe instant and report the current holder. Semantics match
/// [`TraceIndex::query`] by construction (half-open intervals, log
/// order breaking same-millisecond ties); the differential property
/// test pins the two against each other.
pub fn linear_scan(
    records: &[Record],
    proto: Protocol,
    external: Endpoint,
    at_ms: u64,
) -> Option<Ipv4Addr> {
    let mut holder: Option<Ipv4Addr> = None;
    // Current block grant covering the probed port, as
    // `(block_start, subscriber)`: a release record only carries the
    // start, so the start of the covering grant identifies whether a
    // release closes it.
    let mut block_holder: Option<(u16, Ipv4Addr)> = None;
    for r in records {
        if r.at_ms() > at_ms {
            break;
        }
        match *r {
            Record::MapCreate {
                subscriber,
                proto: p,
                external: e,
                ..
            } if p == proto && e == external => holder = Some(subscriber),
            Record::MapExpire {
                proto: p,
                external: e,
                ..
            } if p == proto && e == external => holder = None,
            Record::BlockAlloc {
                subscriber,
                proto: p,
                ext_ip,
                block_start,
                block_len,
                ..
            } if p == proto
                && ext_ip == external.ip
                && external.port >= block_start
                && (external.port as u32) < block_start as u32 + block_len as u32 =>
            {
                block_holder = Some((block_start, subscriber))
            }
            Record::BlockRelease {
                proto: p,
                ext_ip,
                block_start,
                ..
            } if p == proto
                && ext_ip == external.ip
                && block_holder.map(|(start, _)| start) == Some(block_start) =>
            {
                block_holder = None;
            }
            _ => {}
        }
    }
    holder.or(block_holder.map(|(_, s)| s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::ip;

    fn ep(port: u16) -> Endpoint {
        Endpoint::new(ip(198, 51, 100, 1), port)
    }

    fn sub(k: u8) -> Ipv4Addr {
        ip(100, 64, 0, k)
    }

    #[test]
    fn port_interval_queries_are_half_open() {
        let records = vec![
            Record::MapCreate {
                at_ms: 1_000,
                subscriber: sub(1),
                proto: Protocol::Udp,
                external: ep(2048),
            },
            Record::MapExpire {
                at_ms: 61_000,
                proto: Protocol::Udp,
                external: ep(2048),
            },
        ];
        let idx = TraceIndex::build(&records);
        assert_eq!(
            idx.query(Protocol::Udp, ep(2048), 999),
            None,
            "before create"
        );
        assert_eq!(idx.query(Protocol::Udp, ep(2048), 1_000), Some(sub(1)));
        assert_eq!(idx.query(Protocol::Udp, ep(2048), 60_999), Some(sub(1)));
        assert_eq!(
            idx.query(Protocol::Udp, ep(2048), 61_000),
            None,
            "expired at T"
        );
        assert_eq!(
            idx.query(Protocol::Tcp, ep(2048), 5_000),
            None,
            "wrong proto"
        );
        assert_eq!(
            idx.query(Protocol::Udp, ep(2049), 5_000),
            None,
            "wrong port"
        );
    }

    #[test]
    fn same_millisecond_handover_attributes_to_the_new_holder() {
        let records = vec![
            Record::MapCreate {
                at_ms: 0,
                subscriber: sub(1),
                proto: Protocol::Udp,
                external: ep(2048),
            },
            Record::MapExpire {
                at_ms: 5_000,
                proto: Protocol::Udp,
                external: ep(2048),
            },
            Record::MapCreate {
                at_ms: 5_000,
                subscriber: sub(2),
                proto: Protocol::Udp,
                external: ep(2048),
            },
        ];
        let idx = TraceIndex::build(&records);
        assert_eq!(idx.query(Protocol::Udp, ep(2048), 4_999), Some(sub(1)));
        assert_eq!(idx.query(Protocol::Udp, ep(2048), 5_000), Some(sub(2)));
    }

    #[test]
    fn open_intervals_extend_to_log_end() {
        let records = vec![Record::MapCreate {
            at_ms: 10,
            subscriber: sub(3),
            proto: Protocol::Tcp,
            external: ep(443),
        }];
        let idx = TraceIndex::build(&records);
        assert_eq!(
            idx.query(Protocol::Tcp, ep(443), u64::MAX - 1),
            Some(sub(3))
        );
    }

    #[test]
    fn block_queries_resolve_any_port_in_the_block() {
        let records = vec![
            Record::BlockAlloc {
                at_ms: 1_000,
                subscriber: sub(1),
                proto: Protocol::Udp,
                ext_ip: ip(198, 51, 100, 1),
                block_start: 2048,
                block_len: 512,
            },
            Record::BlockRelease {
                at_ms: 90_000,
                proto: Protocol::Udp,
                ext_ip: ip(198, 51, 100, 1),
                block_start: 2048,
            },
            // The same block is re-granted to someone else later.
            Record::BlockAlloc {
                at_ms: 100_000,
                subscriber: sub(2),
                proto: Protocol::Udp,
                ext_ip: ip(198, 51, 100, 1),
                block_start: 2048,
                block_len: 512,
            },
        ];
        let idx = TraceIndex::build(&records);
        assert_eq!(idx.block_intervals(), 2);
        for port in [2048u16, 2300, 2559] {
            assert_eq!(idx.query(Protocol::Udp, ep(port), 50_000), Some(sub(1)));
            assert_eq!(idx.query(Protocol::Udp, ep(port), 150_000), Some(sub(2)));
        }
        assert_eq!(
            idx.query(Protocol::Udp, ep(2560), 50_000),
            None,
            "past block end"
        );
        assert_eq!(
            idx.query(Protocol::Udp, ep(2047), 50_000),
            None,
            "before block"
        );
        assert_eq!(
            idx.query(Protocol::Udp, ep(2300), 95_000),
            None,
            "between grants"
        );
    }
}
