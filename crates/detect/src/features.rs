//! Internal-perspective feature extraction: what one subscriber
//! vantage point can learn about the translators in front of it.
//!
//! Per vantage, the extractor runs a compact probe suite against the
//! measurement lab (a fraction of a full Netalyzr session's cost, so
//! campaigns can sample hundreds of vantages against 100k-subscriber
//! worlds):
//!
//! * **K mapped flows** — repeated UDP exchanges from fresh source
//!   ports; the observed endpoints give the local-vs-mapped address
//!   comparison (STUN's observable), the port-preservation rate, and a
//!   pool-size lower bound (distinct mapped addresses — the §6.2
//!   pooling probe);
//! * **TTL hop walk** — the answering hop addresses toward the server;
//!   hops in reserved space beyond the home gateway place a translator
//!   *inside the carrier* (the 100.64.0.0/10 realm detection of §6.1,
//!   generalized to every reserved range);
//! * **UPnP** — the CPE's WAN address where the home router answers
//!   (Table 4's `IPcpe`), classified against reserved space.
//!
//! [`VantageFeatures::carrier_evidence`] combines them into the
//! carrier-translation verdict for one vantage; the per-AS classifier
//! ([`mod@crate::classify`]) votes over vantages and fuses the external
//! perspective.

use netalyzr::{probe, MeasurementLab};
use netcore::{classify_reserved, Endpoint, Prefix, ReservedRange};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::Network;
use std::net::Ipv4Addr;
use topology::Subscriber;

/// Everything one vantage point's probe suite observed.
#[derive(Debug, Clone)]
pub struct VantageFeatures {
    pub subscriber: usize,
    pub device_addr: Ipv4Addr,
    /// Reserved-range class of the device address (`None` = public).
    pub device_reserved: Option<ReservedRange>,
    /// CPE WAN address via UPnP, when the home router answers.
    pub upnp_cpe: Option<Ipv4Addr>,
    /// Observed external endpoints, one per completed flow.
    pub mapped: Vec<Endpoint>,
    /// Flows whose source port survived translation.
    pub preserved: usize,
    /// Answering hop addresses toward the server, in path order.
    pub hops: Vec<Ipv4Addr>,
    /// Whether the TTL walk reached the server.
    pub reached: bool,
}

impl VantageFeatures {
    /// Whether the path translates the source address. `None` when no
    /// flow completed (nothing can be concluded from this vantage).
    pub fn translated(&self) -> Option<bool> {
        self.mapped.first().map(|m| m.ip != self.device_addr)
    }

    /// Distinct mapped addresses across flows (pool probe).
    pub fn distinct_mapped_ips(&self) -> usize {
        let mut ips: Vec<Ipv4Addr> = self.mapped.iter().map(|m| m.ip).collect();
        ips.sort_unstable();
        ips.dedup();
        ips.len()
    }

    /// Whether the first answering hop sits in the device's own /24 —
    /// the signature of a home gateway directly in front of the device.
    pub fn first_hop_in_device_slash24(&self) -> bool {
        self.hops
            .first()
            .is_some_and(|h| Prefix::slash24_of(self.device_addr).contains(*h))
    }

    /// Reserved-space hops beyond the first — addresses inside the
    /// carrier that belong to private/shared space, i.e. a translator
    /// interface past the home gateway.
    pub fn reserved_hops_beyond_first(&self) -> usize {
        self.hops
            .iter()
            .skip(1)
            .filter(|h| classify_reserved(**h).is_some())
            .count()
    }

    /// Does this vantage see a translator *inside the carrier*?
    ///
    /// Any of: the device lives in RFC 6598 shared space; the UPnP
    /// CPE WAN address is reserved (NAT444) or differs from the mapped
    /// address; a reserved hop sits beyond the home gateway; the path
    /// translates although no home gateway fronts the device; or the
    /// mapped address changes across flows (a pool, which a one-WAN
    /// home NAT cannot produce).
    pub fn carrier_evidence(&self) -> bool {
        let translated = self.translated() == Some(true);
        if matches!(self.device_reserved, Some(ReservedRange::R100)) {
            return true;
        }
        if let Some(cpe) = self.upnp_cpe {
            if classify_reserved(cpe).is_some() {
                return true;
            }
            if translated && self.mapped.first().is_some_and(|m| m.ip != cpe) {
                return true;
            }
        }
        if self.reserved_hops_beyond_first() > 0 {
            return true;
        }
        if translated && !self.first_hop_in_device_slash24() {
            return true;
        }
        self.distinct_mapped_ips() > 1
    }

    /// Does this vantage see a home NAT (and nothing past it)?
    pub fn home_nat_evidence(&self) -> bool {
        self.translated() == Some(true)
            && self.first_hop_in_device_slash24()
            && !self.carrier_evidence()
    }
}

/// Run the probe suite from one subscriber device. `flows` mapped
/// exchanges plus one TTL walk; deterministic in `seed`.
pub fn probe_vantage(
    net: &mut Network,
    lab: &MeasurementLab,
    sub: &Subscriber,
    flows: usize,
    seed: u64,
) -> VantageFeatures {
    let mut rng = StdRng::seed_from_u64(seed);
    // A fresh ephemeral base per vantage; sequential ports so a
    // preserving translator chain is observable.
    let base: u16 = rng.gen_range(21_000..44_000);
    let mut mapped = Vec::with_capacity(flows);
    let mut preserved = 0;
    for k in 0..flows {
        let local = Endpoint::new(sub.device_addr, base + k as u16);
        if let Some(obs) = probe::udp_mapped(net, lab, sub.device_node, local) {
            if obs.port == local.port {
                preserved += 1;
            }
            mapped.push(obs);
        }
    }
    let (hops, reached) = probe::traceroute(
        net,
        lab,
        sub.device_node,
        Endpoint::new(sub.device_addr, base + flows as u16 + 7),
        20,
    );
    VantageFeatures {
        subscriber: sub.id,
        device_addr: sub.device_addr,
        device_reserved: classify_reserved(sub.device_addr),
        upnp_cpe: sub.cpe.as_ref().filter(|c| c.upnp).map(|c| c.external_ip),
        mapped,
        preserved,
        hops,
        reached,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::ip;

    fn base_features() -> VantageFeatures {
        VantageFeatures {
            subscriber: 0,
            device_addr: ip(192, 168, 1, 100),
            device_reserved: classify_reserved(ip(192, 168, 1, 100)),
            upnp_cpe: None,
            mapped: vec![Endpoint::new(ip(60, 0, 0, 9), 40_000)],
            preserved: 0,
            hops: vec![ip(192, 168, 1, 1), ip(198, 18, 0, 1)],
            reached: true,
        }
    }

    #[test]
    fn home_nat_alone_is_not_carrier_evidence() {
        let f = base_features();
        assert_eq!(f.translated(), Some(true));
        assert!(f.first_hop_in_device_slash24());
        assert!(!f.carrier_evidence());
        assert!(f.home_nat_evidence());
    }

    #[test]
    fn shared_space_device_is_carrier_evidence() {
        let mut f = base_features();
        f.device_addr = ip(100, 64, 3, 7);
        f.device_reserved = classify_reserved(f.device_addr);
        assert!(f.carrier_evidence());
    }

    #[test]
    fn reserved_hop_past_home_gateway_is_carrier_evidence() {
        let mut f = base_features();
        f.hops = vec![ip(192, 168, 1, 1), ip(198, 18, 0, 1), ip(10, 77, 0, 1)];
        assert!(f.carrier_evidence());
        assert!(!f.home_nat_evidence());
    }

    #[test]
    fn reserved_upnp_wan_is_carrier_evidence() {
        let mut f = base_features();
        f.upnp_cpe = Some(ip(100, 64, 9, 12));
        assert!(f.carrier_evidence());
    }

    #[test]
    fn translated_without_home_gateway_is_carrier_evidence() {
        // Scenario B: a naked device on routable-but-translated space.
        let mut f = base_features();
        f.device_addr = ip(1, 2, 3, 4);
        f.device_reserved = None;
        f.hops = vec![ip(198, 18, 0, 1), ip(198, 18, 0, 2)];
        assert!(f.carrier_evidence());
    }

    #[test]
    fn public_device_has_no_evidence() {
        let mut f = base_features();
        f.device_addr = ip(60, 0, 0, 9);
        f.device_reserved = None;
        f.hops = vec![ip(198, 18, 0, 1)];
        assert_eq!(f.translated(), Some(false));
        assert!(!f.carrier_evidence());
        assert!(!f.home_nat_evidence());
    }

    #[test]
    fn pooled_mappings_are_carrier_evidence() {
        let mut f = base_features();
        f.mapped = vec![
            Endpoint::new(ip(60, 0, 0, 9), 40_000),
            Endpoint::new(ip(60, 0, 0, 10), 40_001),
        ];
        assert!(f.carrier_evidence());
        assert_eq!(f.distinct_mapped_ips(), 2);
    }
}
