//! Scoring classifications against topology ground truth: per-class
//! precision/recall and the 3×3 confusion matrix.

use serde::{Deserialize, Serialize};

/// The classifier's (and ground truth's) per-AS deployment label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AsLabel {
    /// A carrier-grade NAT translates subscriber traffic.
    Cgn,
    /// Subscriber-side NAT (CPE) only; the ISP assigns public space.
    CpeNat,
    /// Subscribers hold public addresses with no NAT at all.
    Public,
}

impl AsLabel {
    pub const ALL: [AsLabel; 3] = [AsLabel::Cgn, AsLabel::CpeNat, AsLabel::Public];

    pub fn name(self) -> &'static str {
        match self {
            AsLabel::Cgn => "cgn",
            AsLabel::CpeNat => "cpe-nat",
            AsLabel::Public => "public",
        }
    }

    fn idx(self) -> usize {
        match self {
            AsLabel::Cgn => 0,
            AsLabel::CpeNat => 1,
            AsLabel::Public => 2,
        }
    }
}

/// Truth-major confusion matrix: `counts[truth][predicted]`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    pub counts: [[u64; 3]; 3],
}

impl Confusion {
    pub fn record(&mut self, truth: AsLabel, predicted: AsLabel) {
        self.counts[truth.idx()][predicted.idx()] += 1;
    }

    pub fn merge(&mut self, other: &Confusion) {
        for t in 0..3 {
            for p in 0..3 {
                self.counts[t][p] += other.counts[t][p];
            }
        }
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    fn correct(&self) -> u64 {
        (0..3).map(|i| self.counts[i][i]).sum()
    }

    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            1.0
        } else {
            self.correct() as f64 / t as f64
        }
    }

    /// Ground-truth instances of `label`.
    pub fn support(&self, label: AsLabel) -> u64 {
        self.counts[label.idx()].iter().sum()
    }

    /// Of everything predicted `label`, the fraction that truly is.
    /// `1.0` when nothing was predicted `label` (vacuous precision).
    pub fn precision(&self, label: AsLabel) -> f64 {
        let p = label.idx();
        let predicted: u64 = (0..3).map(|t| self.counts[t][p]).sum();
        if predicted == 0 {
            1.0
        } else {
            self.counts[p][p] as f64 / predicted as f64
        }
    }

    /// Of everything truly `label`, the fraction predicted so. `1.0`
    /// when the label has no ground-truth instances.
    pub fn recall(&self, label: AsLabel) -> f64 {
        let t = label.idx();
        let support = self.support(label);
        if support == 0 {
            1.0
        } else {
            self.counts[t][t] as f64 / support as f64
        }
    }
}

/// One class's row of the score table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassScore {
    pub label: AsLabel,
    pub support: u64,
    pub precision: f64,
    pub recall: f64,
}

/// Score every class of a confusion matrix.
pub fn class_scores(c: &Confusion) -> Vec<ClassScore> {
    AsLabel::ALL
        .iter()
        .map(|&label| ClassScore {
            label,
            support: c.support(label),
            precision: c.precision(label),
            recall: c.recall(label),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier_scores_one() {
        let mut c = Confusion::default();
        for l in AsLabel::ALL {
            for _ in 0..4 {
                c.record(l, l);
            }
        }
        assert_eq!(c.total(), 12);
        assert_eq!(c.accuracy(), 1.0);
        for l in AsLabel::ALL {
            assert_eq!(c.precision(l), 1.0);
            assert_eq!(c.recall(l), 1.0);
            assert_eq!(c.support(l), 4);
        }
    }

    #[test]
    fn misses_and_false_alarms_show_up() {
        let mut c = Confusion::default();
        // 3 true CGNs: 2 found, 1 called CPE (a miss).
        c.record(AsLabel::Cgn, AsLabel::Cgn);
        c.record(AsLabel::Cgn, AsLabel::Cgn);
        c.record(AsLabel::Cgn, AsLabel::CpeNat);
        // 1 CPE AS wrongly called CGN (a false alarm).
        c.record(AsLabel::CpeNat, AsLabel::Cgn);
        assert!((c.recall(AsLabel::Cgn) - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.precision(AsLabel::Cgn) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.support(AsLabel::Cgn), 3);
        assert!(c.accuracy() < 1.0);
    }

    #[test]
    fn vacuous_classes_score_one() {
        let mut c = Confusion::default();
        c.record(AsLabel::Cgn, AsLabel::Cgn);
        assert_eq!(c.precision(AsLabel::Public), 1.0);
        assert_eq!(c.recall(AsLabel::Public), 1.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Confusion::default();
        a.record(AsLabel::Cgn, AsLabel::Cgn);
        let mut b = Confusion::default();
        b.record(AsLabel::Public, AsLabel::CpeNat);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.counts[2][1], 1);
    }
}
