//! # cgn-detect — ISP-scale multi-perspective CGN detection & classification
//!
//! The paper's headline contribution is *detecting and characterizing*
//! carrier-grade NAT from two vantage families: active probes run
//! **inside** subscriber networks (Netalyzr) and passive observation
//! from **outside** (BitTorrent/DHT). This crate reproduces that loop
//! as a scored experiment campaign over controlled worlds:
//!
//! * [`features`] — the internal perspective: local-vs-mapped address
//!   comparison, RFC 6598 realm detection, TTL hop enumeration to the
//!   translator, port-preservation and pool probing via repeated
//!   sessions;
//! * [`bt_dht::observer`] (consumed here) — the external perspective:
//!   distinct peers per external address, port churn, and §6.2
//!   allocation-pattern signatures (per-connection vs. port-block vs.
//!   deterministic);
//! * [`mod@classify`] — the rule classifier fusing both into a per-AS
//!   label: CGN / CPE-only NAT / public;
//! * [`scenario`] — the controlled scenario library (NAT444, double
//!   NAT, cellular, deterministic NAT, small/large pools, EIM vs. EDM
//!   timeouts, and no-CGN controls), every CGN a sharded
//!   [`nat_engine::ShardedNat`] inside the simulated network, loaded
//!   at subscriber scale by `cgn_traffic::background`;
//! * [`campaign`] — run the library, classify every AS, and
//! * [`score`] — measure precision/recall/confusion against the
//!   topology's ground truth.
//!
//! Campaign results are deterministic per seed and bit-identical for
//! every worker-thread count.

pub mod campaign;
pub mod classify;
pub mod features;
pub mod scenario;
pub mod score;

pub use campaign::{
    run_campaign, run_scenario, AsOutcome, CampaignConfig, CampaignReport, ScenarioOutcome,
};
pub use classify::{classify, AsFeatureSummary, ClassifierConfig};
pub use features::{probe_vantage, VantageFeatures};
pub use scenario::{standard_library, ScaleParams, ScenarioConfig};
pub use score::{class_scores, AsLabel, ClassScore, Confusion};
