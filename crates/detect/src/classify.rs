//! The per-AS rule classifier: fuse internal vantage votes with the
//! external observer's view into one deployment label.
//!
//! The rules follow the paper's conservative spirit — a single noisy
//! observable must not flip an AS — while using both perspectives:
//! internal carrier evidence ([`crate::features`]) needs either
//! corroboration from a second vantage or a dominant share of the
//! sample; the external perspective alone can call a CGN when one
//! external address provably serves more peers than a home could hold
//! (the §4.1 cluster idea reduced to its sharing core).

use crate::features::VantageFeatures;
use crate::score::AsLabel;
use bt_dht::observer::{AllocationSignature, ExternalIpView};
use netcore::AsId;
use serde::{Deserialize, Serialize};

/// Classifier thresholds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassifierConfig {
    /// Distinct peers one external IP must serve before the external
    /// perspective alone declares address sharing (homes hold 1–2
    /// BitTorrent peers; CGNs multiplex tens to thousands).
    pub min_shared_peers: usize,
    /// Internal carrier votes that suffice regardless of sample share.
    pub min_carrier_votes: usize,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        ClassifierConfig {
            min_shared_peers: 4,
            min_carrier_votes: 2,
        }
    }
}

/// Per-AS fused feature summary — the classifier's input and the
/// report's per-AS observables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsFeatureSummary {
    pub as_id: AsId,
    /// Vantages probed / vantages with a completed flow.
    pub vantages: usize,
    pub usable: usize,
    /// Internal votes.
    pub carrier_votes: usize,
    pub home_votes: usize,
    pub public_votes: usize,
    /// Pool probe: distinct mapped addresses across all vantage flows.
    pub distinct_mapped_ips: usize,
    /// Mean port-preservation rate over completed flows.
    pub port_preservation: f64,
    /// External perspective over this AS's announced address space.
    pub external_ips_observed: usize,
    pub max_peers_per_ip: usize,
    /// External IPs serving at least `min_shared_peers` peers.
    pub shared_ips: usize,
    /// Predominant allocation signature over shared IPs (`-` if none).
    pub ext_signature: String,
}

impl AsFeatureSummary {
    /// Fuse one AS's vantage features and external views.
    pub fn build(
        as_id: AsId,
        vantages: &[VantageFeatures],
        external: &[&ExternalIpView],
        cfg: &ClassifierConfig,
    ) -> AsFeatureSummary {
        let usable: Vec<&VantageFeatures> = vantages
            .iter()
            .filter(|v| v.translated().is_some())
            .collect();
        let carrier_votes = usable.iter().filter(|v| v.carrier_evidence()).count();
        let home_votes = usable.iter().filter(|v| v.home_nat_evidence()).count();
        let public_votes = usable
            .iter()
            .filter(|v| v.translated() == Some(false) && !v.carrier_evidence())
            .count();
        let mut mapped_ips: Vec<std::net::Ipv4Addr> = usable
            .iter()
            .flat_map(|v| v.mapped.iter().map(|m| m.ip))
            .collect();
        mapped_ips.sort_unstable();
        mapped_ips.dedup();
        let (flows, preserved) = usable.iter().fold((0usize, 0usize), |(f, p), v| {
            (f + v.mapped.len(), p + v.preserved)
        });
        let shared: Vec<&&ExternalIpView> = external
            .iter()
            .filter(|v| v.distinct_peers >= cfg.min_shared_peers)
            .collect();
        let ext_signature = predominant_signature(&shared);
        AsFeatureSummary {
            as_id,
            vantages: vantages.len(),
            usable: usable.len(),
            carrier_votes,
            home_votes,
            public_votes,
            distinct_mapped_ips: mapped_ips.len(),
            port_preservation: if flows == 0 {
                0.0
            } else {
                preserved as f64 / flows as f64
            },
            external_ips_observed: external.len(),
            max_peers_per_ip: external.iter().map(|v| v.distinct_peers).max().unwrap_or(0),
            shared_ips: shared.len(),
            ext_signature,
        }
    }
}

/// Most common signature name across the shared addresses.
fn predominant_signature(shared: &[&&ExternalIpView]) -> String {
    let mut counts: std::collections::BTreeMap<&'static str, usize> =
        std::collections::BTreeMap::new();
    for v in shared {
        if !matches!(v.signature, AllocationSignature::Insufficient) {
            *counts.entry(v.signature.name()).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .max_by_key(|(_, n)| *n)
        .map(|(name, _)| name.to_string())
        .unwrap_or_else(|| "-".to_string())
}

/// Classify one AS.
pub fn classify(cfg: &ClassifierConfig, s: &AsFeatureSummary) -> AsLabel {
    let internal_cgn = s.carrier_votes >= 1
        && (s.carrier_votes >= cfg.min_carrier_votes || s.carrier_votes * 3 >= s.usable.max(1));
    let external_cgn = s.max_peers_per_ip >= cfg.min_shared_peers;
    if internal_cgn || external_cgn {
        AsLabel::Cgn
    } else if s.home_votes > s.public_votes {
        AsLabel::CpeNat
    } else {
        AsLabel::Public
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> AsFeatureSummary {
        AsFeatureSummary {
            as_id: AsId(1),
            vantages: 8,
            usable: 8,
            carrier_votes: 0,
            home_votes: 0,
            public_votes: 8,
            distinct_mapped_ips: 1,
            port_preservation: 1.0,
            external_ips_observed: 8,
            max_peers_per_ip: 1,
            shared_ips: 0,
            ext_signature: "-".into(),
        }
    }

    #[test]
    fn all_public_is_public() {
        let s = summary();
        assert_eq!(classify(&ClassifierConfig::default(), &s), AsLabel::Public);
    }

    #[test]
    fn home_majority_is_cpe() {
        let mut s = summary();
        s.home_votes = 7;
        s.public_votes = 1;
        assert_eq!(classify(&ClassifierConfig::default(), &s), AsLabel::CpeNat);
    }

    #[test]
    fn carrier_votes_flip_to_cgn() {
        let mut s = summary();
        s.carrier_votes = 2;
        s.home_votes = 6;
        assert_eq!(classify(&ClassifierConfig::default(), &s), AsLabel::Cgn);
    }

    #[test]
    fn lone_carrier_vote_in_large_sample_is_ignored() {
        let mut s = summary();
        s.usable = 12;
        s.vantages = 12;
        s.carrier_votes = 1;
        s.home_votes = 11;
        assert_eq!(classify(&ClassifierConfig::default(), &s), AsLabel::CpeNat);
    }

    #[test]
    fn lone_carrier_vote_in_tiny_sample_counts() {
        let mut s = summary();
        s.usable = 2;
        s.vantages = 2;
        s.carrier_votes = 1;
        s.home_votes = 1;
        s.public_votes = 0;
        assert_eq!(classify(&ClassifierConfig::default(), &s), AsLabel::Cgn);
    }

    #[test]
    fn external_sharing_alone_calls_cgn() {
        let mut s = summary();
        s.max_peers_per_ip = 40;
        s.shared_ips = 3;
        assert_eq!(classify(&ClassifierConfig::default(), &s), AsLabel::Cgn);
    }
}
