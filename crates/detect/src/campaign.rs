//! The experiment campaign: build each scenario world, load its
//! sharded CGNs, observe from both perspectives, classify every AS,
//! and score against ground truth.
//!
//! One scenario run is four phases:
//!
//! 1. **Load** — every CGN instance (a `ShardedNat` inside the simnet
//!    world) receives its subscribers' background workload through
//!    multi-threaded shard batches (`cgn_traffic::background`);
//!    announcer flows yield the external observer's sightings.
//! 2. **Observe (external)** — subscribers of NAT-free ASes send real
//!    flows through the simulated network so the observer sees their
//!    (unshared) addresses too; all sightings aggregate per external
//!    IP ([`bt_dht::observer`]) and attribute to ASes via the global
//!    routing table.
//! 3. **Probe (internal)** — sampled vantage subscribers run the
//!    compact probe suite ([`crate::features`]).
//! 4. **Classify & score** — the rule classifier fuses both
//!    perspectives per AS; predictions meet the topology's ground
//!    truth in a confusion matrix ([`crate::score`]).
//!
//! Everything is deterministic in the campaign seed and bit-identical
//! for every worker-thread count (the only parallel stage is the
//! engine's order-preserving batch scatter).

use crate::classify::{classify, AsFeatureSummary, ClassifierConfig};
use crate::features::{probe_vantage, VantageFeatures};
use crate::scenario::{standard_library, ScaleParams, ScenarioConfig};
use crate::score::{class_scores, AsLabel, ClassScore, Confusion};
use bt_dht::observer::{observe, ExternalIpView, Sighting};
use cgn_traffic::background;
use nat_engine::sharded::mix64;
use netalyzr::MeasurementLab;
use netcore::{AsId, Endpoint, Packet, SimDuration};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use topology::{AsDeployment, Subscriber, World};

/// Campaign configuration: seed, scale and classifier thresholds.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    pub seed: u64,
    pub scale: ScaleParams,
    pub classifier: ClassifierConfig,
}

impl CampaignConfig {
    /// Test/CI scale (seconds of wall time).
    pub fn quick(seed: u64) -> CampaignConfig {
        CampaignConfig {
            seed,
            scale: ScaleParams::quick(),
            classifier: ClassifierConfig::default(),
        }
    }

    /// The acceptance scale: ≥100k subscribers across the library.
    pub fn standard(seed: u64) -> CampaignConfig {
        CampaignConfig {
            seed,
            scale: ScaleParams::standard(),
            classifier: ClassifierConfig::default(),
        }
    }

    /// Override the worker-thread count of every load stage (an
    /// execution detail; results never depend on it).
    pub fn with_threads(mut self, threads: usize) -> CampaignConfig {
        self.scale.threads = threads;
        self
    }
}

/// One AS's outcome: fused features, prediction, truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsOutcome {
    pub as_name: String,
    pub truth: AsLabel,
    pub predicted: AsLabel,
    pub features: AsFeatureSummary,
}

/// One scenario's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    pub name: String,
    pub subscribers: u64,
    pub cgn_instances: usize,
    /// Shards per CGN instance (0 when the scenario deploys none).
    pub shards_per_instance: u16,
    /// Background-load totals across the scenario's CGN instances.
    pub flows_offered: u64,
    pub flows_admitted: u64,
    pub flows_blocked: u64,
    /// External sightings collected (both load-driven and direct).
    pub sightings: u64,
    pub ases: Vec<AsOutcome>,
    pub confusion: Confusion,
}

/// The whole campaign's report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    pub seed: u64,
    pub scenarios: Vec<ScenarioOutcome>,
    pub confusion: Confusion,
    pub scores: Vec<ClassScore>,
    pub total_subscribers: u64,
    pub total_flows: u64,
    pub accuracy: f64,
    pub cgn_precision: f64,
    pub cgn_recall: f64,
}

impl CampaignReport {
    /// Deterministic fingerprint (the determinism tests' observable).
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in format!("{self:?}").bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut o = String::new();
        let _ = writeln!(
            o,
            "CGN detection campaign — seed {} | {} scenarios | {} ASes | {} subscribers | {} load flows",
            self.seed,
            self.scenarios.len(),
            self.confusion.total(),
            self.total_subscribers,
            self.total_flows,
        );
        for s in &self.scenarios {
            let _ = writeln!(
                o,
                "\n---- scenario: {} {}",
                s.name,
                "-".repeat(56usize.saturating_sub(s.name.len()))
            );
            let _ = writeln!(
                o,
                "{} subscribers | {} CGN instance(s) × {} shard(s) | load: {} offered, {} blocked | {} sightings",
                s.subscribers,
                s.cgn_instances,
                s.shards_per_instance,
                s.flows_offered,
                s.flows_blocked,
                s.sightings
            );
            let _ = writeln!(
                o,
                "  {:<22} {:>8} {:>10}   {:>3}C/{:>3}H/{:>3}P votes  {:>4} peers/IP  {:>9}  sig",
                "AS", "truth", "predicted", "", "", "", "", "pool≥"
            );
            for a in &s.ases {
                let f = &a.features;
                let _ = writeln!(
                    o,
                    "  {:<22} {:>8} {:>10}   {:>3}/{:>4}/{:>4} of {:<3}  {:>4}        {:>5}      {}",
                    a.as_name,
                    a.truth.name(),
                    a.predicted.name(),
                    f.carrier_votes,
                    f.home_votes,
                    f.public_votes,
                    f.usable,
                    f.max_peers_per_ip,
                    f.distinct_mapped_ips,
                    f.ext_signature,
                );
            }
        }
        let _ = writeln!(o, "\n---- scores (all scenarios pooled) ----");
        let _ = writeln!(o, "confusion (rows = truth, cols = predicted):");
        let _ = writeln!(
            o,
            "  {:<9} {:>6} {:>8} {:>8}",
            "", "cgn", "cpe-nat", "public"
        );
        for (t, label) in AsLabel::ALL.iter().enumerate() {
            let c = &self.confusion.counts[t];
            let _ = writeln!(
                o,
                "  {:<9} {:>6} {:>8} {:>8}",
                label.name(),
                c[0],
                c[1],
                c[2]
            );
        }
        for sc in &self.scores {
            let _ = writeln!(
                o,
                "{:<9} precision {:.3} | recall {:.3} | support {}",
                sc.label.name(),
                sc.precision,
                sc.recall,
                sc.support
            );
        }
        let _ = writeln!(
            o,
            "accuracy {:.3} | CGN precision {:.3} | CGN recall {:.3}",
            self.accuracy, self.cgn_precision, self.cgn_recall
        );
        o
    }
}

/// Ground truth for one AS.
fn truth_label(dep: &AsDeployment, subscribers: &[Subscriber]) -> AsLabel {
    if dep.has_cgn() {
        return AsLabel::Cgn;
    }
    let cpe_lines = dep
        .subscriber_ids
        .iter()
        .filter(|id| subscribers[**id].cpe.is_some())
        .count();
    if cpe_lines * 2 >= dep.subscriber_ids.len().max(1) {
        AsLabel::CpeNat
    } else {
        AsLabel::Public
    }
}

/// The internal host address a CGN sees for one subscriber line.
fn line_internal_addr(sub: &Subscriber) -> std::net::Ipv4Addr {
    sub.cpe
        .as_ref()
        .map(|c| c.external_ip)
        .unwrap_or(sub.device_addr)
}

/// Run one scenario end to end.
pub fn run_scenario(sc: &ScenarioConfig, classifier: &ClassifierConfig) -> ScenarioOutcome {
    let mut world = World::build(sc.topology.clone());
    let lab_base = {
        let a = world.next_service_addr();
        for _ in 1..MeasurementLab::SERVICE_ADDRS {
            let _ = world.next_service_addr();
        }
        a
    };
    let lab = MeasurementLab::install(&mut world.net, lab_base);
    let observer_ep = Endpoint::new(world.next_service_addr(), 6881);
    let observer_node = world
        .net
        .add_host(simnet::RealmId::PUBLIC, observer_ep.ip, vec![]);
    let _ = observer_node;

    // ---- Phase 1: background load through every sharded CGN. ----
    let mut sightings: Vec<Sighting> = Vec::new();
    let mut flows_offered = 0u64;
    let mut flows_admitted = 0u64;
    let mut flows_blocked = 0u64;
    let mut cgn_instances = 0usize;
    let mut shards_per_instance = 0u16;
    for (di, dep) in world.deployments.iter().enumerate() {
        for (ii, inst) in dep.cgn_instances.iter().enumerate() {
            let hosts: Vec<std::net::Ipv4Addr> = dep
                .subscriber_ids
                .iter()
                .map(|id| &world.subscribers[*id])
                .filter(|s| s.cgn_instance == Some(ii))
                .map(line_internal_addr)
                .collect();
            if hosts.is_empty() {
                continue;
            }
            cgn_instances += 1;
            shards_per_instance = shards_per_instance.max(inst.shards);
            let mut load = sc.load.clone();
            load.seed = sc.load.seed ^ mix64(((di as u64) << 8) | ii as u64);
            let start = world.net.now();
            let summary = background::drive(
                world.net.nat_sharded_mut(inst.nat_node),
                &hosts,
                start,
                &load,
            );
            flows_offered += summary.flows_offered;
            flows_admitted += summary.flows_admitted;
            flows_blocked += summary.flows_blocked;
            sightings.extend(summary.observations.iter().map(|o| Sighting {
                peer: mix64(((di as u64) << 40) ^ ((ii as u64) << 32) ^ o.peer as u64),
                internal: o.internal,
                external: o.external,
                at_ms: o.at_ms,
            }));
        }
    }

    // ---- Phase 2: NAT-free ASes seen by the observer directly. ----
    // Their subscribers' real flows traverse the simulated network
    // (CPE translation included), so the observer's per-address peer
    // counts stay honest for the negative classes.
    let no_cgn: Vec<(usize, Vec<usize>)> = world
        .deployments
        .iter()
        .enumerate()
        .filter(|(_, d)| !d.has_cgn())
        .map(|(di, d)| (di, d.subscriber_ids.clone()))
        .collect();
    for round in 0..3u64 {
        for (di, sub_ids) in &no_cgn {
            for (k, id) in sub_ids.iter().enumerate() {
                if k % 2 != 0 {
                    continue; // announce_share ≈ 0.5
                }
                let sub = &world.subscribers[*id];
                let port = 20_000 + ((mix64(*id as u64 ^ round) % 40_000) as u16);
                let src = Endpoint::new(sub.device_addr, port);
                let deliveries = world.net.send(
                    sub.device_node,
                    Packet::udp(src, observer_ep, b"BT".to_vec()),
                );
                for d in deliveries {
                    if d.pkt.dst == observer_ep {
                        sightings.push(Sighting {
                            peer: mix64(((*di as u64) << 40) ^ 0xF00D ^ *id as u64),
                            internal: sub.device_addr,
                            external: d.pkt.src,
                            at_ms: world.net.now().as_millis(),
                        });
                    }
                }
            }
        }
        world.net.advance(SimDuration::from_secs(40));
    }

    // ---- External aggregation, attributed per AS. ----
    let views: Vec<ExternalIpView> = observe(&sightings);
    let mut views_by_as: BTreeMap<AsId, Vec<&ExternalIpView>> = BTreeMap::new();
    for v in &views {
        if let Some(as_id) = world.routing.origin_of(v.ip) {
            views_by_as.entry(as_id).or_default().push(v);
        }
    }

    // ---- Phase 3 + 4: internal probes, classification, scoring. ----
    let mut ases = Vec::new();
    let mut confusion = Confusion::default();
    let mut subscribers_total = 0u64;
    let deployment_ids: Vec<AsId> = world.deployments.iter().map(|d| d.info.id).collect();
    for as_id in deployment_ids {
        let dep = world.deployment(as_id).expect("listed above").clone();
        subscribers_total += dep.subscriber_ids.len() as u64;
        let n = dep.subscriber_ids.len();
        let step = (n / sc.vantages_per_as.max(1)).max(1);
        let vantage_ids: Vec<usize> = dep
            .subscriber_ids
            .iter()
            .step_by(step)
            .take(sc.vantages_per_as)
            .copied()
            .collect();
        let features: Vec<VantageFeatures> = vantage_ids
            .iter()
            .map(|id| {
                let sub = world.subscribers[*id].clone();
                probe_vantage(
                    &mut world.net,
                    &lab,
                    &sub,
                    sc.probe_flows,
                    mix64(sc.seed ^ mix64(*id as u64 + 1)),
                )
            })
            .collect();
        let empty = Vec::new();
        let external = views_by_as.get(&as_id).unwrap_or(&empty);
        let summary = AsFeatureSummary::build(as_id, &features, external, classifier);
        let predicted = classify(classifier, &summary);
        let truth = truth_label(&dep, &world.subscribers);
        confusion.record(truth, predicted);
        ases.push(AsOutcome {
            as_name: dep.info.name.clone(),
            truth,
            predicted,
            features: summary,
        });
    }

    ScenarioOutcome {
        name: sc.name.clone(),
        subscribers: subscribers_total,
        cgn_instances,
        shards_per_instance,
        flows_offered,
        flows_admitted,
        flows_blocked,
        sightings: sightings.len() as u64,
        ases,
        confusion,
    }
}

/// Run the standard scenario library at the configured scale.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let library = standard_library(cfg.seed, &cfg.scale);
    let scenarios: Vec<ScenarioOutcome> = library
        .iter()
        .map(|sc| run_scenario(sc, &cfg.classifier))
        .collect();
    let mut confusion = Confusion::default();
    let mut total_subscribers = 0;
    let mut total_flows = 0;
    for s in &scenarios {
        confusion.merge(&s.confusion);
        total_subscribers += s.subscribers;
        total_flows += s.flows_offered;
    }
    let scores = class_scores(&confusion);
    CampaignReport {
        seed: cfg.seed,
        accuracy: confusion.accuracy(),
        cgn_precision: confusion.precision(AsLabel::Cgn),
        cgn_recall: confusion.recall(AsLabel::Cgn),
        scenarios,
        confusion,
        scores,
        total_subscribers,
        total_flows,
    }
}
