//! The scenario library: controlled worlds the campaign classifies
//! and scores against ground truth.
//!
//! Every scenario is a full `topology` world — ASes, routing, sharded
//! CGN deployments, CPE markets, subscribers — with the deployment
//! policy pinned to the configuration under test
//! ([`topology::CgnPolicyOverride`]): NAT444 mixes, pure double NAT,
//! cellular carrier-only realms, deterministic NAT (RFC 7422),
//! port-block allocation on a small pool, arbitrary pooling on a
//! large pool, EIM vs. EDM mapping with short/unmeasurable timeouts,
//! and two no-CGN controls (CPE-only and public) that keep the
//! false-positive axis honest.

use cgn_traffic::{BackgroundLoad, WorkloadMix};
use nat_engine::{FilteringBehavior, MappingBehavior, Pooling, PortAllocation};
use serde::{Deserialize, Serialize};
use topology::{CgnPolicyOverride, TopologyConfig};

/// Scale knobs shared by every scenario of a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleParams {
    /// Instrumented eyeball ASes per scenario.
    pub ases_per_scenario: usize,
    /// Subscribers per AS (uniform range).
    pub subscribers_per_as: (usize, usize),
    /// State shards per CGN instance.
    pub cgn_shards: u16,
    /// Internal vantage points sampled per AS.
    pub vantages_per_as: usize,
    /// Mapped flows per vantage (the repeated-session probe).
    pub probe_flows: usize,
    /// Background-load window per scenario (virtual seconds).
    pub load_duration_secs: u64,
    /// Worker threads for background-load batches.
    pub threads: usize,
}

impl ScaleParams {
    /// Test/CI scale: a few hundred subscribers per scenario, seconds
    /// of wall time in debug builds.
    pub fn quick() -> ScaleParams {
        ScaleParams {
            ases_per_scenario: 3,
            subscribers_per_as: (40, 60),
            cgn_shards: 2,
            vantages_per_as: 8,
            probe_flows: 6,
            load_duration_secs: 90,
            threads: 1,
        }
    }

    /// The acceptance scale: ≥100k subscribers across the library,
    /// every CGN instance a 4-shard `ShardedNat`.
    pub fn standard() -> ScaleParams {
        ScaleParams {
            ases_per_scenario: 4,
            subscribers_per_as: (3_900, 4_300),
            cgn_shards: 4,
            vantages_per_as: 12,
            probe_flows: 6,
            load_duration_secs: 180,
            threads: 0, // one worker per core
        }
    }

    /// Total subscribers a library of `n` scenarios will simulate, at
    /// the midpoint of the per-AS range.
    pub fn expected_subscribers(&self, scenarios: usize) -> u64 {
        let mid = (self.subscribers_per_as.0 + self.subscribers_per_as.1) as u64 / 2;
        scenarios as u64 * self.ases_per_scenario as u64 * mid
    }
}

/// One scenario: a named topology plus its load shape.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    pub name: String,
    pub topology: TopologyConfig,
    pub load: BackgroundLoad,
    pub vantages_per_as: usize,
    pub probe_flows: usize,
    pub seed: u64,
}

/// Spread `n` ASes across the five per-RIR slots.
fn spread(n: usize) -> [usize; 5] {
    let mut out = [0usize; 5];
    for i in 0..n {
        out[i % 5] += 1;
    }
    out
}

/// Base topology for a scenario: `n` eyeball ASes of one kind, no
/// silent padding, scenario-scale subscribers, sharded CGNs.
fn base(seed: u64, scale: &ScaleParams, cellular: bool) -> TopologyConfig {
    let mut t = TopologyConfig::default_with_seed(seed);
    let n = scale.ases_per_scenario;
    t.residential_per_rir = spread(if cellular { 0 } else { n });
    t.cellular_per_rir = spread(if cellular { n } else { 0 });
    t.silent_as_ratio = 1;
    t.subscribers_per_as = scale.subscribers_per_as;
    t.cgn_shards = scale.cgn_shards;
    t.cpe_models = 20;
    t.p_second_bt_device = 0.0;
    t
}

fn load(scale: &ScaleParams, cellular: bool, seed: u64) -> BackgroundLoad {
    BackgroundLoad {
        mix: if cellular {
            WorkloadMix::cellular_daytime()
        } else {
            WorkloadMix::residential_evening()
        },
        duration_secs: scale.load_duration_secs,
        epoch_secs: 30,
        threads: scale.threads,
        announce_share: 0.4,
        max_observations_per_host: 6,
        seed,
    }
}

struct Shape {
    name: &'static str,
    cellular: bool,
    /// P(CGN) for the scenario's AS kind (1.0 or 0.0 — scenarios are
    /// controlled experiments, not mixtures).
    p_cgn: f64,
    /// P(a residential subscriber has a CPE router).
    p_cpe: f64,
    policy: Option<CgnPolicyOverride>,
}

/// The standard scenario library (10 scenarios). The required shapes
/// — NAT444, double NAT, deterministic NAT, small/large pools, EIM
/// vs. EDM timeouts, and no-CGN controls — each get a world.
pub fn standard_library(seed: u64, scale: &ScaleParams) -> Vec<ScenarioConfig> {
    let shapes = [
        // NAT444 mix: most homes behind a CPE, all behind the CGN.
        Shape {
            name: "nat444",
            cellular: false,
            p_cgn: 1.0,
            p_cpe: 0.65,
            policy: None,
        },
        // Pure double NAT: every line CPE + CGN.
        Shape {
            name: "double-nat",
            cellular: false,
            p_cgn: 1.0,
            p_cpe: 1.0,
            policy: None,
        },
        // Cellular carrier realm: naked devices behind deep paths.
        Shape {
            name: "cellular-cgn",
            cellular: true,
            p_cgn: 1.0,
            p_cpe: 0.0,
            policy: None,
        },
        // RFC 7422 deterministic NAT, auto-sized blocks, bridged lines.
        Shape {
            name: "deterministic-nat",
            cellular: false,
            p_cgn: 1.0,
            p_cpe: 0.0,
            policy: Some(CgnPolicyOverride {
                port_alloc: Some(PortAllocation::Deterministic { ports_per_host: 0 }),
                pooling: Some(Pooling::Paired),
                ..CgnPolicyOverride::default()
            }),
        },
        // Bulk port blocks on a deliberately small pool.
        Shape {
            name: "port-block-small-pool",
            cellular: false,
            p_cgn: 1.0,
            p_cpe: 0.3,
            policy: Some(CgnPolicyOverride {
                port_alloc: Some(PortAllocation::PortBlock { block_size: 1024 }),
                pool_size: Some((8, 8)),
                ..CgnPolicyOverride::default()
            }),
        },
        // Arbitrary pooling over a large pool (the pooling probe).
        Shape {
            name: "large-pool-arbitrary",
            cellular: false,
            p_cgn: 1.0,
            p_cpe: 0.3,
            policy: Some(CgnPolicyOverride {
                port_alloc: Some(PortAllocation::Random),
                pooling: Some(Pooling::Arbitrary),
                pool_size: Some((48, 64)),
                ..CgnPolicyOverride::default()
            }),
        },
        // EDM: symmetric mapping with a short timeout.
        Shape {
            name: "edm-short-timeout",
            cellular: false,
            p_cgn: 1.0,
            p_cpe: 0.5,
            policy: Some(CgnPolicyOverride {
                mapping: Some(MappingBehavior::AddressAndPortDependent),
                filtering: Some(FilteringBehavior::AddressAndPortDependent),
                udp_timeout_secs: Some(30),
                ..CgnPolicyOverride::default()
            }),
        },
        // EIM: endpoint-independent with a timeout beyond the probe
        // horizon.
        Shape {
            name: "eim-long-timeout",
            cellular: false,
            p_cgn: 1.0,
            p_cpe: 0.5,
            policy: Some(CgnPolicyOverride {
                mapping: Some(MappingBehavior::EndpointIndependent),
                filtering: Some(FilteringBehavior::EndpointIndependent),
                udp_timeout_secs: Some(600),
                ..CgnPolicyOverride::default()
            }),
        },
        // Control: no CGN, homes behind CPE routers.
        Shape {
            name: "cpe-only-control",
            cellular: false,
            p_cgn: 0.0,
            p_cpe: 0.95,
            policy: None,
        },
        // Control: no CGN, naked public devices (cellular, no CPE).
        Shape {
            name: "public-control",
            cellular: true,
            p_cgn: 0.0,
            p_cpe: 0.0,
            policy: None,
        },
    ];

    shapes
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let sseed = seed ^ ((i as u64 + 1) * 0x9E37_79B9);
            let mut t = base(sseed, scale, s.cellular);
            if s.cellular {
                t.p_cgn_cellular_per_rir = [s.p_cgn; 5];
                t.partial_deployment_cellular = (1.0, 1.0);
            } else {
                t.p_cgn_residential_per_rir = [s.p_cgn; 5];
                t.partial_deployment = (1.0, 1.0);
            }
            t.p_cpe_residential = s.p_cpe;
            t.p_bridged_modem_isp = 0.0;
            t.cgn_policy = s.policy;
            ScenarioConfig {
                name: s.name.to_string(),
                topology: t,
                load: load(scale, s.cellular, sseed ^ 0x10AD),
                vantages_per_as: scale.vantages_per_as,
                probe_flows: scale.probe_flows,
                seed: sseed,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_covers_required_shapes() {
        let lib = standard_library(7, &ScaleParams::quick());
        assert!(lib.len() >= 6);
        let names: Vec<&str> = lib.iter().map(|s| s.name.as_str()).collect();
        for required in [
            "nat444",
            "double-nat",
            "deterministic-nat",
            "cpe-only-control",
        ] {
            assert!(names.contains(&required), "{required} missing");
        }
        // Controls really deploy no CGN; experiments always do.
        for s in &lib {
            let t = &s.topology;
            let p = if t.cellular_per_rir.iter().sum::<usize>() > 0 {
                t.p_cgn_cellular_per_rir[0]
            } else {
                t.p_cgn_residential_per_rir[0]
            };
            if s.name.ends_with("control") {
                assert_eq!(p, 0.0, "{}", s.name);
            } else {
                assert_eq!(p, 1.0, "{}", s.name);
            }
        }
    }

    #[test]
    fn standard_scale_reaches_acceptance_floor() {
        let scale = ScaleParams::standard();
        let lib = standard_library(1, &scale);
        assert!(
            scale.expected_subscribers(lib.len()) >= 100_000,
            "standard library must simulate at least 100k subscribers"
        );
        assert!(scale.cgn_shards >= 2, "CGNs must actually be sharded");
    }

    #[test]
    fn seeds_differ_per_scenario() {
        let lib = standard_library(3, &ScaleParams::quick());
        let mut seeds: Vec<u64> = lib.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), lib.len());
    }
}
