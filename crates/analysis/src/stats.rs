//! Small statistics toolkit: histograms, quantiles, box plots.

use serde::{Deserialize, Serialize};

/// A fixed-bin-width histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    pub bin_width: u64,
    /// Counts per bin; bin `i` covers `[i*w, (i+1)*w)`.
    pub bins: Vec<u64>,
    pub total: u64,
}

impl Histogram {
    pub fn new(bin_width: u64, max_value: u64) -> Histogram {
        assert!(bin_width > 0);
        let n = (max_value / bin_width + 1) as usize;
        Histogram {
            bin_width,
            bins: vec![0; n],
            total: 0,
        }
    }

    pub fn add(&mut self, v: u64) {
        let idx = (v / self.bin_width) as usize;
        let idx = idx.min(self.bins.len() - 1); // clamp overflow into last bin
        self.bins[idx] += 1;
        self.total += 1;
    }

    pub fn from_values(
        bin_width: u64,
        max_value: u64,
        values: impl IntoIterator<Item = u64>,
    ) -> Histogram {
        let mut h = Histogram::new(bin_width, max_value);
        for v in values {
            h.add(v);
        }
        h
    }

    /// Normalized frequency per bin.
    pub fn normalized(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.bins.len()];
        }
        self.bins
            .iter()
            .map(|c| *c as f64 / self.total as f64)
            .collect()
    }

    /// The most frequent bin's lower edge.
    pub fn mode_bin(&self) -> Option<u64> {
        let (idx, max) = self
            .bins
            .iter()
            .enumerate()
            .max_by_key(|(i, c)| (**c, usize::MAX - *i))?;
        if *max == 0 {
            None
        } else {
            Some(idx as u64 * self.bin_width)
        }
    }
}

/// Five-number summary for box plots (Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxplotStats {
    pub min: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub max: f64,
    pub n: usize,
}

impl BoxplotStats {
    /// Compute from unsorted samples; `None` if empty.
    pub fn from_samples(samples: &[f64]) -> Option<BoxplotStats> {
        if samples.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = samples.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
        Some(BoxplotStats {
            min: v[0],
            q1: quantile_sorted(&v, 0.25),
            median: quantile_sorted(&v, 0.5),
            q3: quantile_sorted(&v, 0.75),
            max: v[v.len() - 1],
            n: v.len(),
        })
    }
}

/// Linear-interpolated quantile of a sorted slice.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=1.0).contains(&q));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// The statistical mode of a list of integers (ties broken toward the
/// smaller value). Used per-AS in Fig. 12 ("an AS is represented by its
/// most frequent timeout value").
pub fn mode(values: &[u64]) -> Option<u64> {
    if values.is_empty() {
        return None;
    }
    let mut counts: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
    for v in values {
        *counts.entry(*v).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|(v, _)| v)
}

/// Percentage rendering helper.
pub fn pct(numerator: usize, denominator: usize) -> f64 {
    if denominator == 0 {
        0.0
    } else {
        100.0 * numerator as f64 / denominator as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(10, 100);
        for v in [0, 5, 9, 10, 95, 100, 150] {
            h.add(v);
        }
        assert_eq!(h.bins[0], 3); // 0,5,9
        assert_eq!(h.bins[1], 1); // 10
        assert_eq!(h.bins[9], 1); // 95
                                  // 100 and 150 clamp into the last bin (index 10).
        assert_eq!(h.bins[10], 2);
        assert_eq!(h.total, 7);
    }

    #[test]
    fn histogram_normalized_sums_to_one() {
        let h = Histogram::from_values(5, 50, [1, 2, 3, 49, 50]);
        let sum: f64 = h.normalized().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_mode() {
        let h = Histogram::from_values(10, 100, [65, 62, 68, 30, 95]);
        assert_eq!(h.mode_bin(), Some(60));
        assert_eq!(Histogram::new(10, 100).mode_bin(), None);
    }

    #[test]
    fn boxplot_five_numbers() {
        let s = BoxplotStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.n, 5);
        assert!(BoxplotStats::from_samples(&[]).is_none());
    }

    #[test]
    fn quantile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(quantile_sorted(&v, 0.5), 5.0);
        assert_eq!(quantile_sorted(&v, 0.0), 0.0);
        assert_eq!(quantile_sorted(&v, 1.0), 10.0);
        assert_eq!(quantile_sorted(&[7.0], 0.3), 7.0);
    }

    #[test]
    fn mode_prefers_most_frequent_then_smallest() {
        assert_eq!(mode(&[65, 65, 30]), Some(65));
        assert_eq!(mode(&[10, 20]), Some(10), "tie → smaller");
        assert_eq!(mode(&[]), None);
    }

    #[test]
    fn pct_handles_zero_denominator() {
        assert_eq!(pct(1, 0), 0.0);
        assert!((pct(1, 3) - 33.333).abs() < 0.01);
    }

    proptest! {
        /// Histogram total always equals the number of samples; all mass
        /// is in bins.
        #[test]
        fn prop_histogram_conserves_mass(values in proptest::collection::vec(0u64..1000, 0..200)) {
            let h = Histogram::from_values(7, 500, values.clone());
            prop_assert_eq!(h.total as usize, values.len());
            prop_assert_eq!(h.bins.iter().sum::<u64>() as usize, values.len());
        }

        /// Quantiles are monotone and bounded by min/max.
        #[test]
        fn prop_quantiles_monotone(mut values in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            values.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let q25 = quantile_sorted(&values, 0.25);
            let q50 = quantile_sorted(&values, 0.5);
            let q75 = quantile_sorted(&values, 0.75);
            prop_assert!(values[0] <= q25 && q25 <= q50 && q50 <= q75);
            prop_assert!(q75 <= values[values.len() - 1]);
        }

        /// Box plots agree with quantiles.
        #[test]
        fn prop_boxplot_consistent(values in proptest::collection::vec(0f64..100.0, 1..50)) {
            let s = BoxplotStats::from_samples(&values).unwrap();
            prop_assert!(s.min <= s.q1 && s.q1 <= s.median);
            prop_assert!(s.median <= s.q3 && s.q3 <= s.max);
            prop_assert_eq!(s.n, values.len());
        }
    }
}
