//! Leak-graph clustering (§4.1, Figs 3 and 4).
//!
//! For each AS the paper builds a bipartite graph: vertices are peers,
//! edges connect a *leaking* peer (public external IP) to the *internal*
//! peers it reported. The largest connected component reveals NAT pooling:
//! home NATs produce isolated stars (one external IP per internal peer),
//! while CGNs produce clusters spanning many external IPs with shared
//! internal peers.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Union–find over dense indices.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    pub fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

/// A bipartite leak graph for one AS and one reserved range.
#[derive(Debug, Default, Clone)]
pub struct LeakGraph {
    /// Dense vertex ids: leakers get even slots, internals odd — the map
    /// below tracks both sides separately.
    leakers: HashMap<Ipv4Addr, usize>,
    internals: HashMap<Ipv4Addr, usize>,
    edges: Vec<(usize, usize)>,
}

/// Size of a connected component in (external IPs, internal IPs) — the
/// coordinates of one point in Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSummary {
    pub external_ips: usize,
    pub internal_ips: usize,
}

impl LeakGraph {
    pub fn new() -> LeakGraph {
        LeakGraph::default()
    }

    /// Record a leak edge: `leaker` (public IP) reported `internal`.
    pub fn add_edge(&mut self, leaker: Ipv4Addr, internal: Ipv4Addr) {
        let next = self.leakers.len() + self.internals.len();
        let l = *self.leakers.entry(leaker).or_insert(next);
        let next = self.leakers.len() + self.internals.len();
        let i = *self.internals.entry(internal).or_insert(next);
        self.edges.push((l, i));
    }

    pub fn leaker_count(&self) -> usize {
        self.leakers.len()
    }

    pub fn internal_count(&self) -> usize {
        self.internals.len()
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Sizes of all connected components, largest first.
    pub fn components(&self) -> Vec<ClusterSummary> {
        let n = self.leakers.len() + self.internals.len();
        if n == 0 {
            return Vec::new();
        }
        let mut uf = UnionFind::new(n);
        for (a, b) in &self.edges {
            uf.union(*a, *b);
        }
        let mut ext: HashMap<usize, usize> = HashMap::new();
        let mut int: HashMap<usize, usize> = HashMap::new();
        for idx in self.leakers.values() {
            *ext.entry(uf.find(*idx)).or_insert(0) += 1;
        }
        for idx in self.internals.values() {
            *int.entry(uf.find(*idx)).or_insert(0) += 1;
        }
        let mut roots: Vec<usize> = ext.keys().chain(int.keys()).copied().collect();
        roots.sort_unstable();
        roots.dedup();
        let mut out: Vec<ClusterSummary> = roots
            .into_iter()
            .map(|r| ClusterSummary {
                external_ips: ext.get(&r).copied().unwrap_or(0),
                internal_ips: int.get(&r).copied().unwrap_or(0),
            })
            .collect();
        out.sort_by_key(|c| std::cmp::Reverse((c.external_ips, c.internal_ips)));
        out
    }

    /// The largest connected component (by external, then internal IPs).
    pub fn largest_component(&self) -> Option<ClusterSummary> {
        self.components().into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::ip;
    use proptest::prelude::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(!uf.connected(0, 1));
        assert!(uf.union(0, 1));
        assert!(uf.connected(0, 1));
        assert!(!uf.union(0, 1), "already joined");
        uf.union(2, 3);
        uf.union(1, 2);
        assert!(uf.connected(0, 3));
        assert!(!uf.connected(0, 4));
    }

    /// Fig. 3(a): isolated stars — every internal peer leaked by exactly
    /// one external IP (home NATs).
    #[test]
    fn isolated_stars_have_small_components() {
        let mut g = LeakGraph::new();
        for i in 0..10u8 {
            g.add_edge(ip(7, 0, 0, i), ip(192, 168, 1, 100 + i));
        }
        let comps = g.components();
        assert_eq!(comps.len(), 10);
        for c in comps {
            assert_eq!(c.external_ips, 1);
            assert_eq!(c.internal_ips, 1);
        }
        assert_eq!(
            g.largest_component().unwrap(),
            ClusterSummary {
                external_ips: 1,
                internal_ips: 1
            }
        );
    }

    /// Fig. 3(b): pooling — multiple external IPs leaking overlapping
    /// internal peers form one big cluster.
    #[test]
    fn pooled_leaks_form_one_cluster() {
        let mut g = LeakGraph::new();
        // 6 external pool IPs each leak an overlapping set of internals.
        for e in 0..6u8 {
            for i in 0..8u8 {
                g.add_edge(ip(8, 0, 0, e), ip(100, 64, 0, i));
            }
        }
        let comps = g.components();
        assert_eq!(comps.len(), 1);
        assert_eq!(
            comps[0],
            ClusterSummary {
                external_ips: 6,
                internal_ips: 8
            }
        );
    }

    /// Overlap only via a shared internal peer still merges clusters.
    #[test]
    fn chain_overlap_merges() {
        let mut g = LeakGraph::new();
        g.add_edge(ip(1, 0, 0, 1), ip(10, 0, 0, 1));
        g.add_edge(ip(1, 0, 0, 2), ip(10, 0, 0, 1)); // shares internal .1
        g.add_edge(ip(1, 0, 0, 2), ip(10, 0, 0, 2));
        g.add_edge(ip(1, 0, 0, 3), ip(10, 0, 0, 2)); // shares internal .2
        let comps = g.components();
        assert_eq!(comps.len(), 1);
        assert_eq!(
            comps[0],
            ClusterSummary {
                external_ips: 3,
                internal_ips: 2
            }
        );
    }

    #[test]
    fn duplicate_edges_do_not_inflate() {
        let mut g = LeakGraph::new();
        for _ in 0..5 {
            g.add_edge(ip(1, 0, 0, 1), ip(10, 0, 0, 1));
        }
        assert_eq!(g.leaker_count(), 1);
        assert_eq!(g.internal_count(), 1);
        assert_eq!(
            g.largest_component().unwrap(),
            ClusterSummary {
                external_ips: 1,
                internal_ips: 1
            }
        );
    }

    #[test]
    fn same_address_space_both_sides() {
        // An IP can appear as both leaker and internal in weird data; the
        // two sides are tracked separately.
        let mut g = LeakGraph::new();
        g.add_edge(ip(10, 0, 0, 1), ip(10, 0, 0, 1));
        assert_eq!(g.leaker_count(), 1);
        assert_eq!(g.internal_count(), 1);
        let c = g.largest_component().unwrap();
        assert_eq!(
            c,
            ClusterSummary {
                external_ips: 1,
                internal_ips: 1
            }
        );
    }

    #[test]
    fn empty_graph() {
        let g = LeakGraph::new();
        assert!(g.components().is_empty());
        assert!(g.largest_component().is_none());
    }

    proptest! {
        /// Component external/internal totals equal the vertex totals.
        #[test]
        fn prop_components_partition(
            edges in proptest::collection::vec((0u8..20, 0u8..20), 1..100)
        ) {
            let mut g = LeakGraph::new();
            for (e, i) in &edges {
                g.add_edge(ip(1, 1, 1, *e), ip(10, 0, 0, *i));
            }
            let comps = g.components();
            let ext_sum: usize = comps.iter().map(|c| c.external_ips).sum();
            let int_sum: usize = comps.iter().map(|c| c.internal_ips).sum();
            prop_assert_eq!(ext_sum, g.leaker_count());
            prop_assert_eq!(int_sum, g.internal_count());
            // Components are sorted descending.
            for w in comps.windows(2) {
                prop_assert!(
                    (w[0].external_ips, w[0].internal_ips) >= (w[1].external_ips, w[1].internal_ips)
                );
            }
        }

        /// Union-find find() is idempotent and stable under unions.
        #[test]
        fn prop_union_find(ops in proptest::collection::vec((0usize..50, 0usize..50), 0..200)) {
            let mut uf = UnionFind::new(50);
            for (a, b) in &ops {
                uf.union(*a, *b);
            }
            for (a, b) in &ops {
                prop_assert!(uf.connected(*a, *b));
            }
            for x in 0..50 {
                let r = uf.find(x);
                prop_assert_eq!(uf.find(r), r, "roots are fixed points");
            }
        }
    }
}
