//! NAT placement analysis (§6.4, Fig. 11) and the TTL-test detection
//! rates (Table 7).

use crate::obs::SessionObs;
use netcore::AsId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The three AS groups of Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsGroup {
    NonCellularNoCgn,
    NonCellularCgn,
    CellularCgn,
}

impl AsGroup {
    pub fn label(self) -> &'static str {
        match self {
            AsGroup::NonCellularNoCgn => "non-cellular no CGN",
            AsGroup::NonCellularCgn => "non-cellular CGN",
            AsGroup::CellularCgn => "cellular CGN",
        }
    }
}

/// Fig. 11: per AS, the hop distance of the most distant detected NAT;
/// aggregated per group as a fraction-of-ASes histogram over 1..=10+.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Fig11 {
    /// Per group: counts of ASes whose most distant NAT is at hop 1..=9,
    /// with index 9 collecting "≥ 10".
    pub per_group: BTreeMap<String, [usize; 10]>,
}

impl Fig11 {
    /// Fractions per group (sums to 1 within a group with data).
    pub fn fractions(&self, group: AsGroup) -> Option<[f64; 10]> {
        let counts = self.per_group.get(group.label())?;
        let total: usize = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let mut out = [0.0; 10];
        for (i, c) in counts.iter().enumerate() {
            out[i] = *c as f64 / total as f64;
        }
        Some(out)
    }
}

/// Compute Fig. 11 from the sessions and the CGN-positive AS predicate.
pub fn fig11(sessions: &[SessionObs], cgn_positive: impl Fn(AsId) -> bool) -> Fig11 {
    // Most distant NAT per AS.
    let mut per_as: BTreeMap<AsId, (bool, usize)> = BTreeMap::new();
    for s in sessions {
        let Some(a) = s.as_id else { continue };
        let Some(ttl) = &s.ttl else { continue };
        let Some(max_hop) = ttl.detected.iter().map(|d| d.hop).max() else {
            continue;
        };
        let e = per_as.entry(a).or_insert((s.cellular, 0));
        e.1 = e.1.max(max_hop);
    }
    let mut fig = Fig11::default();
    for (a, (cellular, hop)) in per_as {
        let group = if cellular {
            // Cellular ASes are virtually all CGN; non-CGN cellular ASes
            // are too rare to plot (the paper shows three groups).
            AsGroup::CellularCgn
        } else if cgn_positive(a) {
            AsGroup::NonCellularCgn
        } else {
            AsGroup::NonCellularNoCgn
        };
        let bucket = hop.clamp(1, 10) - 1;
        fig.per_group
            .entry(group.label().to_string())
            .or_insert([0; 10])[bucket] += 1;
    }
    fig
}

/// Table 7: detection rates of the TTL-driven enumeration over all
/// sessions that ran it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Table7 {
    pub sessions: usize,
    /// Address mismatch and at least one expired mapping found (67.6%).
    pub mismatch_detected: usize,
    /// Address mismatch but no expired mapping within the budget (30.9%).
    pub mismatch_not_detected: usize,
    /// Address match yet a stateful middlebox found (0.5%).
    pub match_detected: usize,
    /// Address match, nothing found (0.9%).
    pub match_not_detected: usize,
}

impl Table7 {
    pub fn rates(&self) -> [(String, f64); 4] {
        let n = self.sessions.max(1) as f64;
        [
            (
                "IP mismatch, NAT detected".into(),
                100.0 * self.mismatch_detected as f64 / n,
            ),
            (
                "IP mismatch, no NAT detected".into(),
                100.0 * self.mismatch_not_detected as f64 / n,
            ),
            (
                "IP match, NAT detected".into(),
                100.0 * self.match_detected as f64 / n,
            ),
            (
                "IP match, no NAT detected".into(),
                100.0 * self.match_not_detected as f64 / n,
            ),
        ]
    }
}

pub fn table7(sessions: &[SessionObs]) -> Table7 {
    let mut t = Table7::default();
    for s in sessions {
        let Some(ttl) = &s.ttl else { continue };
        t.sessions += 1;
        let found = !ttl.detected.is_empty();
        match (ttl.ip_mismatch, found) {
            (true, true) => t.mismatch_detected += 1,
            (true, false) => t.mismatch_not_detected += 1,
            (false, true) => t.match_detected += 1,
            (false, false) => t.match_not_detected += 1,
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{TtlNatObs, TtlObs};
    use netcore::ip;

    fn session(as_n: u32, cellular: bool, mismatch: bool, hops: &[usize]) -> SessionObs {
        let mut s = SessionObs::skeleton(AsId(as_n), cellular, ip(100, 64, 0, 5));
        s.ttl = Some(TtlObs {
            path_len: 8,
            ip_mismatch: mismatch,
            detected: hops
                .iter()
                .map(|h| TtlNatObs {
                    hop: *h,
                    timeout_gt_secs: 60,
                    timeout_le_secs: 70,
                })
                .collect(),
        });
        s
    }

    #[test]
    fn fig11_groups_and_max_distance() {
        let sessions = vec![
            session(1, false, true, &[1]),    // no-CGN AS, CPE at hop 1
            session(2, false, true, &[1, 4]), // CGN AS, most distant 4
            session(2, false, true, &[1, 3]), // same AS, smaller — max stays 4
            session(3, true, true, &[7]),     // cellular
        ];
        let f = fig11(&sessions, |a| a == AsId(2));
        let no_cgn = f.fractions(AsGroup::NonCellularNoCgn).unwrap();
        assert_eq!(no_cgn[0], 1.0, "hop-1 bucket holds the whole group");
        let cgn = f.fractions(AsGroup::NonCellularCgn).unwrap();
        assert_eq!(cgn[3], 1.0, "most distant = 4");
        let cell = f.fractions(AsGroup::CellularCgn).unwrap();
        assert_eq!(cell[6], 1.0);
    }

    #[test]
    fn fig11_clamps_distance_ten_plus() {
        let sessions = vec![session(1, true, true, &[13])];
        let f = fig11(&sessions, |_| true);
        let cell = f.fractions(AsGroup::CellularCgn).unwrap();
        assert_eq!(cell[9], 1.0, "≥10 bucket");
    }

    #[test]
    fn fig11_skips_sessions_without_detections() {
        let sessions = vec![session(1, false, true, &[])];
        let f = fig11(&sessions, |_| false);
        assert!(f.fractions(AsGroup::NonCellularNoCgn).is_none());
    }

    #[test]
    fn table7_quadrants() {
        let sessions = vec![
            session(1, false, true, &[3]),  // mismatch + detected
            session(1, false, true, &[]),   // mismatch, none found
            session(2, false, false, &[1]), // match + detected (firewall)
            session(2, false, false, &[]),  // match, none
            session(3, false, true, &[1]),  // mismatch + detected
        ];
        let t = table7(&sessions);
        assert_eq!(t.sessions, 5);
        assert_eq!(t.mismatch_detected, 2);
        assert_eq!(t.mismatch_not_detected, 1);
        assert_eq!(t.match_detected, 1);
        assert_eq!(t.match_not_detected, 1);
        let rates = t.rates();
        assert!((rates[0].1 - 40.0).abs() < 1e-9);
        let sum: f64 = rates.iter().map(|(_, v)| v).sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }
}
