//! BitTorrent-based CGN detection (§4.1, Fig. 4).
//!
//! From the crawl's leak records, build a per-AS, per-reserved-range leak
//! graph and apply the paper's conservative boundary: an AS is
//! CGN-positive when its largest connected cluster contains **at least
//! five public IPs and five internal IPs** within a single internal range.
//! Internal peers leaked by more than one AS are discarded first (the VPN
//! filter).

use crate::graph::{ClusterSummary, LeakGraph};
use crate::obs::BtLeakObs;
use netcore::{AsId, ReservedRange};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::net::Ipv4Addr;

/// Detector thresholds (paper defaults).
#[derive(Debug, Clone)]
pub struct BtDetector {
    /// Minimum distinct public IPs in the largest cluster (5).
    pub min_external_ips: usize,
    /// Minimum distinct internal IPs in the largest cluster (5).
    pub min_internal_ips: usize,
    /// Drop internal peers leaked from several ASes (VPN filter).
    pub exclusive_single_as: bool,
}

impl Default for BtDetector {
    fn default() -> Self {
        BtDetector {
            min_external_ips: 5,
            min_internal_ips: 5,
            exclusive_single_as: true,
        }
    }
}

/// Leak analysis of one AS.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsLeakAnalysis {
    /// Largest connected cluster per reserved range (Fig. 4 coordinates).
    pub largest_per_range: BTreeMap<ReservedRange, ClusterSummary>,
    /// Distinct leaking public IPs in this AS.
    pub leaking_ips: usize,
    /// Distinct internal IPs leaked in this AS (after the VPN filter).
    pub internal_ips: usize,
    /// Whether the detection boundary is crossed.
    pub cgn_positive: bool,
    /// The range(s) whose cluster crossed the boundary.
    pub positive_ranges: Vec<ReservedRange>,
}

/// The full detection result.
#[derive(Debug, Clone, Default)]
pub struct BtDetection {
    pub per_as: BTreeMap<AsId, AsLeakAnalysis>,
}

impl BtDetection {
    /// The set of CGN-positive ASes.
    pub fn positive_ases(&self) -> BTreeSet<AsId> {
        self.per_as
            .iter()
            .filter(|(_, a)| a.cgn_positive)
            .map(|(id, _)| *id)
            .collect()
    }

    /// All ASes with any (filtered) leakage.
    pub fn ases_with_leakage(&self) -> BTreeSet<AsId> {
        self.per_as.keys().copied().collect()
    }
}

impl BtDetector {
    /// Run detection over the leak records.
    pub fn detect(&self, leaks: &[BtLeakObs]) -> BtDetection {
        // VPN filter: which (range, internal IP) pairs were leaked from
        // more than one AS?
        let mut leaked_by: HashMap<(ReservedRange, Ipv4Addr), BTreeSet<AsId>> = HashMap::new();
        for l in leaks {
            if let Some(a) = l.leaker_as {
                leaked_by
                    .entry((l.range, l.internal_ip))
                    .or_default()
                    .insert(a);
            }
        }
        let multi_as: HashSet<(ReservedRange, Ipv4Addr)> = leaked_by
            .into_iter()
            .filter(|(_, ases)| ases.len() > 1)
            .map(|(k, _)| k)
            .collect();

        // Per-(AS, range) graphs.
        let mut graphs: BTreeMap<(AsId, ReservedRange), LeakGraph> = BTreeMap::new();
        let mut leakers_per_as: BTreeMap<AsId, HashSet<Ipv4Addr>> = BTreeMap::new();
        let mut internals_per_as: BTreeMap<AsId, HashSet<Ipv4Addr>> = BTreeMap::new();
        for l in leaks {
            let Some(as_id) = l.leaker_as else { continue };
            if self.exclusive_single_as && multi_as.contains(&(l.range, l.internal_ip)) {
                continue;
            }
            graphs
                .entry((as_id, l.range))
                .or_default()
                .add_edge(l.leaker_ip, l.internal_ip);
            leakers_per_as.entry(as_id).or_default().insert(l.leaker_ip);
            internals_per_as
                .entry(as_id)
                .or_default()
                .insert(l.internal_ip);
        }

        let mut per_as: BTreeMap<AsId, AsLeakAnalysis> = BTreeMap::new();
        for ((as_id, range), graph) in &graphs {
            let largest = graph.largest_component().unwrap_or(ClusterSummary {
                external_ips: 0,
                internal_ips: 0,
            });
            let entry = per_as.entry(*as_id).or_insert_with(|| AsLeakAnalysis {
                largest_per_range: BTreeMap::new(),
                leaking_ips: leakers_per_as.get(as_id).map(|s| s.len()).unwrap_or(0),
                internal_ips: internals_per_as.get(as_id).map(|s| s.len()).unwrap_or(0),
                cgn_positive: false,
                positive_ranges: Vec::new(),
            });
            entry.largest_per_range.insert(*range, largest);
            if largest.external_ips >= self.min_external_ips
                && largest.internal_ips >= self.min_internal_ips
            {
                entry.cgn_positive = true;
                entry.positive_ranges.push(*range);
            }
        }
        BtDetection { per_as }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::ip;

    fn leak(as_n: u32, leaker_last: u8, internal: Ipv4Addr) -> BtLeakObs {
        BtLeakObs {
            leaker_ip: ip(50, as_n as u8, 0, leaker_last),
            leaker_as: Some(AsId(as_n)),
            internal_ip: internal,
            range: netcore::classify_reserved(internal).expect("internal addr reserved"),
        }
    }

    /// A Comcast-like AS: many leakers, each leaking its own home peer.
    #[test]
    fn isolated_home_leakage_not_flagged() {
        let leaks: Vec<BtLeakObs> = (0..50u8)
            .map(|i| leak(7922, i, ip(192, 168, 1, 100 + (i % 100))))
            .collect();
        let det = BtDetector::default().detect(&leaks);
        let a = &det.per_as[&AsId(7922)];
        assert!(!a.cgn_positive, "home stars must not trigger detection");
        let c = a.largest_per_range[&ReservedRange::R192];
        assert_eq!(c.external_ips, 1);
    }

    /// A FastWEB-like AS: overlapping leaks across ≥5 pool IPs.
    #[test]
    fn pooled_leakage_flagged() {
        let mut leaks = Vec::new();
        for e in 0..6u8 {
            for i in 0..7u8 {
                leaks.push(leak(12874, e, ip(100, 64, 0, 10 + i)));
            }
        }
        let det = BtDetector::default().detect(&leaks);
        let a = &det.per_as[&AsId(12874)];
        assert!(a.cgn_positive);
        assert_eq!(a.positive_ranges, vec![ReservedRange::R100]);
        assert_eq!(det.positive_ases().len(), 1);
    }

    /// Boundary cases: 4×5 and 5×4 clusters stay below the threshold.
    #[test]
    fn detection_boundary_is_five_by_five() {
        for (n_ext, n_int, expect) in [(4, 9, false), (9, 4, false), (5, 5, true)] {
            let mut leaks = Vec::new();
            for e in 0..n_ext {
                for i in 0..n_int {
                    leaks.push(leak(1, e, ip(10, 0, 0, 10 + i)));
                }
            }
            let det = BtDetector::default().detect(&leaks);
            assert_eq!(
                det.per_as[&AsId(1)].cgn_positive,
                expect,
                "ext={n_ext} int={n_int}"
            );
        }
    }

    /// The VPN filter: an internal peer leaked from two ASes is discarded
    /// in both.
    #[test]
    fn cross_as_leaks_excluded() {
        let mut leaks = Vec::new();
        // AS 1 would be positive on its own…
        for e in 0..6u8 {
            for i in 0..6u8 {
                leaks.push(leak(1, e, ip(10, 0, 0, 10 + i)));
            }
        }
        // …but every internal peer is also reported from AS 2 (VPN-like).
        for i in 0..6u8 {
            leaks.push(leak(2, 0, ip(10, 0, 0, 10 + i)));
        }
        let det = BtDetector::default().detect(&leaks);
        assert!(det.per_as.get(&AsId(1)).is_none_or(|a| !a.cgn_positive));
        // Disabling the filter restores the detection.
        let loose = BtDetector {
            exclusive_single_as: false,
            ..BtDetector::default()
        };
        let det = loose.detect(&leaks);
        assert!(det.per_as[&AsId(1)].cgn_positive);
    }

    /// Ranges are analysed independently: clusters must not merge across
    /// 10X and 100X.
    #[test]
    fn ranges_kept_separate() {
        let mut leaks = Vec::new();
        for e in 0..3u8 {
            for i in 0..6u8 {
                leaks.push(leak(9, e, ip(10, 0, 0, 10 + i)));
            }
        }
        for e in 3..6u8 {
            for i in 0..6u8 {
                leaks.push(leak(9, e, ip(100, 64, 0, 10 + i)));
            }
        }
        let det = BtDetector::default().detect(&leaks);
        let a = &det.per_as[&AsId(9)];
        assert!(
            !a.cgn_positive,
            "3 external IPs per range is under the boundary"
        );
        assert_eq!(a.largest_per_range.len(), 2);
    }

    #[test]
    fn unrouted_leakers_ignored() {
        let leaks = vec![BtLeakObs {
            leaker_ip: ip(50, 1, 0, 1),
            leaker_as: None,
            internal_ip: ip(10, 0, 0, 1),
            range: ReservedRange::R10,
        }];
        let det = BtDetector::default().detect(&leaks);
        assert!(det.per_as.is_empty());
    }
}
