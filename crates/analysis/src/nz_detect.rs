//! Netalyzr-based CGN detection (§4.2, Fig. 5).
//!
//! **Cellular**: there is no equipment between the device and the ISP, so
//! the classification of the ISP-assigned `IPdev` directly indicates
//! translation. An AS needs at least five sessions before we trust the
//! conclusion.
//!
//! **Non-cellular**: NAT444 hides the CGN behind the home NAT, so the
//! detector uses the UPnP-reported CPE WAN address: sessions with
//! `IPcpe ≠ IPpub` indicate *some* second translator; the top-10 device
//! /24 filter removes cascaded home NATs; and a CGN is declared only when
//! an AS has `N ≥ 10` candidate sessions spanning at least `0.4·N`
//! distinct `/24`s of `IPcpe` (address diversity that small home cascades
//! cannot produce).

use crate::addr_class::classify_addr;
use crate::obs::SessionObs;
use netcore::{AsId, Prefix, ReservedRange, RoutingTable};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Cellular detector parameters.
#[derive(Debug, Clone)]
pub struct NzCellularDetector {
    /// Minimum sessions per AS (5 in the paper).
    pub min_sessions: usize,
}

impl Default for NzCellularDetector {
    fn default() -> Self {
        NzCellularDetector { min_sessions: 5 }
    }
}

/// Per-AS cellular result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellularAsResult {
    pub sessions: usize,
    pub translated_sessions: usize,
    pub public_sessions: usize,
    pub cgn_positive: bool,
}

impl CellularAsResult {
    /// The paper's three per-AS assignment classes: exclusively internal,
    /// exclusively public, or mixed.
    pub fn assignment_class(&self) -> &'static str {
        if self.translated_sessions == self.sessions {
            "exclusively internal"
        } else if self.public_sessions == self.sessions {
            "exclusively public"
        } else {
            "mixed"
        }
    }
}

impl NzCellularDetector {
    pub fn detect(
        &self,
        sessions: &[SessionObs],
        routing: &RoutingTable,
    ) -> BTreeMap<AsId, CellularAsResult> {
        let mut per_as: BTreeMap<AsId, Vec<&SessionObs>> = BTreeMap::new();
        for s in sessions.iter().filter(|s| s.cellular) {
            if let Some(a) = s.as_id {
                per_as.entry(a).or_default().push(s);
            }
        }
        per_as
            .into_iter()
            .filter(|(_, ss)| ss.len() >= self.min_sessions)
            .map(|(a, ss)| {
                let translated = ss
                    .iter()
                    .filter(|s| classify_addr(s.ip_dev, s.ip_pub, routing).indicates_translation())
                    .count();
                let public = ss.len() - translated;
                (
                    a,
                    CellularAsResult {
                        sessions: ss.len(),
                        translated_sessions: translated,
                        public_sessions: public,
                        cgn_positive: translated > 0,
                    },
                )
            })
            .collect()
    }
}

/// Non-cellular detector parameters.
#[derive(Debug, Clone)]
pub struct NzNonCellularDetector {
    /// Minimum candidate sessions per AS (10 in the paper).
    pub min_sessions: usize,
    /// Required /24 diversity as a fraction of candidate sessions (0.4).
    pub diversity_factor: f64,
    /// Size of the device-assignment /24 exclusion list (10).
    pub top_blocks: usize,
}

impl Default for NzNonCellularDetector {
    fn default() -> Self {
        NzNonCellularDetector {
            min_sessions: 10,
            diversity_factor: 0.4,
            top_blocks: 10,
        }
    }
}

/// Per-AS non-cellular result — one point of Fig. 5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NonCellularAsResult {
    /// Sessions with UPnP-reported `IPcpe`.
    pub upnp_sessions: usize,
    /// Candidate sessions after all filters (`IPcpe ≠ IPpub`, not in a
    /// top device block).
    pub candidate_sessions: usize,
    /// Distinct /24s of candidate `IPcpe`s.
    pub cpe_slash24s: usize,
    /// Reserved ranges those candidates fall in (Fig. 5 panels / Fig. 7).
    pub ranges: BTreeSet<ReservedRange>,
    pub cgn_positive: bool,
}

impl NzNonCellularDetector {
    /// The top-N /24 blocks from which CPE devices assign device
    /// addresses ("covering 95% of assignments"). Computed from the
    /// `IPdev` corpus of non-cellular sessions.
    pub fn top_device_blocks(&self, sessions: &[SessionObs]) -> Vec<Prefix> {
        let mut counts: HashMap<Prefix, usize> = HashMap::new();
        for s in sessions.iter().filter(|s| !s.cellular) {
            *counts.entry(Prefix::slash24_of(s.ip_dev)).or_insert(0) += 1;
        }
        let mut blocks: Vec<(Prefix, usize)> = counts.into_iter().collect();
        blocks.sort_by_key(|(p, c)| (std::cmp::Reverse(*c), *p));
        blocks
            .into_iter()
            .take(self.top_blocks)
            .map(|(p, _)| p)
            .collect()
    }

    pub fn detect(
        &self,
        sessions: &[SessionObs],
        routing: &RoutingTable,
    ) -> BTreeMap<AsId, NonCellularAsResult> {
        let top = self.top_device_blocks(sessions);
        let mut per_as: BTreeMap<AsId, Vec<&SessionObs>> = BTreeMap::new();
        for s in sessions
            .iter()
            .filter(|s| !s.cellular && s.ip_cpe.is_some())
        {
            if let Some(a) = s.as_id {
                per_as.entry(a).or_default().push(s);
            }
        }
        per_as
            .into_iter()
            .map(|(a, ss)| {
                let mut candidates: Vec<&&SessionObs> = Vec::new();
                for s in &ss {
                    let cpe = s.ip_cpe.expect("filtered above");
                    // Candidate: the CPE's WAN address is not the public
                    // address — some second translator is at work…
                    let translated = match s.ip_pub {
                        Some(p) => p != cpe,
                        None => classify_addr(cpe, None, routing).indicates_translation(),
                    };
                    if !translated {
                        continue;
                    }
                    // …and it does not look like another home device
                    // assignment.
                    if top.iter().any(|b| b.contains(cpe)) {
                        continue;
                    }
                    candidates.push(s);
                }
                let slash24s: HashSet<Prefix> = candidates
                    .iter()
                    .map(|s| Prefix::slash24_of(s.ip_cpe.expect("candidate has cpe")))
                    .collect();
                let ranges: BTreeSet<ReservedRange> = candidates
                    .iter()
                    .filter_map(|s| netcore::classify_reserved(s.ip_cpe.expect("candidate")))
                    .collect();
                let n = candidates.len();
                let positive = n >= self.min_sessions
                    && slash24s.len() as f64 >= self.diversity_factor * n as f64;
                (
                    a,
                    NonCellularAsResult {
                        upnp_sessions: ss.len(),
                        candidate_sessions: n,
                        cpe_slash24s: slash24s.len(),
                        ranges,
                        cgn_positive: positive,
                    },
                )
            })
            .collect()
    }
}

/// Positive AS set from either detector's per-AS map.
pub fn positive_set<R, F: Fn(&R) -> bool>(per_as: &BTreeMap<AsId, R>, f: F) -> BTreeSet<AsId> {
    per_as
        .iter()
        .filter(|(_, r)| f(r))
        .map(|(a, _)| *a)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::ip;
    use std::net::Ipv4Addr;

    fn routing() -> RoutingTable {
        let mut t = RoutingTable::new();
        t.announce(Prefix::new(ip(50, 0, 0, 0), 8), AsId(1));
        t.announce(Prefix::new(ip(60, 0, 0, 0), 8), AsId(2));
        t
    }

    fn cell_session(as_n: u32, dev: Ipv4Addr, public: Ipv4Addr) -> SessionObs {
        let mut s = SessionObs::skeleton(AsId(as_n), true, dev);
        s.ip_pub = Some(public);
        s
    }

    #[test]
    fn cellular_detects_internal_assignment() {
        let r = routing();
        let sessions: Vec<SessionObs> = (0..6)
            .map(|i| cell_session(1, ip(100, 64, 0, i), ip(50, 0, 0, 9)))
            .collect();
        let det = NzCellularDetector::default().detect(&sessions, &r);
        let a = &det[&AsId(1)];
        assert!(a.cgn_positive);
        assert_eq!(a.assignment_class(), "exclusively internal");
    }

    #[test]
    fn cellular_public_assignment_negative() {
        let r = routing();
        // Devices hold the very address the server sees: no CGN.
        let sessions: Vec<SessionObs> = (0..6)
            .map(|i| cell_session(1, ip(50, 0, 0, i), ip(50, 0, 0, i)))
            .collect();
        let det = NzCellularDetector::default().detect(&sessions, &r);
        let a = &det[&AsId(1)];
        assert!(!a.cgn_positive);
        assert_eq!(a.assignment_class(), "exclusively public");
    }

    #[test]
    fn cellular_requires_min_sessions() {
        let r = routing();
        let sessions: Vec<SessionObs> = (0..4)
            .map(|i| cell_session(1, ip(100, 64, 0, i), ip(50, 0, 0, 9)))
            .collect();
        let det = NzCellularDetector::default().detect(&sessions, &r);
        assert!(det.is_empty(), "4 < 5 sessions: no conclusion");
    }

    #[test]
    fn cellular_mixed_assignment() {
        let r = routing();
        let mut sessions: Vec<SessionObs> = (0..3)
            .map(|i| cell_session(1, ip(100, 64, 0, i), ip(50, 0, 0, 9)))
            .collect();
        sessions.extend((0..3).map(|i| cell_session(1, ip(50, 0, 1, i), ip(50, 0, 1, i))));
        let det = NzCellularDetector::default().detect(&sessions, &r);
        assert_eq!(det[&AsId(1)].assignment_class(), "mixed");
        assert!(det[&AsId(1)].cgn_positive);
    }

    /// Build a non-cellular session with a device addr, CPE addr and
    /// public addr.
    fn nc_session(as_n: u32, dev: Ipv4Addr, cpe: Ipv4Addr, public: Ipv4Addr) -> SessionObs {
        let mut s = SessionObs::skeleton(AsId(as_n), false, dev);
        s.ip_cpe = Some(cpe);
        s.ip_pub = Some(public);
        s
    }

    #[test]
    fn noncellular_cgn_detected_with_diversity() {
        let r = routing();
        // 12 sessions; CPE WANs spread across 6 distinct 100.64.x/24s.
        let sessions: Vec<SessionObs> = (0..12u8)
            .map(|i| {
                nc_session(
                    2,
                    ip(192, 168, 1, 100),
                    ip(100, 64, i % 6, 10 + i),
                    ip(60, 0, 0, 9),
                )
            })
            .collect();
        let det = NzNonCellularDetector::default().detect(&sessions, &r);
        let a = &det[&AsId(2)];
        assert_eq!(a.candidate_sessions, 12);
        assert_eq!(a.cpe_slash24s, 6);
        assert!(a.cgn_positive, "12 sessions over 6 /24s ≥ 0.4·12");
        assert!(a.ranges.contains(&ReservedRange::R100));
    }

    #[test]
    fn noncellular_low_diversity_negative() {
        let r = routing();
        // 12 candidates all in one /24 — a single-site deployment, not
        // enough diversity for the conservative call.
        let sessions: Vec<SessionObs> = (0..12u8)
            .map(|i| {
                nc_session(
                    2,
                    ip(192, 168, 1, 100),
                    ip(100, 64, 0, 10 + i),
                    ip(60, 0, 0, 9),
                )
            })
            .collect();
        let det = NzNonCellularDetector::default().detect(&sessions, &r);
        assert!(!det[&AsId(2)].cgn_positive);
    }

    #[test]
    fn cascaded_home_nats_filtered_by_top_blocks() {
        let r = routing();
        // The device corpus makes 192.168.1/24 a top block…
        let mut sessions: Vec<SessionObs> = (0..30u8)
            .map(|i| {
                let mut s = SessionObs::skeleton(AsId(2), false, ip(192, 168, 1, 100 + (i % 100)));
                s.ip_pub = Some(ip(60, 0, 0, i));
                s
            })
            .collect();
        // …so 12 double-home-NAT sessions whose "IPcpe" is another home
        // router in 192.168.1/24 are not candidates.
        sessions.extend((0..12u8).map(|i| {
            nc_session(
                2,
                ip(192, 168, 0, 100),
                ip(192, 168, 1, 1 + i),
                ip(60, 0, 1, i),
            )
        }));
        let det = NzNonCellularDetector::default().detect(&sessions, &r);
        let a = &det[&AsId(2)];
        assert_eq!(
            a.candidate_sessions, 0,
            "home-cascade sessions must be filtered"
        );
        assert!(!a.cgn_positive);
    }

    #[test]
    fn upnp_match_sessions_are_not_candidates() {
        let r = routing();
        // Scenario A: IPcpe == IPpub.
        let sessions: Vec<SessionObs> = (0..12u8)
            .map(|i| nc_session(2, ip(192, 168, 1, 100), ip(60, 0, 2, i), ip(60, 0, 2, i)))
            .collect();
        let det = NzNonCellularDetector::default().detect(&sessions, &r);
        assert_eq!(det[&AsId(2)].candidate_sessions, 0);
    }

    #[test]
    fn top_device_blocks_ranked_by_frequency() {
        let det = NzNonCellularDetector::default();
        let mut sessions = Vec::new();
        for _ in 0..20 {
            sessions.push(SessionObs::skeleton(AsId(1), false, ip(192, 168, 1, 100)));
        }
        for _ in 0..5 {
            sessions.push(SessionObs::skeleton(AsId(1), false, ip(10, 0, 0, 50)));
        }
        sessions.push(SessionObs::skeleton(AsId(1), true, ip(100, 64, 0, 1))); // cellular ignored
        let top = det.top_device_blocks(&sessions);
        assert_eq!(top[0], Prefix::slash24_of(ip(192, 168, 1, 0)));
        assert!(top.contains(&Prefix::slash24_of(ip(10, 0, 0, 0))));
        assert!(!top.contains(&Prefix::slash24_of(ip(100, 64, 0, 0))));
    }

    #[test]
    fn positive_set_helper() {
        let r = routing();
        let sessions: Vec<SessionObs> = (0..6)
            .map(|i| cell_session(1, ip(100, 64, 0, i), ip(50, 0, 0, 9)))
            .collect();
        let det = NzCellularDetector::default().detect(&sessions, &r);
        let set = positive_set(&det, |a: &CellularAsResult| a.cgn_positive);
        assert!(set.contains(&AsId(1)));
    }
}
