//! Observation records — the analysis layer's input data model.
//!
//! The measurement crates (the DHT crawler, the Netalyzr sessions) produce
//! these flat records; keeping them independent of the measurement
//! implementations means the pipelines run equally on simulated data, on
//! serialized logs, or on synthetic fixtures in tests.

use nat_engine::StunNatType;
use netcore::{AsId, Endpoint, ReservedRange};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// One observed leak edge from the BitTorrent crawl: a peer queried at a
/// routable endpoint reported a contact with a reserved-range address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BtLeakObs {
    /// Public (external) address the leaking peer was queried at.
    pub leaker_ip: Ipv4Addr,
    /// Origin AS of that address, if routed.
    pub leaker_as: Option<AsId>,
    /// The leaked internal peer's address.
    pub internal_ip: Ipv4Addr,
    /// Which reserved range the internal address belongs to.
    pub range: ReservedRange,
}

/// One TCP flow of the Netalyzr port test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowObs {
    pub local_port: u16,
    /// Source endpoint the server observed, if the flow completed.
    pub observed: Option<Endpoint>,
}

/// One stateful middlebox found by the TTL-driven enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TtlNatObs {
    /// 1-based hop distance from the client.
    pub hop: usize,
    /// Timeout bracket (exclusive lower, inclusive upper), in seconds.
    pub timeout_gt_secs: u64,
    pub timeout_le_secs: u64,
}

/// TTL-driven enumeration outcome for one session.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TtlObs {
    pub path_len: usize,
    pub ip_mismatch: bool,
    pub detected: Vec<TtlNatObs>,
}

/// One Netalyzr session, flattened for analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionObs {
    /// Origin AS of the session's public address.
    pub as_id: Option<AsId>,
    /// Whether the session came in over a cellular network.
    pub cellular: bool,
    pub ip_dev: Ipv4Addr,
    pub ip_cpe: Option<Ipv4Addr>,
    /// CPE model string as reported via UPnP.
    pub cpe_model: Option<String>,
    /// The session's public address as seen by the servers.
    pub ip_pub: Option<Ipv4Addr>,
    /// Whether several public addresses appeared within the session.
    pub multiple_public_ips: bool,
    pub flows: Vec<FlowObs>,
    /// STUN classification, when the test ran and found a NAT; `None`
    /// includes no-NAT outcomes.
    pub stun_nat: Option<StunNatType>,
    pub ttl: Option<TtlObs>,
}

impl SessionObs {
    /// A minimal session skeleton for tests and fixtures.
    pub fn skeleton(as_id: AsId, cellular: bool, ip_dev: Ipv4Addr) -> SessionObs {
        SessionObs {
            as_id: Some(as_id),
            cellular,
            ip_dev,
            ip_cpe: None,
            cpe_model: None,
            ip_pub: None,
            multiple_public_ips: false,
            flows: Vec::new(),
            stun_nat: None,
            ttl: None,
        }
    }

    /// Completed flows as (local port, observed endpoint).
    pub fn observed_flows(&self) -> impl Iterator<Item = (u16, Endpoint)> + '_ {
        self.flows
            .iter()
            .filter_map(|f| f.observed.map(|o| (f.local_port, o)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::ip;

    #[test]
    fn skeleton_and_flows() {
        let mut s = SessionObs::skeleton(AsId(1), false, ip(192, 168, 1, 100));
        assert_eq!(s.observed_flows().count(), 0);
        s.flows.push(FlowObs {
            local_port: 1000,
            observed: None,
        });
        s.flows.push(FlowObs {
            local_port: 1001,
            observed: Some(Endpoint::new(ip(5, 5, 5, 5), 777)),
        });
        let got: Vec<(u16, Endpoint)> = s.observed_flows().collect();
        assert_eq!(got, vec![(1001, Endpoint::new(ip(5, 5, 5, 5), 777))]);
    }

    #[test]
    fn serde_roundtrip() {
        let s = SessionObs::skeleton(AsId(7), true, ip(100, 64, 0, 9));
        let json = serde_json_like(&s);
        assert!(json.contains("100.64.0.9"));
    }

    // serde_json is not in the dependency set; use the Debug formatting to
    // confirm Serialize derives compile and fields are present.
    fn serde_json_like(s: &SessionObs) -> String {
        format!("{s:?}")
    }
}
