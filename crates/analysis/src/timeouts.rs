//! Mapping-timeout analysis (§6.5, Fig. 12).
//!
//! For CGN-positive ASes, only sessions whose TTL enumeration found the
//! NAT **three or more hops out** contribute (that keeps NAT444 CPE state
//! out of the CGN estimate); each AS is represented by its most frequent
//! (mode) timeout. CPE timeouts are reported per session.

use crate::obs::SessionObs;
use crate::stats::{mode, BoxplotStats};
use netcore::AsId;
use std::collections::BTreeMap;

/// Minimum hop distance for a detected middlebox to count as the CGN.
pub const CGN_MIN_HOP: usize = 3;

/// The timeout estimate of one detected NAT: the bracket midpoint.
fn estimate_secs(gt: u64, le: u64) -> u64 {
    (gt + le) / 2
}

/// Per-AS modal CGN timeouts for sessions in `include` ASes.
pub fn cgn_timeouts_per_as(
    sessions: &[SessionObs],
    include: impl Fn(AsId) -> bool,
) -> BTreeMap<AsId, u64> {
    let mut samples: BTreeMap<AsId, Vec<u64>> = BTreeMap::new();
    for s in sessions {
        let Some(a) = s.as_id else { continue };
        if !include(a) {
            continue;
        }
        let Some(ttl) = &s.ttl else { continue };
        for d in &ttl.detected {
            if d.hop >= CGN_MIN_HOP {
                samples
                    .entry(a)
                    .or_default()
                    .push(estimate_secs(d.timeout_gt_secs, d.timeout_le_secs));
            }
        }
    }
    samples
        .into_iter()
        .filter_map(|(a, v)| mode(&v).map(|m| (a, m)))
        .collect()
}

/// Per-session CPE timeouts: the nearest detected middlebox (hop 1–2) in
/// sessions from non-CGN ASes.
pub fn cpe_timeouts_per_session(
    sessions: &[SessionObs],
    exclude: impl Fn(AsId) -> bool,
) -> Vec<u64> {
    let mut out = Vec::new();
    for s in sessions {
        if let Some(a) = s.as_id {
            if exclude(a) {
                continue;
            }
        }
        let Some(ttl) = &s.ttl else { continue };
        if let Some(d) = ttl.detected.iter().find(|d| d.hop < CGN_MIN_HOP) {
            out.push(estimate_secs(d.timeout_gt_secs, d.timeout_le_secs));
        }
    }
    out
}

/// The three box plots of Fig. 12.
#[derive(Debug, Clone)]
pub struct Fig12 {
    pub cellular_cgn_per_as: Option<BoxplotStats>,
    pub noncellular_cgn_per_as: Option<BoxplotStats>,
    pub cpe_per_session: Option<BoxplotStats>,
    pub cellular_values: Vec<u64>,
    pub noncellular_values: Vec<u64>,
    pub cpe_values: Vec<u64>,
}

/// Assemble Fig. 12 from the session corpus and the CGN-positive AS sets.
pub fn fig12(
    sessions: &[SessionObs],
    cellular_cgn: impl Fn(AsId) -> bool,
    noncellular_cgn: impl Fn(AsId) -> bool,
) -> Fig12 {
    let cell: Vec<u64> = cgn_timeouts_per_as(
        &sessions
            .iter()
            .filter(|s| s.cellular)
            .cloned()
            .collect::<Vec<_>>(),
        &cellular_cgn,
    )
    .into_values()
    .collect();
    let noncell: Vec<u64> = cgn_timeouts_per_as(
        &sessions
            .iter()
            .filter(|s| !s.cellular)
            .cloned()
            .collect::<Vec<_>>(),
        &noncellular_cgn,
    )
    .into_values()
    .collect();
    let cpe = cpe_timeouts_per_session(
        &sessions
            .iter()
            .filter(|s| !s.cellular)
            .cloned()
            .collect::<Vec<_>>(),
        |a| noncellular_cgn(a) || cellular_cgn(a),
    );
    let to_f = |v: &[u64]| v.iter().map(|x| *x as f64).collect::<Vec<f64>>();
    Fig12 {
        cellular_cgn_per_as: BoxplotStats::from_samples(&to_f(&cell)),
        noncellular_cgn_per_as: BoxplotStats::from_samples(&to_f(&noncell)),
        cpe_per_session: BoxplotStats::from_samples(&to_f(&cpe)),
        cellular_values: cell,
        noncellular_values: noncell,
        cpe_values: cpe,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{TtlNatObs, TtlObs};
    use netcore::ip;

    fn session(as_n: u32, cellular: bool, detected: Vec<TtlNatObs>) -> SessionObs {
        let mut s = SessionObs::skeleton(AsId(as_n), cellular, ip(100, 64, 0, 5));
        s.ttl = Some(TtlObs {
            path_len: 6,
            ip_mismatch: true,
            detected,
        });
        s
    }

    fn nat(hop: usize, gt: u64, le: u64) -> TtlNatObs {
        TtlNatObs {
            hop,
            timeout_gt_secs: gt,
            timeout_le_secs: le,
        }
    }

    #[test]
    fn cgn_requires_three_hops() {
        let sessions = vec![
            session(1, false, vec![nat(1, 60, 70)]), // CPE only
            session(1, false, vec![nat(3, 30, 40)]), // CGN at hop 3
        ];
        let t = cgn_timeouts_per_as(&sessions, |_| true);
        assert_eq!(t[&AsId(1)], 35, "only the ≥3-hop NAT counts");
    }

    #[test]
    fn per_as_mode_wins() {
        let sessions = vec![
            session(1, false, vec![nat(3, 60, 70)]),
            session(1, false, vec![nat(3, 60, 70)]),
            session(1, false, vec![nat(3, 150, 160)]),
        ];
        let t = cgn_timeouts_per_as(&sessions, |_| true);
        assert_eq!(t[&AsId(1)], 65);
    }

    #[test]
    fn cpe_from_non_cgn_sessions_only() {
        let sessions = vec![
            session(1, false, vec![nat(1, 60, 70)]),
            session(2, false, vec![nat(1, 100, 110)]),
        ];
        // AS 2 is CGN-positive → excluded from the CPE population.
        let cpe = cpe_timeouts_per_session(&sessions, |a| a == AsId(2));
        assert_eq!(cpe, vec![65]);
    }

    #[test]
    fn fig12_shapes() {
        let mut sessions = Vec::new();
        // Cellular CGN ASes with 65 s modes.
        for a in 0..5u32 {
            sessions.push(session(a, true, vec![nat(4, 60, 70)]));
            sessions.push(session(a, true, vec![nat(4, 60, 70)]));
        }
        // Non-cellular CGN ASes with 35 s modes.
        for a in 10..15u32 {
            sessions.push(session(a, false, vec![nat(3, 30, 40)]));
        }
        // CPE sessions in non-CGN ASes.
        for a in 20..23u32 {
            sessions.push(session(a, false, vec![nat(1, 60, 70)]));
        }
        let f = fig12(&sessions, |a| a.0 < 10, |a| (10..20).contains(&a.0));
        assert_eq!(f.cellular_cgn_per_as.unwrap().median, 65.0);
        assert_eq!(f.noncellular_cgn_per_as.unwrap().median, 35.0);
        assert_eq!(f.cpe_per_session.unwrap().median, 65.0);
        // The paper's headline: cellular CGN median above non-cellular.
        assert!(f.cellular_cgn_per_as.unwrap().median > f.noncellular_cgn_per_as.unwrap().median);
    }

    #[test]
    fn empty_inputs_give_none() {
        let f = fig12(&[], |_| true, |_| true);
        assert!(f.cellular_cgn_per_as.is_none());
        assert!(f.cpe_per_session.is_none());
    }
}
