//! Logging-volume analysis: what traceability costs per policy.
//!
//! §2 of the paper reports that the *logging overhead* of abuse
//! traceability is a first-order input to CGN dimensioning: operators
//! choose bulk port-block allocation (or deterministic NAT) over
//! per-connection logging mainly to shrink it. This module normalizes
//! a run's raw log size into the number operators actually budget —
//! **bytes per subscriber per day** — and projects fleet-scale daily
//! volume, so the three allocation policies can be compared on the
//! standard dimensioning sweep.

use serde::{Deserialize, Serialize};

const SECS_PER_DAY: f64 = 86_400.0;

/// Normalize a run's log size to bytes/subscriber/day.
pub fn bytes_per_subscriber_day(bytes: u64, subscribers: u64, duration_secs: u64) -> f64 {
    if subscribers == 0 || duration_secs == 0 {
        return 0.0;
    }
    bytes as f64 / subscribers as f64 * (SECS_PER_DAY / duration_secs as f64)
}

/// Project a run's log volume to one day of the same load.
pub fn daily_bytes(bytes: u64, duration_secs: u64) -> f64 {
    if duration_secs == 0 {
        return 0.0;
    }
    bytes as f64 * (SECS_PER_DAY / duration_secs as f64)
}

/// Log volume of one run under one logging/allocation policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyLogVolume {
    /// Policy label (`per-connection`, `port-block`, `deterministic`).
    pub policy: String,
    /// Semantic records written.
    pub records: u64,
    /// Encoded log bytes (interning/defines included).
    pub bytes: u64,
    /// The operator-budget number.
    pub bytes_per_subscriber_day: f64,
    /// Records per flow pushed through the NAT — how many log writes
    /// each connection costs under this policy.
    pub records_per_flow: f64,
}

impl PolicyLogVolume {
    pub fn new(
        policy: impl Into<String>,
        records: u64,
        bytes: u64,
        subscribers: u64,
        duration_secs: u64,
        flows: u64,
    ) -> PolicyLogVolume {
        PolicyLogVolume {
            policy: policy.into(),
            records,
            bytes,
            bytes_per_subscriber_day: bytes_per_subscriber_day(bytes, subscribers, duration_secs),
            records_per_flow: if flows == 0 {
                0.0
            } else {
                records as f64 / flows as f64
            },
        }
    }

    /// Daily volume for a fleet of `subscribers` at this run's
    /// per-subscriber rate — e.g. the "terabytes per day for a million
    /// subscribers" the survey's respondents complain about.
    pub fn projected_daily_bytes(&self, subscribers: u64) -> f64 {
        self.bytes_per_subscriber_day * subscribers as f64
    }
}

/// Human-scale byte formatting for report rendering.
pub fn format_bytes(bytes: f64) -> String {
    const UNITS: [&str; 6] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"];
    let mut v = bytes.max(0.0);
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{v:.0} {}", UNITS[unit])
    } else {
        format!("{v:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_scales_to_a_day() {
        // 1 MiB over 1000 subscribers in half a day:
        // 1048576 / 1000 * 2 = 2097.152 bytes/subscriber/day.
        let v = bytes_per_subscriber_day(1 << 20, 1000, 43_200);
        assert!((v - 2097.152).abs() < 1e-9);
        assert_eq!(bytes_per_subscriber_day(123, 0, 60), 0.0);
        assert_eq!(bytes_per_subscriber_day(123, 10, 0), 0.0);
        assert!((daily_bytes(100, 3600) - 2400.0).abs() < 1e-9);
    }

    #[test]
    fn policy_volume_assembles_and_projects() {
        let v = PolicyLogVolume::new("per-connection", 2_000, 16_000, 400, 86_400, 1_000);
        assert!((v.bytes_per_subscriber_day - 40.0).abs() < 1e-9);
        assert!((v.records_per_flow - 2.0).abs() < 1e-9);
        // A million subscribers at 40 B/sub/day -> 40 MB/day.
        assert!((v.projected_daily_bytes(1_000_000) - 40.0e6).abs() < 1.0);
        let zero = PolicyLogVolume::new("deterministic", 0, 0, 400, 86_400, 1_000);
        assert_eq!(zero.bytes_per_subscriber_day, 0.0);
        assert_eq!(zero.records_per_flow, 0.0);
    }

    #[test]
    fn byte_formatting_is_readable() {
        assert_eq!(format_bytes(512.0), "512 B");
        assert_eq!(format_bytes(2048.0), "2.0 KiB");
        assert_eq!(format_bytes(1.5 * 1024.0 * 1024.0), "1.5 MiB");
        assert_eq!(format_bytes(3.0 * f64::powi(1024.0, 4)), "3.0 TiB");
    }
}
