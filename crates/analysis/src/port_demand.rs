//! Port-demand dimensioning analysis (the operator-side view of §6.2).
//!
//! The paper infers CGN internals — per-subscriber port chunks of
//! 512..16K ports (Fig. 8c, Table 6), NAT pooling, short UDP timeouts
//! (Fig. 12) — from the outside. This module asks the question those
//! findings imply for the operator: **how much port and state capacity
//! does a CGN need for a given subscriber population and traffic mix?**
//!
//! Input is a time series of [`DemandSample`]s captured while a workload
//! drives a `nat_engine::Nat` (the `cgn-traffic` crate produces these),
//! plus the full ports-per-subscriber distribution at the observed peak.
//! Output is a [`PortDemandReport`]:
//!
//! * peak / percentile concurrent mappings and ports per subscriber,
//! * external-IP multiplexing factor (subscribers and peak ports per
//!   public address — the address-sharing ratio the survey of §2 asks
//!   operators about),
//! * a chunk-size vs. subscriber-blocking-probability curve that
//!   connects directly to the chunk sizes inferred in §6.2: for each
//!   candidate chunk size, the share of subscribers whose peak demand
//!   would not fit ("demand blocked") and the number of subscribers one
//!   external IP can host ("64 subscribers per IP address in the case of
//!   a 1K port chunk").

use crate::stats::quantile_sorted;
use serde::{Deserialize, Serialize};

/// One snapshot of CGN state while a workload runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandSample {
    /// Virtual time of the snapshot, in seconds since run start.
    pub t_secs: u64,
    /// Live (unexpired) mappings across all CGN instances.
    pub mappings: u64,
    /// Subscribers with at least one live mapping.
    pub active_subscribers: u64,
    /// Ports-per-active-subscriber percentiles at this instant.
    pub ports_p50: f64,
    pub ports_p95: f64,
    pub ports_p99: f64,
    pub ports_max: u64,
    /// Highest allocator fill level across (external IP, protocol)
    /// pairs, in `[0, 1]`.
    pub worst_ip_utilization: f64,
    /// Cumulative drop counters at this instant (monotone).
    pub drops_port_exhausted: u64,
    pub drops_session_limit: u64,
}

/// The full time series of one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DemandSeries {
    pub samples: Vec<DemandSample>,
}

impl DemandSeries {
    pub fn push(&mut self, s: DemandSample) {
        self.samples.push(s);
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The sample with the most live mappings (ties: earliest).
    pub fn peak(&self) -> Option<&DemandSample> {
        self.samples
            .iter()
            .max_by_key(|s| (s.mappings, u64::MAX - s.t_secs))
    }

    /// Quantile of concurrent mappings across the whole run.
    pub fn mappings_quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut v: Vec<f64> = self.samples.iter().map(|s| s.mappings as f64).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("counts are finite"));
        quantile_sorted(&v, q)
    }
}

/// One shard's slice of a demand snapshot, produced in parallel by the
/// sharded engine's workers and merged by [`merge_shard_demand`].
/// Internal hosts are partitioned across shards, so the per-shard
/// `ports` vectors are disjoint subscriber populations.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardDemand {
    /// Ports held per active subscriber behind this shard (unsorted).
    pub ports: Vec<u32>,
    /// Highest allocator fill level across this shard's
    /// (external IP, protocol) pairs.
    pub worst_ip_utilization: f64,
    /// Cumulative drop counters of this shard at the snapshot.
    pub drops_port_exhausted: u64,
    pub drops_session_limit: u64,
}

/// Merge per-shard snapshot slices into one global [`DemandSample`]
/// plus the sorted merged ports-per-subscriber distribution (the input
/// to [`chunk_curve`] when this snapshot turns out to be the peak).
///
/// Deterministic: the merged distribution is fully sorted, so shard
/// order does not matter; drop counters add, utilization takes the
/// worst shard.
pub fn merge_shard_demand(
    t_secs: u64,
    subscribers: u64,
    shards: &[ShardDemand],
) -> (DemandSample, Vec<u32>) {
    let mut ports: Vec<u32> = Vec::with_capacity(shards.iter().map(|s| s.ports.len()).sum());
    let mut worst_util = 0.0f64;
    let mut drops_ports = 0u64;
    let mut drops_sessions = 0u64;
    for shard in shards {
        ports.extend_from_slice(&shard.ports);
        worst_util = worst_util.max(shard.worst_ip_utilization);
        drops_ports += shard.drops_port_exhausted;
        drops_sessions += shard.drops_session_limit;
    }
    ports.sort_unstable();
    let live: u64 = ports.iter().map(|p| *p as u64).sum();
    let active = ports.len() as u64;
    let (p50, p95, p99, max) = ports_percentiles_sorted(&ports, subscribers);
    let sample = DemandSample {
        t_secs,
        mappings: live,
        active_subscribers: active,
        ports_p50: p50,
        ports_p95: p95,
        ports_p99: p99,
        ports_max: max,
        worst_ip_utilization: worst_util,
        drops_port_exhausted: drops_ports,
        drops_session_limit: drops_sessions,
    };
    (sample, ports)
}

/// Per-shard load distribution of one run — makes heavy-tailed shard
/// skew visible (subscribers are hashed to shards, so a few heavy
/// hitters can pile onto one shard; ROADMAP tracks this as the trigger
/// for load-aware admission). `imbalance` factors are `max / mean`,
/// `1.0` when perfectly balanced, and `0.0` only for a degenerate run
/// with no load at all.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardLoad {
    /// New-flow attempts started per shard, in shard order.
    pub flows_per_shard: Vec<u64>,
    /// Per-shard high-water marks of concurrent mappings, in shard
    /// order.
    pub peak_mappings_per_shard: Vec<u64>,
    /// `max(flows_per_shard) / mean(flows_per_shard)`.
    pub flow_imbalance: f64,
    /// `max(peak_mappings_per_shard) / mean(peak_mappings_per_shard)`.
    pub mapping_imbalance: f64,
    /// Worst **per-window** flow imbalance across the run's sample
    /// windows — the transient skew the cumulative `flow_imbalance`
    /// (a whole-run ratio) averages away. `0.0` for a run with no
    /// samples or no load.
    pub worst_window_flow_imbalance: f64,
    /// Start (sim-seconds) of the window behind
    /// `worst_window_flow_imbalance`.
    pub worst_window_start_secs: u64,
}

/// `max(values) / mean(values)`: `1.0` when perfectly balanced, `0.0`
/// only for empty or all-zero input — the imbalance measure behind
/// [`ShardLoad`] and the driver's per-window skew tracking.
pub fn max_over_mean(values: &[u64]) -> f64 {
    let total: u64 = values.iter().sum();
    if values.is_empty() || total == 0 {
        return 0.0;
    }
    let mean = total as f64 / values.len() as f64;
    values.iter().max().copied().unwrap_or(0) as f64 / mean
}

impl ShardLoad {
    /// Build the metric from per-shard flow and peak-mapping counts
    /// (parallel vectors in shard order).
    pub fn from_per_shard(flows: Vec<u64>, peak_mappings: Vec<u64>) -> ShardLoad {
        let flow_imbalance = max_over_mean(&flows);
        let mapping_imbalance = max_over_mean(&peak_mappings);
        ShardLoad {
            flows_per_shard: flows,
            peak_mappings_per_shard: peak_mappings,
            flow_imbalance,
            mapping_imbalance,
            worst_window_flow_imbalance: 0.0,
            worst_window_start_secs: 0,
        }
    }

    /// Attach the worst per-window skew observed while the run was
    /// live (the driver tracks it across sample barriers).
    pub fn with_worst_window(mut self, imbalance: f64, start_secs: u64) -> ShardLoad {
        self.worst_window_flow_imbalance = imbalance;
        self.worst_window_start_secs = start_secs;
        self
    }
}

/// One row of the chunk-size vs. blocking-probability curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChunkBlockingRow {
    /// Ports reserved per subscriber (the §6.2 chunk size).
    pub chunk_size: u16,
    /// Subscribers one external IP can host at this chunk size
    /// (`usable_ports / chunk_size`).
    pub subscribers_per_ip: u32,
    /// Share of subscribers whose observed **peak** demand exceeds the
    /// chunk — they would see new-flow failures at the worst moment.
    pub p_demand_blocked: f64,
    /// Share of the port space the population actually used at peak,
    /// had each subscriber owned a chunk this size
    /// (`total peak demand / (subscribers * chunk_size)`, capped at 1).
    pub chunk_utilization: f64,
}

/// Dimensioning summary of one workload run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortDemandReport {
    /// Subscribers configured for the run.
    pub subscribers: u64,
    /// External (public) IPs in the CGN pool.
    pub external_ips: u64,
    /// Peak live mappings (state-table high-water mark).
    pub peak_mappings: u64,
    /// Median of the per-sample mapping counts (steady-state load).
    pub median_mappings: f64,
    /// 99th percentile of the per-sample mapping counts.
    pub p99_mappings: f64,
    /// Peak-sample ports-per-subscriber percentiles.
    pub peak_ports_p50: f64,
    pub peak_ports_p95: f64,
    pub peak_ports_p99: f64,
    pub peak_ports_max: u64,
    /// Subscribers per external IP (the address-sharing ratio of §2).
    pub subscribers_per_external_ip: f64,
    /// Peak live mappings per external IP — how many ports of each
    /// public address were simultaneously committed.
    pub peak_ports_per_external_ip: f64,
    /// Highest allocator fill level seen at any sample.
    pub worst_ip_utilization: f64,
    /// Total new-flow drops due to port/chunk exhaustion.
    pub drops_port_exhausted: u64,
    /// Total new-flow drops due to the per-subscriber session limit.
    pub drops_session_limit: u64,
    /// Chunk-size sweep (ascending chunk size).
    pub chunk_curve: Vec<ChunkBlockingRow>,
}

/// Chunk sizes swept by [`build_report`] — the powers of two spanning
/// the 512..16K range the paper observed, extended downward so the
/// sweep also shows where undersized chunks start blocking subscribers.
pub const CHUNK_SIZES: [u16; 11] = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384];

/// Usable external ports per (IP, protocol) under the engine's default
/// configurations (the 1024..65535 range). Runs with a different
/// `NatConfig::port_range` pass their own usable-port count.
pub const USABLE_PORTS_PER_IP: u32 = 64_512;

/// Compute the chunk-size sweep from the peak ports-per-subscriber
/// distribution. `peak_ports_per_subscriber` holds one entry per
/// subscriber that was active at the peak sample; fully idle
/// subscribers contribute zero demand and are represented by
/// `subscribers - distribution.len()` implicit zeros.
/// `usable_ports_per_ip` is the width of the run's configured port
/// range (per external IP and protocol).
pub fn chunk_curve(
    peak_ports_per_subscriber: &[u32],
    subscribers: u64,
    usable_ports_per_ip: u32,
) -> Vec<ChunkBlockingRow> {
    let total_demand: u64 = peak_ports_per_subscriber.iter().map(|p| *p as u64).sum();
    CHUNK_SIZES
        .iter()
        .map(|&chunk| {
            let blocked = peak_ports_per_subscriber
                .iter()
                .filter(|&&p| p > chunk as u32)
                .count();
            let p_demand_blocked = if subscribers == 0 {
                0.0
            } else {
                blocked as f64 / subscribers as f64
            };
            let chunk_utilization = if subscribers == 0 {
                0.0
            } else {
                (total_demand as f64 / (subscribers as f64 * chunk as f64)).min(1.0)
            };
            ChunkBlockingRow {
                chunk_size: chunk,
                subscribers_per_ip: usable_ports_per_ip / chunk as u32,
                p_demand_blocked,
                chunk_utilization,
            }
        })
        .collect()
}

/// Assemble the report from a run's series and peak distribution.
pub fn build_report(
    series: &DemandSeries,
    peak_ports_per_subscriber: &[u32],
    subscribers: u64,
    external_ips: u64,
    usable_ports_per_ip: u32,
) -> PortDemandReport {
    let peak = series.peak().copied().unwrap_or(DemandSample {
        t_secs: 0,
        mappings: 0,
        active_subscribers: 0,
        ports_p50: 0.0,
        ports_p95: 0.0,
        ports_p99: 0.0,
        ports_max: 0,
        worst_ip_utilization: 0.0,
        drops_port_exhausted: 0,
        drops_session_limit: 0,
    });
    let last = series.samples.last().copied().unwrap_or(peak);
    let ips = external_ips.max(1) as f64;
    PortDemandReport {
        subscribers,
        external_ips,
        peak_mappings: peak.mappings,
        median_mappings: series.mappings_quantile(0.5),
        p99_mappings: series.mappings_quantile(0.99),
        peak_ports_p50: peak.ports_p50,
        peak_ports_p95: peak.ports_p95,
        peak_ports_p99: peak.ports_p99,
        peak_ports_max: peak.ports_max,
        subscribers_per_external_ip: subscribers as f64 / ips,
        peak_ports_per_external_ip: peak.mappings as f64 / ips,
        worst_ip_utilization: series
            .samples
            .iter()
            .map(|s| s.worst_ip_utilization)
            .fold(0.0, f64::max),
        drops_port_exhausted: last.drops_port_exhausted,
        drops_session_limit: last.drops_session_limit,
        chunk_curve: chunk_curve(peak_ports_per_subscriber, subscribers, usable_ports_per_ip),
    }
}

/// Percentiles of a ports-per-subscriber distribution, padded with
/// zeros for subscribers not present in the map (idle ones).
pub fn ports_percentiles(mut active_ports: Vec<u32>, subscribers: u64) -> (f64, f64, f64, u64) {
    active_ports.sort_unstable();
    ports_percentiles_sorted(&active_ports, subscribers)
}

/// [`ports_percentiles`] for an **already-sorted** distribution — the
/// per-barrier hot path of the sharded driver, which has just sorted
/// the merged vector and should not pay for a clone and a re-sort.
pub fn ports_percentiles_sorted(active_ports: &[u32], subscribers: u64) -> (f64, f64, f64, u64) {
    debug_assert!(active_ports.windows(2).all(|w| w[0] <= w[1]));
    let idle = (subscribers as usize).saturating_sub(active_ports.len());
    let max = active_ports.last().copied().unwrap_or(0) as u64;
    if subscribers == 0 {
        return (0.0, 0.0, 0.0, 0);
    }
    // Quantiles over the padded distribution without materializing the
    // zeros: index into [0-padding | sorted active].
    let total = idle + active_ports.len();
    let q = |frac: f64| -> f64 {
        if total == 1 {
            return active_ports.first().copied().unwrap_or(0) as f64;
        }
        let pos = frac * (total - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let val = |i: usize| -> f64 {
            if i < idle {
                0.0
            } else {
                active_ports[i - idle] as f64
            }
        };
        let fracpart = pos - lo as f64;
        val(lo) * (1.0 - fracpart) + val(hi) * fracpart
    };
    (q(0.5), q(0.95), q(0.99), max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: u64, mappings: u64) -> DemandSample {
        DemandSample {
            t_secs: t,
            mappings,
            active_subscribers: mappings.min(10),
            ports_p50: 1.0,
            ports_p95: 2.0,
            ports_p99: 3.0,
            ports_max: mappings,
            worst_ip_utilization: mappings as f64 / 100.0,
            drops_port_exhausted: t / 10,
            drops_session_limit: 0,
        }
    }

    #[test]
    fn peak_finds_max_earliest() {
        let mut s = DemandSeries::default();
        for (t, m) in [(0, 5), (60, 40), (120, 40), (180, 10)] {
            s.push(sample(t, m));
        }
        let p = s.peak().expect("nonempty");
        assert_eq!(p.mappings, 40);
        assert_eq!(p.t_secs, 60, "ties resolve to the earliest sample");
    }

    #[test]
    fn chunk_curve_monotone_and_calibrated() {
        // 100 subscribers; 10 of them need 600 ports, the rest 50.
        let mut dist = vec![600u32; 10];
        dist.extend(vec![50u32; 90]);
        let curve = chunk_curve(&dist, 100, USABLE_PORTS_PER_IP);
        assert_eq!(curve.len(), CHUNK_SIZES.len());
        // Blocking probability must fall as chunks grow.
        for w in curve.windows(2) {
            assert!(w[0].p_demand_blocked >= w[1].p_demand_blocked);
            assert!(w[0].subscribers_per_ip >= w[1].subscribers_per_ip);
        }
        // 512-port chunks block exactly the 10 heavy subscribers.
        let r512 = curve.iter().find(|r| r.chunk_size == 512).expect("swept");
        assert!((r512.p_demand_blocked - 0.10).abs() < 1e-9);
        // 1K chunks host 63 subscribers per IP (64512/1024).
        let r1k = curve.iter().find(|r| r.chunk_size == 1024).expect("swept");
        assert_eq!(r1k.subscribers_per_ip, 63);
        assert!((r1k.p_demand_blocked - 0.0).abs() < 1e-9);
    }

    #[test]
    fn shard_merge_is_order_independent_and_adds_up() {
        let a = ShardDemand {
            ports: vec![3, 1, 7],
            worst_ip_utilization: 0.4,
            drops_port_exhausted: 2,
            drops_session_limit: 1,
        };
        let b = ShardDemand {
            ports: vec![2, 5],
            worst_ip_utilization: 0.9,
            drops_port_exhausted: 3,
            drops_session_limit: 0,
        };
        let (s1, d1) = merge_shard_demand(60, 100, &[a.clone(), b.clone()]);
        let (s2, d2) = merge_shard_demand(60, 100, &[b, a]);
        assert_eq!(s1, s2, "shard order must not matter");
        assert_eq!(d1, d2);
        assert_eq!(d1, vec![1, 2, 3, 5, 7]);
        assert_eq!(s1.mappings, 18);
        assert_eq!(s1.active_subscribers, 5);
        assert_eq!(s1.ports_max, 7);
        assert_eq!(s1.worst_ip_utilization, 0.9);
        assert_eq!(s1.drops_port_exhausted, 5);
        assert_eq!(s1.drops_session_limit, 1);
        // Percentiles match computing them over the merged distribution.
        let (p50, p95, p99, _) = ports_percentiles(d1, 100);
        assert_eq!((s1.ports_p50, s1.ports_p95, s1.ports_p99), (p50, p95, p99));
    }

    #[test]
    fn single_shard_merge_matches_direct_sample() {
        let shard = ShardDemand {
            ports: vec![4, 4, 2],
            worst_ip_utilization: 0.25,
            drops_port_exhausted: 0,
            drops_session_limit: 0,
        };
        let (s, dist) = merge_shard_demand(30, 10, std::slice::from_ref(&shard));
        assert_eq!(s.t_secs, 30);
        assert_eq!(s.mappings, 10);
        assert_eq!(dist, vec![2, 4, 4]);
    }

    #[test]
    fn ports_percentiles_pad_idle_subscribers() {
        // 2 active of 100 subscribers: median is zero, max is 20.
        let (p50, p95, p99, max) = ports_percentiles(vec![10, 20], 100);
        assert_eq!(p50, 0.0);
        assert_eq!(max, 20);
        assert!(p95 >= 0.0); // quantiles well-defined
        assert!(p99 <= 20.0);
    }

    #[test]
    fn shard_load_imbalance_is_max_over_mean() {
        let l = ShardLoad::from_per_shard(vec![100, 100, 100, 100], vec![30, 10, 10, 10]);
        assert!((l.flow_imbalance - 1.0).abs() < 1e-12, "balanced flows");
        assert!((l.mapping_imbalance - 2.0).abs() < 1e-12, "30 vs mean 15");
        let empty = ShardLoad::from_per_shard(vec![], vec![0, 0]);
        assert_eq!(empty.flow_imbalance, 0.0);
        assert_eq!(empty.mapping_imbalance, 0.0, "no load: well-defined zero");
        let single = ShardLoad::from_per_shard(vec![7], vec![7]);
        assert!((single.flow_imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shard_load_worst_window_attaches() {
        let l = ShardLoad::from_per_shard(vec![10, 10], vec![5, 5]);
        assert_eq!(l.worst_window_flow_imbalance, 0.0, "unset by default");
        let l = l.with_worst_window(1.8, 120);
        assert_eq!(l.worst_window_flow_imbalance, 1.8);
        assert_eq!(l.worst_window_start_secs, 120);
        assert!(
            (l.flow_imbalance - 1.0).abs() < 1e-12,
            "cumulative untouched"
        );
    }

    #[test]
    fn report_assembles() {
        let mut s = DemandSeries::default();
        for t in 0..50 {
            s.push(sample(t * 60, t % 7 * 10));
        }
        let dist = vec![5u32; 40];
        let r = build_report(&s, &dist, 200, 4, USABLE_PORTS_PER_IP);
        assert_eq!(r.peak_mappings, 60);
        assert_eq!(r.subscribers_per_external_ip, 50.0);
        assert!(r.p99_mappings >= r.median_mappings);
        assert_eq!(r.chunk_curve.len(), CHUNK_SIZES.len());
        assert!(r.worst_ip_utilization > 0.0);
    }

    #[test]
    fn empty_series_is_safe() {
        let r = build_report(&DemandSeries::default(), &[], 0, 0, USABLE_PORTS_PER_IP);
        assert_eq!(r.peak_mappings, 0);
        assert_eq!(r.chunk_curve.len(), CHUNK_SIZES.len());
        assert_eq!(r.chunk_curve[0].p_demand_blocked, 0.0);
    }
}
