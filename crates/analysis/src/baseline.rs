//! Baseline detectors and ground-truth scoring — the ablation study.
//!
//! The paper's detectors are deliberately conservative. These baselines
//! remove one ingredient each, so benchmarks can quantify what each
//! ingredient buys:
//!
//! * [`bt_any_leak`] — flag any AS with *any* internal-address leakage
//!   (no clustering at all): conflates home NATs with CGNs.
//! * [`bt_low_threshold`] — clustering, but the boundary is 2×2 instead
//!   of 5×5: vulnerable to dynamic-address artifacts.
//! * [`nz_any_mismatch`] — flag any AS with a single `IPcpe ≠ IPpub`
//!   session (no top-/24 filter, no diversity requirement).

use crate::graph::LeakGraph;
use crate::obs::{BtLeakObs, SessionObs};
use netcore::AsId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Precision/recall of a detector against ground truth, evaluated over
/// the ASes the detector covered.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrecisionRecall {
    pub true_positives: usize,
    pub false_positives: usize,
    pub false_negatives: usize,
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

/// Score `detected` against `truth` over the `covered` universe.
pub fn score(
    detected: &BTreeSet<AsId>,
    truth: &BTreeSet<AsId>,
    covered: &BTreeSet<AsId>,
) -> PrecisionRecall {
    let tp = detected
        .iter()
        .filter(|a| truth.contains(a) && covered.contains(a))
        .count();
    let fp = detected
        .iter()
        .filter(|a| !truth.contains(a) && covered.contains(a))
        .count();
    let fn_ = covered
        .iter()
        .filter(|a| truth.contains(a) && !detected.contains(a))
        .count();
    let precision = if tp + fp == 0 {
        1.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fn_ == 0 {
        1.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    PrecisionRecall {
        true_positives: tp,
        false_positives: fp,
        false_negatives: fn_,
        precision,
        recall,
        f1,
    }
}

/// Baseline: any leakage at all means "CGN".
pub fn bt_any_leak(leaks: &[BtLeakObs]) -> BTreeSet<AsId> {
    leaks.iter().filter_map(|l| l.leaker_as).collect()
}

/// Baseline: clustering with a loose boundary (≥2 external, ≥2 internal).
pub fn bt_low_threshold(leaks: &[BtLeakObs]) -> BTreeSet<AsId> {
    let mut graphs: BTreeMap<AsId, LeakGraph> = BTreeMap::new();
    for l in leaks {
        if let Some(a) = l.leaker_as {
            graphs
                .entry(a)
                .or_default()
                .add_edge(l.leaker_ip, l.internal_ip);
        }
    }
    graphs
        .into_iter()
        .filter(|(_, g)| {
            g.largest_component()
                .map(|c| c.external_ips >= 2 && c.internal_ips >= 2)
                .unwrap_or(false)
        })
        .map(|(a, _)| a)
        .collect()
}

/// Baseline: a single `IPcpe ≠ IPpub` session flags the AS.
pub fn nz_any_mismatch(sessions: &[SessionObs]) -> BTreeSet<AsId> {
    sessions
        .iter()
        .filter(|s| !s.cellular)
        .filter(|s| match (s.ip_cpe, s.ip_pub) {
            (Some(cpe), Some(p)) => cpe != p,
            _ => false,
        })
        .filter_map(|s| s.as_id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::{ip, ReservedRange};

    fn ids(v: &[u32]) -> BTreeSet<AsId> {
        v.iter().map(|x| AsId(*x)).collect()
    }

    #[test]
    fn score_computes_prf() {
        let detected = ids(&[1, 2, 3]);
        let truth = ids(&[1, 2, 4]);
        let covered = ids(&[1, 2, 3, 4, 5]);
        let s = score(&detected, &truth, &covered);
        assert_eq!(s.true_positives, 2);
        assert_eq!(s.false_positives, 1);
        assert_eq!(s.false_negatives, 1);
        assert!((s.precision - 2.0 / 3.0).abs() < 1e-9);
        assert!((s.recall - 2.0 / 3.0).abs() < 1e-9);
        assert!((s.f1 - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn score_edge_cases() {
        let s = score(&ids(&[]), &ids(&[]), &ids(&[1]));
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        // Detections outside the covered universe are ignored.
        let s = score(&ids(&[9]), &ids(&[]), &ids(&[1]));
        assert_eq!(s.false_positives, 0);
    }

    fn leak(as_n: u32, leaker_last: u8, internal_last: u8) -> BtLeakObs {
        BtLeakObs {
            leaker_ip: ip(50, as_n as u8, 0, leaker_last),
            leaker_as: Some(AsId(as_n)),
            internal_ip: ip(192, 168, 1, internal_last),
            range: ReservedRange::R192,
        }
    }

    #[test]
    fn any_leak_overcounts() {
        // One isolated home leak per AS: baseline flags both; neither is
        // a CGN.
        let leaks = vec![leak(1, 1, 100), leak(2, 1, 101)];
        assert_eq!(bt_any_leak(&leaks), ids(&[1, 2]));
        // The loose-cluster baseline at least needs a cluster.
        assert!(bt_low_threshold(&leaks).is_empty());
    }

    #[test]
    fn low_threshold_catches_dynamic_address_artifact() {
        // A home whose public IP changed once: the same internal peers
        // now appear behind two external IPs — a 2×2 cluster. The loose
        // baseline flags it; the paper's 5×5 boundary would not.
        let leaks = vec![
            leak(1, 1, 100),
            leak(1, 1, 101),
            leak(1, 2, 100),
            leak(1, 2, 101),
        ];
        assert_eq!(bt_low_threshold(&leaks), ids(&[1]));
    }

    #[test]
    fn nz_any_mismatch_flags_single_session() {
        let mut s = SessionObs::skeleton(AsId(3), false, ip(192, 168, 0, 2));
        s.ip_cpe = Some(ip(192, 168, 1, 1)); // inner home NAT, not a CGN
        s.ip_pub = Some(ip(60, 0, 0, 1));
        assert_eq!(nz_any_mismatch(&[s]), ids(&[3]));
    }
}
