//! # analysis — the paper's data-analysis pipelines
//!
//! This crate consumes *observation records* (what the crawler and the
//! Netalyzr sessions collected) and computes every table and figure of the
//! evaluation:
//!
//! * [`graph`] — union-find clustering of (leaking peer → internal peer)
//!   edges, the heart of the BitTorrent methodology (Figs 3/4);
//! * [`bt_detect`] — the per-AS CGN decision from DHT leakage
//!   (largest cluster ≥ 5 external and ≥ 5 internal IPs);
//! * [`addr_class`] — address classification against reserved ranges and
//!   the routing table (Table 4);
//! * [`nz_detect`] — the Netalyzr detectors: cellular (direct `IPdev`
//!   classification) and non-cellular (UPnP `IPcpe` vs `IPpub`, the
//!   top-10 /24 CPE filter and the 0.4·N /24-diversity threshold, Fig. 5);
//! * [`port_alloc`] — port-allocation strategy classification and chunk
//!   detection (Figs 8/9, Table 6);
//! * [`timeouts`] — mapping-timeout aggregation (Fig. 12);
//! * [`stun_class`] — STUN-type aggregation (Fig. 13);
//! * [`distance`] — NAT-distance histograms (Fig. 11) and the TTL-test
//!   detection-rate table (Table 7);
//! * [`coverage`] — coverage and CGN-penetration rates across AS
//!   populations (Table 5, Fig. 6);
//! * [`port_demand`] — operator-side dimensioning: port/state capacity
//!   needed for a subscriber population, chunk-size vs. blocking
//!   probability (the capacity question behind §6.2's findings);
//! * [`baseline`] — naive detector baselines and precision/recall scoring
//!   against ground truth (the ablation study);
//! * [`stats`] — histograms, quantiles and box-plot summaries.

pub mod addr_class;
pub mod baseline;
pub mod bt_detect;
pub mod coverage;
pub mod distance;
pub mod graph;
pub mod log_volume;
pub mod nz_detect;
pub mod obs;
pub mod port_alloc;
pub mod port_demand;
pub mod stats;
pub mod stun_class;
pub mod timeouts;

pub use bt_detect::{BtDetection, BtDetector};
pub use coverage::{CoverageReport, Populations};
pub use graph::{ClusterSummary, LeakGraph};
pub use nz_detect::{NzCellularDetector, NzNonCellularDetector};
pub use obs::{BtLeakObs, FlowObs, SessionObs, TtlNatObs, TtlObs};
pub use port_demand::{ChunkBlockingRow, DemandSample, DemandSeries, PortDemandReport};
pub use stats::{BoxplotStats, Histogram};
