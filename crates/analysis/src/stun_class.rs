//! STUN mapping-type analysis (§6.5, Fig. 13).

use crate::obs::SessionObs;
use nat_engine::StunNatType;
use netcore::AsId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Distribution over the four STUN types (+unclassified "other").
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StunDistribution {
    pub symmetric: usize,
    pub port_address_restricted: usize,
    pub address_restricted: usize,
    pub full_cone: usize,
    pub total: usize,
}

impl StunDistribution {
    pub fn add(&mut self, t: StunNatType) {
        self.total += 1;
        match t {
            StunNatType::Symmetric => self.symmetric += 1,
            StunNatType::PortAddressRestricted => self.port_address_restricted += 1,
            StunNatType::AddressRestricted => self.address_restricted += 1,
            StunNatType::FullCone => self.full_cone += 1,
        }
    }

    /// Shares in the paper's restrictive→permissive order.
    pub fn shares(&self) -> [(StunNatType, f64); 4] {
        let n = self.total.max(1) as f64;
        [
            (StunNatType::Symmetric, self.symmetric as f64 / n),
            (
                StunNatType::PortAddressRestricted,
                self.port_address_restricted as f64 / n,
            ),
            (
                StunNatType::AddressRestricted,
                self.address_restricted as f64 / n,
            ),
            (StunNatType::FullCone, self.full_cone as f64 / n),
        ]
    }

    pub fn share_of(&self, t: StunNatType) -> f64 {
        let n = self.total.max(1) as f64;
        match t {
            StunNatType::Symmetric => self.symmetric as f64 / n,
            StunNatType::PortAddressRestricted => self.port_address_restricted as f64 / n,
            StunNatType::AddressRestricted => self.address_restricted as f64 / n,
            StunNatType::FullCone => self.full_cone as f64 / n,
        }
    }
}

/// Fig. 13(a): the session-level STUN type distribution for CPE NATs
/// (non-cellular sessions outside CGN-positive ASes).
pub fn fig13a_cpe_sessions(
    sessions: &[SessionObs],
    cgn_positive: impl Fn(AsId) -> bool,
) -> StunDistribution {
    let mut d = StunDistribution::default();
    for s in sessions {
        if s.cellular {
            continue;
        }
        if let Some(a) = s.as_id {
            if cgn_positive(a) {
                continue;
            }
        }
        if let Some(t) = s.stun_nat {
            d.add(t);
        }
    }
    d
}

/// Fig. 13(b): per CGN-positive AS, the *most permissive* STUN type
/// observed across its sessions (a lower bound on the CGN's own
/// behaviour, since cascaded NATs can only be more restrictive).
pub fn fig13b_most_permissive_per_as(
    sessions: &[SessionObs],
    include: impl Fn(AsId) -> bool,
) -> BTreeMap<AsId, StunNatType> {
    let mut best: BTreeMap<AsId, StunNatType> = BTreeMap::new();
    for s in sessions {
        let Some(a) = s.as_id else { continue };
        if !include(a) {
            continue;
        }
        let Some(t) = s.stun_nat else { continue };
        best.entry(a)
            .and_modify(|cur| {
                if t > *cur {
                    *cur = t;
                }
            })
            .or_insert(t);
    }
    best
}

/// Aggregate a per-AS type map into a distribution.
pub fn distribution_over_ases(per_as: &BTreeMap<AsId, StunNatType>) -> StunDistribution {
    let mut d = StunDistribution::default();
    for t in per_as.values() {
        d.add(*t);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::ip;

    fn session(as_n: u32, cellular: bool, t: Option<StunNatType>) -> SessionObs {
        let mut s = SessionObs::skeleton(AsId(as_n), cellular, ip(192, 168, 1, 100));
        s.stun_nat = t;
        s
    }

    #[test]
    fn distribution_counts_and_shares() {
        let mut d = StunDistribution::default();
        d.add(StunNatType::Symmetric);
        d.add(StunNatType::FullCone);
        d.add(StunNatType::FullCone);
        d.add(StunNatType::PortAddressRestricted);
        assert_eq!(d.total, 4);
        assert_eq!(d.share_of(StunNatType::FullCone), 0.5);
        let sum: f64 = d.shares().iter().map(|(_, v)| v).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig13a_excludes_cgn_and_cellular() {
        let sessions = vec![
            session(1, false, Some(StunNatType::PortAddressRestricted)),
            session(2, false, Some(StunNatType::Symmetric)), // CGN AS → excluded
            session(3, true, Some(StunNatType::FullCone)),   // cellular → excluded
            session(1, false, None),                         // no STUN → ignored
        ];
        let d = fig13a_cpe_sessions(&sessions, |a| a == AsId(2));
        assert_eq!(d.total, 1);
        assert_eq!(d.port_address_restricted, 1);
    }

    #[test]
    fn fig13b_takes_most_permissive() {
        // NAT444 sessions: CPE behaviours mask the CGN differently; the
        // most permissive observation bounds the CGN type.
        let sessions = vec![
            session(1, false, Some(StunNatType::Symmetric)),
            session(1, false, Some(StunNatType::PortAddressRestricted)),
            session(1, false, Some(StunNatType::AddressRestricted)),
            session(2, false, Some(StunNatType::Symmetric)),
            session(2, false, Some(StunNatType::Symmetric)),
        ];
        let per_as = fig13b_most_permissive_per_as(&sessions, |_| true);
        assert_eq!(per_as[&AsId(1)], StunNatType::AddressRestricted);
        assert_eq!(
            per_as[&AsId(2)],
            StunNatType::Symmetric,
            "all-symmetric AS stays symmetric"
        );
        let d = distribution_over_ases(&per_as);
        assert_eq!(d.total, 2);
        assert_eq!(d.symmetric, 1);
    }

    #[test]
    fn fig13b_respects_filter() {
        let sessions = vec![session(1, false, Some(StunNatType::FullCone))];
        let per_as = fig13b_most_permissive_per_as(&sessions, |_| false);
        assert!(per_as.is_empty());
    }
}
