//! Coverage and CGN-penetration rates (§5, Table 5, Fig. 6).

use crate::stats::pct;
use netcore::{AsId, Rir};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The AS populations results are reported against.
#[derive(Debug, Clone, Default)]
pub struct Populations {
    /// All routed ASes.
    pub routed: BTreeSet<AsId>,
    /// PBL-style eyeball list.
    pub pbl: BTreeSet<AsId>,
    /// APNIC-style eyeball list.
    pub apnic: BTreeSet<AsId>,
    /// Cellular ASes.
    pub cellular: BTreeSet<AsId>,
    /// RIR of each AS (for Fig. 6).
    pub rir_of: BTreeMap<AsId, Rir>,
}

/// One method's view: which ASes it covered and which it flagged.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MethodCoverage {
    pub covered: BTreeSet<AsId>,
    pub positive: BTreeSet<AsId>,
}

impl MethodCoverage {
    pub fn new(covered: BTreeSet<AsId>, positive: BTreeSet<AsId>) -> MethodCoverage {
        assert!(
            positive.is_subset(&covered),
            "an AS cannot be positive without being covered"
        );
        MethodCoverage { covered, positive }
    }

    /// Union of two methods (the paper's "BitTorrent ∪ Netalyzr" row).
    pub fn union(&self, other: &MethodCoverage) -> MethodCoverage {
        MethodCoverage {
            covered: self.covered.union(&other.covered).copied().collect(),
            positive: self.positive.union(&other.positive).copied().collect(),
        }
    }

    /// Restrict to a population; returns (covered, positive) counts.
    pub fn against(&self, population: &BTreeSet<AsId>) -> (usize, usize) {
        let covered = self.covered.intersection(population).count();
        let positive = self.positive.intersection(population).count();
        (covered, positive)
    }
}

/// One row of Table 5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5Row {
    pub method: String,
    /// (covered, % of population, positive, % of covered) per population.
    pub routed: (usize, f64, usize, f64),
    pub pbl: (usize, f64, usize, f64),
    pub apnic: (usize, f64, usize, f64),
}

/// Table 5 plus the population sizes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoverageReport {
    pub routed_total: usize,
    pub pbl_total: usize,
    pub apnic_total: usize,
    pub rows: Vec<Table5Row>,
}

fn row(method: &str, cov: &MethodCoverage, pops: &Populations) -> Table5Row {
    let make = |population: &BTreeSet<AsId>| {
        let (covered, positive) = cov.against(population);
        (
            covered,
            pct(covered, population.len()),
            positive,
            pct(positive, covered),
        )
    };
    Table5Row {
        method: method.to_string(),
        routed: make(&pops.routed),
        pbl: make(&pops.pbl),
        apnic: make(&pops.apnic),
    }
}

/// Assemble Table 5 from the three method coverages.
pub fn table5(
    bt: &MethodCoverage,
    nz_noncellular: &MethodCoverage,
    nz_cellular: &MethodCoverage,
    pops: &Populations,
) -> CoverageReport {
    let union = bt.union(nz_noncellular);
    CoverageReport {
        routed_total: pops.routed.len(),
        pbl_total: pops.pbl.len(),
        apnic_total: pops.apnic.len(),
        rows: vec![
            row("BitTorrent", bt, pops),
            row("Netalyzr non-cellular", nz_noncellular, pops),
            row("BitTorrent ∪ Netalyzr", &union, pops),
            row("Netalyzr cellular", nz_cellular, pops),
        ],
    }
}

/// Fig. 6: per-RIR eyeball coverage and CGN-positive rates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6 {
    /// (a) % of eyeball (PBL) ASes covered, per RIR.
    pub coverage_pct: BTreeMap<Rir, f64>,
    /// (b) % of covered eyeball ASes CGN-positive, per RIR.
    pub positive_pct: BTreeMap<Rir, f64>,
    /// (c) % of covered cellular ASes CGN-positive, per RIR.
    pub cellular_positive_pct: BTreeMap<Rir, f64>,
}

pub fn fig6(eyeball_union: &MethodCoverage, cellular: &MethodCoverage, pops: &Populations) -> Fig6 {
    let mut coverage = BTreeMap::new();
    let mut positive = BTreeMap::new();
    let mut cell_positive = BTreeMap::new();
    for rir in Rir::ALL {
        let in_rir = |a: &AsId| pops.rir_of.get(a) == Some(&rir);
        let eyeballs: BTreeSet<AsId> = pops.pbl.iter().filter(|a| in_rir(a)).copied().collect();
        let covered: BTreeSet<AsId> = eyeball_union
            .covered
            .intersection(&eyeballs)
            .copied()
            .collect();
        let pos = eyeball_union.positive.intersection(&covered).count();
        coverage.insert(rir, pct(covered.len(), eyeballs.len()));
        positive.insert(rir, pct(pos, covered.len()));

        let cell: BTreeSet<AsId> = pops
            .cellular
            .iter()
            .filter(|a| in_rir(a))
            .copied()
            .collect();
        let cell_cov: BTreeSet<AsId> = cellular.covered.intersection(&cell).copied().collect();
        let cell_pos = cellular.positive.intersection(&cell_cov).count();
        cell_positive.insert(rir, pct(cell_pos, cell_cov.len()));
    }
    Fig6 {
        coverage_pct: coverage,
        positive_pct: positive,
        cellular_positive_pct: cell_positive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> BTreeSet<AsId> {
        v.iter().map(|x| AsId(*x)).collect()
    }

    fn pops() -> Populations {
        let mut rir_of = BTreeMap::new();
        for i in 0..10 {
            rir_of.insert(AsId(i), if i < 5 { Rir::Apnic } else { Rir::Arin });
        }
        Populations {
            routed: ids(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]),
            pbl: ids(&[0, 1, 2, 5, 6]),
            apnic: ids(&[0, 1, 3, 5, 7]),
            cellular: ids(&[4, 9]),
            rir_of,
        }
    }

    #[test]
    fn method_union_and_against() {
        let a = MethodCoverage::new(ids(&[0, 1, 2]), ids(&[1]));
        let b = MethodCoverage::new(ids(&[2, 3]), ids(&[3]));
        let u = a.union(&b);
        assert_eq!(u.covered, ids(&[0, 1, 2, 3]));
        assert_eq!(u.positive, ids(&[1, 3]));
        let (cov, pos) = u.against(&ids(&[1, 3, 9]));
        assert_eq!((cov, pos), (2, 2));
    }

    #[test]
    #[should_panic(expected = "positive without being covered")]
    fn positive_must_be_covered() {
        MethodCoverage::new(ids(&[1]), ids(&[2]));
    }

    #[test]
    fn table5_rows_and_percentages() {
        let bt = MethodCoverage::new(ids(&[0, 1, 5]), ids(&[0]));
        let nz = MethodCoverage::new(ids(&[1, 2]), ids(&[2]));
        let cell = MethodCoverage::new(ids(&[4, 9]), ids(&[4, 9]));
        let t = table5(&bt, &nz, &cell, &pops());
        assert_eq!(t.rows.len(), 4);
        // BT: covered 3/10 routed = 30%.
        assert_eq!(t.rows[0].routed.0, 3);
        assert!((t.rows[0].routed.1 - 30.0).abs() < 1e-9);
        // Union row: covered {0,1,2,5}, positive {0,2}.
        assert_eq!(t.rows[2].routed.0, 4);
        assert_eq!(t.rows[2].routed.2, 2);
        // PBL column of the union: covered {0,1,2,5} ∩ pbl = 4 of 5.
        assert_eq!(t.rows[2].pbl.0, 4);
        assert!((t.rows[2].pbl.1 - 80.0).abs() < 1e-9);
    }

    #[test]
    fn fig6_per_rir_rates() {
        // Eyeballs: APNIC {0,1,2}, ARIN {5,6}. Union covers {0,1,5},
        // positives {0,5}.
        let union = MethodCoverage::new(ids(&[0, 1, 5]), ids(&[0, 5]));
        let cell = MethodCoverage::new(ids(&[4, 9]), ids(&[4]));
        let f = fig6(&union, &cell, &pops());
        // APNIC coverage: 2 of 3 eyeballs.
        assert!((f.coverage_pct[&Rir::Apnic] - 66.6667).abs() < 0.01);
        // APNIC positive: 1 of 2 covered.
        assert!((f.positive_pct[&Rir::Apnic] - 50.0).abs() < 1e-9);
        // ARIN positive: covered {5}, positive {5} → 100%.
        assert!((f.positive_pct[&Rir::Arin] - 100.0).abs() < 1e-9);
        // Cellular: APNIC {4}: covered+positive → 100%; ARIN {9}: covered,
        // not positive → 0%.
        assert!((f.cellular_positive_pct[&Rir::Apnic] - 100.0).abs() < 1e-9);
        assert!((f.cellular_positive_pct[&Rir::Arin] - 0.0).abs() < 1e-9);
        // Empty RIRs report 0 without panicking.
        assert_eq!(f.coverage_pct[&Rir::Lacnic], 0.0);
    }
}
