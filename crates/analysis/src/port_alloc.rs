//! Port & IP allocation analysis (§6.2, Figs 8/9, Table 6).

use crate::obs::SessionObs;
use crate::stats::Histogram;
use netcore::AsId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A session's inferred port-allocation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PortStrategy {
    Preservation,
    Sequential,
    Random,
}

impl PortStrategy {
    pub fn name(self) -> &'static str {
        match self {
            PortStrategy::Preservation => "preservation",
            PortStrategy::Sequential => "sequential",
            PortStrategy::Random => "random",
        }
    }
}

/// Classification leeway from the paper (footnote 12): preservation if at
/// least 20% of ports survive, sequential if consecutive observed ports
/// differ by less than 50.
#[derive(Debug, Clone)]
pub struct PortClassifier {
    pub preservation_fraction: f64,
    pub sequential_max_gap: u16,
    /// Minimum completed flows to classify at all.
    pub min_flows: usize,
}

impl Default for PortClassifier {
    fn default() -> Self {
        PortClassifier {
            preservation_fraction: 0.20,
            sequential_max_gap: 50,
            min_flows: 4,
        }
    }
}

impl PortClassifier {
    /// Classify one session's flows `(local port, observed port)`.
    pub fn classify(&self, flows: &[(u16, u16)]) -> Option<PortStrategy> {
        if flows.len() < self.min_flows {
            return None;
        }
        let preserved = flows.iter().filter(|(l, o)| l == o).count();
        if preserved as f64 >= self.preservation_fraction * flows.len() as f64 {
            return Some(PortStrategy::Preservation);
        }
        let sequential = flows.windows(2).all(|w| {
            let (_, a) = w[0];
            let (_, b) = w[1];
            b.abs_diff(a) < self.sequential_max_gap
        });
        if sequential {
            return Some(PortStrategy::Sequential);
        }
        Some(PortStrategy::Random)
    }

    /// Classify a full session observation (uses only completed flows).
    pub fn classify_session(&self, s: &SessionObs) -> Option<PortStrategy> {
        let flows: Vec<(u16, u16)> = s.observed_flows().map(|(l, o)| (l, o.port)).collect();
        self.classify(&flows)
    }
}

/// Per-AS strategy mix — one bar of Fig. 9.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AsStrategyMix {
    pub sessions: usize,
    pub preservation: usize,
    pub sequential: usize,
    pub random: usize,
}

impl AsStrategyMix {
    pub fn add(&mut self, s: PortStrategy) {
        self.sessions += 1;
        match s {
            PortStrategy::Preservation => self.preservation += 1,
            PortStrategy::Sequential => self.sequential += 1,
            PortStrategy::Random => self.random += 1,
        }
    }

    /// Whether a single strategy explains every session ("pure" ASes on
    /// the left of Fig. 9).
    pub fn is_pure(&self) -> bool {
        let full = self.sessions;
        self.preservation == full || self.sequential == full || self.random == full
    }

    /// The dominant strategy (majority; ties broken in enum order).
    pub fn dominant(&self) -> Option<PortStrategy> {
        if self.sessions == 0 {
            return None;
        }
        let triples = [
            (self.preservation, PortStrategy::Preservation),
            (self.sequential, PortStrategy::Sequential),
            (self.random, PortStrategy::Random),
        ];
        triples.into_iter().max_by_key(|(c, _)| *c).map(|(_, s)| s)
    }

    /// Shares in (preservation, sequential, random) order.
    pub fn shares(&self) -> (f64, f64, f64) {
        let n = self.sessions.max(1) as f64;
        (
            self.preservation as f64 / n,
            self.sequential as f64 / n,
            self.random as f64 / n,
        )
    }
}

/// Build the per-AS strategy mixes of Fig. 9, restricted to a set of
/// (CGN-positive) ASes.
pub fn strategy_mix_per_as(
    sessions: &[SessionObs],
    classifier: &PortClassifier,
    include: impl Fn(AsId) -> bool,
) -> BTreeMap<AsId, AsStrategyMix> {
    let mut out: BTreeMap<AsId, AsStrategyMix> = BTreeMap::new();
    for s in sessions {
        let Some(a) = s.as_id else { continue };
        if !include(a) {
            continue;
        }
        if let Some(strategy) = classifier.classify_session(s) {
            out.entry(a).or_default().add(strategy);
        }
    }
    out
}

/// Table 6, top half: the dominant-strategy distribution across ASes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Table6 {
    pub ases: usize,
    pub preservation_pct: f64,
    pub sequential_pct: f64,
    pub random_pct: f64,
    /// ASes with chunk-based allocation and their estimated chunk sizes.
    pub chunked: Vec<(AsId, u16)>,
}

/// Compute Table 6 for a set of AS mixes.
pub fn table6(mixes: &BTreeMap<AsId, AsStrategyMix>, chunks: &BTreeMap<AsId, u16>) -> Table6 {
    let n = mixes.len();
    let mut counts = [0usize; 3];
    for m in mixes.values() {
        match m.dominant() {
            Some(PortStrategy::Preservation) => counts[0] += 1,
            Some(PortStrategy::Sequential) => counts[1] += 1,
            Some(PortStrategy::Random) => counts[2] += 1,
            None => {}
        }
    }
    Table6 {
        ases: n,
        preservation_pct: crate::stats::pct(counts[0], n),
        sequential_pct: crate::stats::pct(counts[1], n),
        random_pct: crate::stats::pct(counts[2], n),
        chunked: chunks.iter().map(|(a, c)| (*a, *c)).collect(),
    }
}

/// Chunk detection (§6.2): at least `min_sessions` random-classified
/// sessions, every session's observed ports spanning less than
/// `max_spread`; the chunk size estimate is the smallest power of two
/// covering the widest session spread.
#[derive(Debug, Clone)]
pub struct ChunkDetector {
    pub min_sessions: usize,
    pub max_spread: u16,
}

impl Default for ChunkDetector {
    fn default() -> Self {
        ChunkDetector {
            min_sessions: 20,
            max_spread: 16_384,
        }
    }
}

impl ChunkDetector {
    /// Detect chunked allocation per AS; returns estimated chunk sizes.
    pub fn detect(
        &self,
        sessions: &[SessionObs],
        classifier: &PortClassifier,
        include: impl Fn(AsId) -> bool,
    ) -> BTreeMap<AsId, u16> {
        let mut spreads: BTreeMap<AsId, Vec<u16>> = BTreeMap::new();
        for s in sessions {
            let Some(a) = s.as_id else { continue };
            if !include(a) {
                continue;
            }
            if classifier.classify_session(s) != Some(PortStrategy::Random) {
                continue;
            }
            let ports: Vec<u16> = s.observed_flows().map(|(_, o)| o.port).collect();
            if ports.len() < classifier.min_flows {
                continue;
            }
            let spread =
                ports.iter().max().expect("nonempty") - ports.iter().min().expect("nonempty");
            spreads.entry(a).or_default().push(spread);
        }
        spreads
            .into_iter()
            .filter(|(_, v)| v.len() >= self.min_sessions && v.iter().all(|s| *s < self.max_spread))
            .map(|(a, v)| {
                let widest = *v.iter().max().expect("nonempty");
                (
                    a,
                    (widest as u32 + 1).next_power_of_two().min(65_536) as u16,
                )
            })
            .collect()
    }
}

/// Fig. 8(a): the two source-port histograms — sessions whose ports were
/// preserved (OS ephemeral ranges) vs port-translated sessions (whole
/// port space).
pub fn fig8a_histograms(
    sessions: &[SessionObs],
    classifier: &PortClassifier,
    bin_width: u64,
) -> (Histogram, Histogram) {
    let mut preserved = Histogram::new(bin_width, 65_535);
    let mut translated = Histogram::new(bin_width, 65_535);
    for s in sessions {
        match classifier.classify_session(s) {
            Some(PortStrategy::Preservation) => {
                for (_, o) in s.observed_flows() {
                    preserved.add(o.port as u64);
                }
            }
            Some(_) => {
                for (_, o) in s.observed_flows() {
                    translated.add(o.port as u64);
                }
            }
            None => {}
        }
    }
    (preserved, translated)
}

/// Fig. 8(b): per CPE model, (sessions, port-preserving sessions) for
/// non-CGN sessions that reported a model via UPnP.
pub fn fig8b_cpe_preservation(
    sessions: &[SessionObs],
    classifier: &PortClassifier,
    exclude_as: impl Fn(AsId) -> bool,
) -> BTreeMap<String, (usize, usize)> {
    let mut out: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for s in sessions {
        if s.cellular {
            continue;
        }
        if let Some(a) = s.as_id {
            if exclude_as(a) {
                continue;
            }
        }
        let Some(model) = &s.cpe_model else { continue };
        let Some(strategy) = classifier.classify_session(s) else {
            continue;
        };
        let e = out.entry(model.clone()).or_insert((0, 0));
        e.0 += 1;
        if strategy == PortStrategy::Preservation {
            e.1 += 1;
        }
    }
    out
}

/// §6.2 "NAT pooling behavior": share of CGN-positive ASes showing
/// arbitrary pooling (several public IPs within >60% of sessions).
pub fn arbitrary_pooling_ases(
    sessions: &[SessionObs],
    include: impl Fn(AsId) -> bool,
    session_fraction: f64,
) -> BTreeMap<AsId, bool> {
    let mut per_as: BTreeMap<AsId, (usize, usize)> = BTreeMap::new();
    for s in sessions {
        let Some(a) = s.as_id else { continue };
        if !include(a) {
            continue;
        }
        let e = per_as.entry(a).or_insert((0, 0));
        e.0 += 1;
        if s.multiple_public_ips {
            e.1 += 1;
        }
    }
    per_as
        .into_iter()
        .filter(|(_, (n, _))| *n > 0)
        .map(|(a, (n, multi))| (a, multi as f64 > session_fraction * n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::FlowObs;
    use netcore::{ip, Endpoint};

    fn classifier() -> PortClassifier {
        PortClassifier::default()
    }

    #[test]
    fn preservation_classified() {
        // 3 of 10 preserved ≥ 20%.
        let flows: Vec<(u16, u16)> = (0..10)
            .map(|i| {
                let l = 40_000 + i;
                if i < 3 {
                    (l, l)
                } else {
                    (l, 1_000 + 997 * i)
                }
            })
            .collect();
        assert_eq!(
            classifier().classify(&flows),
            Some(PortStrategy::Preservation)
        );
    }

    #[test]
    fn sequential_classified_with_gaps() {
        // Strictly increasing with small gaps (collisions skip a few).
        let flows: Vec<(u16, u16)> = (0..10).map(|i| (40_000 + i, 5_000 + i * 3)).collect();
        assert_eq!(
            classifier().classify(&flows),
            Some(PortStrategy::Sequential)
        );
    }

    #[test]
    fn random_classified() {
        let flows: Vec<(u16, u16)> = [
            (40_000, 12_345),
            (40_001, 61_002),
            (40_002, 3_004),
            (40_003, 44_120),
            (40_004, 29_876),
            (40_005, 55_221),
        ]
        .to_vec();
        assert_eq!(classifier().classify(&flows), Some(PortStrategy::Random));
    }

    #[test]
    fn too_few_flows_unclassified() {
        assert_eq!(classifier().classify(&[(1, 1), (2, 2)]), None);
    }

    fn session_with_ports(as_n: u32, ports: &[(u16, u16)]) -> SessionObs {
        let mut s = SessionObs::skeleton(AsId(as_n), false, ip(192, 168, 1, 100));
        s.flows = ports
            .iter()
            .map(|(l, o)| FlowObs {
                local_port: *l,
                observed: Some(Endpoint::new(ip(60, 0, 0, 1), *o)),
            })
            .collect();
        s
    }

    #[test]
    fn mix_and_dominant() {
        let mut m = AsStrategyMix::default();
        m.add(PortStrategy::Random);
        m.add(PortStrategy::Random);
        m.add(PortStrategy::Sequential);
        assert_eq!(m.dominant(), Some(PortStrategy::Random));
        assert!(!m.is_pure());
        let (p, s, r) = m.shares();
        assert_eq!(p, 0.0);
        assert!((s - 1.0 / 3.0).abs() < 1e-9);
        assert!((r - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn per_as_mix_respects_filter() {
        let sessions = vec![
            session_with_ports(1, &[(1000, 1000), (1001, 1001), (1002, 1002), (1003, 1003)]),
            session_with_ports(2, &[(1000, 1000), (1001, 1001), (1002, 1002), (1003, 1003)]),
        ];
        let mixes = strategy_mix_per_as(&sessions, &classifier(), |a| a == AsId(1));
        assert!(mixes.contains_key(&AsId(1)));
        assert!(!mixes.contains_key(&AsId(2)));
    }

    #[test]
    fn chunk_detection_estimates_power_of_two() {
        // 25 sessions, each with 6 random-looking ports inside one 4K
        // block (different blocks per session).
        let mut sessions = Vec::new();
        for k in 0..25u16 {
            let base = 1_024 + (k % 12) * 4_096;
            let ports: Vec<(u16, u16)> = [3_001u16, 777, 2_222, 3_900, 150, 1_888]
                .iter()
                .map(|o| (40_000, base + o))
                .collect();
            sessions.push(session_with_ports(5, &ports));
        }
        let chunks = ChunkDetector::default().detect(&sessions, &classifier(), |a| a == AsId(5));
        assert_eq!(chunks.get(&AsId(5)), Some(&4_096));
    }

    #[test]
    fn chunk_detection_needs_enough_sessions() {
        let sessions: Vec<SessionObs> = (0..10u16)
            .map(|_| {
                session_with_ports(5, &[(1, 3_001), (2, 777), (3, 2_222), (4, 3_900), (5, 150)])
            })
            .collect();
        let chunks = ChunkDetector::default().detect(&sessions, &classifier(), |_| true);
        assert!(chunks.is_empty(), "10 < 20 sessions");
    }

    #[test]
    fn chunk_detection_rejects_wide_sessions() {
        let mut sessions = Vec::new();
        for _ in 0..25 {
            sessions.push(session_with_ports(
                5,
                &[
                    (1, 1_000),
                    (2, 60_000),
                    (3, 30_000),
                    (4, 45_000),
                    (5, 5_000),
                ],
            ));
        }
        let chunks = ChunkDetector::default().detect(&sessions, &classifier(), |_| true);
        assert!(chunks.is_empty(), "full-space sessions are not chunked");
    }

    #[test]
    fn table6_percentages() {
        let mut mixes = BTreeMap::new();
        for (i, strat) in [
            PortStrategy::Preservation,
            PortStrategy::Preservation,
            PortStrategy::Sequential,
            PortStrategy::Random,
        ]
        .iter()
        .enumerate()
        {
            let mut m = AsStrategyMix::default();
            m.add(*strat);
            mixes.insert(AsId(i as u32), m);
        }
        let t = table6(&mixes, &BTreeMap::new());
        assert_eq!(t.ases, 4);
        assert_eq!(t.preservation_pct, 50.0);
        assert_eq!(t.sequential_pct, 25.0);
        assert_eq!(t.random_pct, 25.0);
    }

    #[test]
    fn fig8a_separates_populations() {
        let preserved = session_with_ports(
            1,
            &[
                (33_000, 33_000),
                (33_001, 33_001),
                (33_002, 33_002),
                (33_003, 33_003),
            ],
        );
        let translated = session_with_ports(
            1,
            &[
                (33_000, 100),
                (33_001, 60_000),
                (33_002, 20_000),
                (33_003, 41_111),
            ],
        );
        let (p, t) = fig8a_histograms(&[preserved, translated], &classifier(), 4_096);
        assert_eq!(p.total, 4);
        assert_eq!(t.total, 4);
        // Preserved ports cluster in the OS ephemeral bin (33_000/4096=8).
        assert_eq!(p.bins[8], 4);
        // Translated ports spread over several bins.
        assert!(t.bins.iter().filter(|c| **c > 0).count() >= 3);
    }

    #[test]
    fn fig8b_groups_by_model() {
        let mut a = session_with_ports(
            1,
            &[
                (1_000, 1_000),
                (1_001, 1_001),
                (1_002, 1_002),
                (1_003, 1_003),
            ],
        );
        a.cpe_model = Some("Acme CPE-001".into());
        let mut b = session_with_ports(
            1,
            &[
                (1_000, 9_111),
                (1_001, 61_222),
                (1_002, 23_333),
                (1_003, 44_444),
            ],
        );
        b.cpe_model = Some("Acme CPE-001".into());
        let grouped = fig8b_cpe_preservation(&[a, b], &classifier(), |_| false);
        assert_eq!(grouped["Acme CPE-001"], (2, 1));
    }

    #[test]
    fn pooling_detection() {
        let mut multi = session_with_ports(1, &[(1, 2), (2, 3), (3, 4), (4, 5)]);
        multi.multiple_public_ips = true;
        let single = session_with_ports(1, &[(1, 2), (2, 3), (3, 4), (4, 5)]);
        let pools = arbitrary_pooling_ases(&[multi.clone(), multi.clone(), single], |_| true, 0.6);
        assert!(pools[&AsId(1)], "2/3 > 0.6 sessions saw multiple IPs");
    }
}
