//! Address classification — Table 4.
//!
//! Netalyzr categorizes the device address (`IPdev`) and the UPnP-reported
//! CPE WAN address (`IPcpe`) into: *private* (one of the four reserved
//! ranges), *unrouted* (nominally public, absent from the routing table),
//! *routed match* (routable and equal to the public address the server
//! saw) and *routed mismatch* (routable but translated on the way).

use crate::obs::SessionObs;
use crate::stats::pct;
use netcore::{classify_reserved, ReservedRange, RoutingTable};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// One classified address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AddrClass {
    Private(ReservedRange),
    Unrouted,
    RoutedMatch,
    RoutedMismatch,
}

impl AddrClass {
    pub fn label(self) -> &'static str {
        match self {
            AddrClass::Private(r) => r.shorthand(),
            AddrClass::Unrouted => "unrouted",
            AddrClass::RoutedMatch => "routed match",
            AddrClass::RoutedMismatch => "routed mismatch",
        }
    }

    /// Whether this classification indicates address translation.
    pub fn indicates_translation(self) -> bool {
        !matches!(self, AddrClass::RoutedMatch)
    }
}

/// Classify `addr` given the session's public address and the routing
/// table.
pub fn classify_addr(
    addr: Ipv4Addr,
    public: Option<Ipv4Addr>,
    routing: &RoutingTable,
) -> AddrClass {
    if let Some(r) = classify_reserved(addr) {
        return AddrClass::Private(r);
    }
    if !routing.is_routed(addr) {
        return AddrClass::Unrouted;
    }
    match public {
        Some(p) if p == addr => AddrClass::RoutedMatch,
        _ => AddrClass::RoutedMismatch,
    }
}

/// One column of Table 4: the class breakdown of a set of addresses.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AddrBreakdown {
    pub n: usize,
    pub r192: usize,
    pub r172: usize,
    pub r10: usize,
    pub r100: usize,
    pub unrouted: usize,
    pub routed_match: usize,
    pub routed_mismatch: usize,
}

impl AddrBreakdown {
    pub fn add(&mut self, class: AddrClass) {
        self.n += 1;
        match class {
            AddrClass::Private(ReservedRange::R192) => self.r192 += 1,
            AddrClass::Private(ReservedRange::R172) => self.r172 += 1,
            AddrClass::Private(ReservedRange::R10) => self.r10 += 1,
            AddrClass::Private(ReservedRange::R100) => self.r100 += 1,
            AddrClass::Unrouted => self.unrouted += 1,
            AddrClass::RoutedMatch => self.routed_match += 1,
            AddrClass::RoutedMismatch => self.routed_mismatch += 1,
        }
    }

    /// Percentages in Table 4 row order.
    pub fn percentages(&self) -> [(String, f64); 7] {
        [
            ("192X".into(), pct(self.r192, self.n)),
            ("172X".into(), pct(self.r172, self.n)),
            ("10X".into(), pct(self.r10, self.n)),
            ("100X".into(), pct(self.r100, self.n)),
            ("unrouted".into(), pct(self.unrouted, self.n)),
            ("routed match".into(), pct(self.routed_match, self.n)),
            ("routed mismatch".into(), pct(self.routed_mismatch, self.n)),
        ]
    }
}

impl fmt::Display for AddrBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "N={}", self.n)?;
        for (label, p) in self.percentages() {
            writeln!(f, "  {label:<16} {p:5.1}%")?;
        }
        Ok(())
    }
}

/// The three columns of Table 4.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Table4 {
    /// `IPdev` over cellular sessions.
    pub cellular_dev: AddrBreakdown,
    /// `IPdev` over non-cellular sessions.
    pub noncellular_dev: AddrBreakdown,
    /// `IPcpe` over non-cellular sessions where UPnP answered.
    pub noncellular_cpe: AddrBreakdown,
}

/// Compute Table 4 from the session corpus.
pub fn table4(sessions: &[SessionObs], routing: &RoutingTable) -> Table4 {
    let mut t = Table4::default();
    for s in sessions {
        let dev = classify_addr(s.ip_dev, s.ip_pub, routing);
        if s.cellular {
            t.cellular_dev.add(dev);
        } else {
            t.noncellular_dev.add(dev);
            if let Some(cpe) = s.ip_cpe {
                t.noncellular_cpe.add(classify_addr(cpe, s.ip_pub, routing));
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::{ip, AsId, Prefix};

    fn routing() -> RoutingTable {
        let mut t = RoutingTable::new();
        t.announce(Prefix::new(ip(50, 0, 0, 0), 8), AsId(1));
        t
    }

    #[test]
    fn classify_all_categories() {
        let r = routing();
        let public = Some(ip(50, 1, 2, 3));
        assert_eq!(
            classify_addr(ip(192, 168, 1, 5), public, &r),
            AddrClass::Private(ReservedRange::R192)
        );
        assert_eq!(
            classify_addr(ip(100, 64, 1, 5), public, &r),
            AddrClass::Private(ReservedRange::R100)
        );
        // 25/8 is public by value but absent from the table.
        assert_eq!(
            classify_addr(ip(25, 0, 0, 1), public, &r),
            AddrClass::Unrouted
        );
        assert_eq!(
            classify_addr(ip(50, 1, 2, 3), public, &r),
            AddrClass::RoutedMatch
        );
        assert_eq!(
            classify_addr(ip(50, 9, 9, 9), public, &r),
            AddrClass::RoutedMismatch
        );
        // Without a public observation, routable addresses count as
        // mismatch (translation state unknown but address not confirmed).
        assert_eq!(
            classify_addr(ip(50, 1, 2, 3), None, &r),
            AddrClass::RoutedMismatch
        );
    }

    #[test]
    fn translation_indicator() {
        assert!(AddrClass::Private(ReservedRange::R10).indicates_translation());
        assert!(AddrClass::Unrouted.indicates_translation());
        assert!(AddrClass::RoutedMismatch.indicates_translation());
        assert!(!AddrClass::RoutedMatch.indicates_translation());
    }

    #[test]
    fn breakdown_counts_and_percentages() {
        let mut b = AddrBreakdown::default();
        b.add(AddrClass::Private(ReservedRange::R192));
        b.add(AddrClass::Private(ReservedRange::R192));
        b.add(AddrClass::RoutedMatch);
        b.add(AddrClass::Unrouted);
        assert_eq!(b.n, 4);
        let p = b.percentages();
        assert_eq!(p[0].1, 50.0); // 192X
        assert_eq!(p[5].1, 25.0); // routed match
        let total: f64 = p.iter().map(|(_, v)| v).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn table4_splits_populations() {
        let r = routing();
        let mut cell = SessionObs::skeleton(AsId(1), true, ip(10, 40, 0, 2));
        cell.ip_pub = Some(ip(50, 1, 1, 1));
        let mut fixed = SessionObs::skeleton(AsId(2), false, ip(192, 168, 1, 100));
        fixed.ip_pub = Some(ip(50, 2, 2, 2));
        fixed.ip_cpe = Some(ip(100, 64, 7, 7));
        let t = table4(&[cell, fixed], &r);
        assert_eq!(t.cellular_dev.n, 1);
        assert_eq!(t.cellular_dev.r10, 1);
        assert_eq!(t.noncellular_dev.n, 1);
        assert_eq!(t.noncellular_dev.r192, 1);
        assert_eq!(t.noncellular_cpe.n, 1);
        assert_eq!(t.noncellular_cpe.r100, 1);
    }

    #[test]
    fn display_renders() {
        let mut b = AddrBreakdown::default();
        b.add(AddrClass::RoutedMatch);
        let s = b.to_string();
        assert!(s.contains("routed match"));
        assert!(s.contains("100.0%"));
    }
}
