//! # cgn-study — end-to-end reproduction of the IMC 2016 CGN study
//!
//! This crate wires the substrates together into the paper's full
//! pipeline:
//!
//! 1. **World** — build the synthetic Internet with ground truth
//!    ([`topology`]);
//! 2. **Measure** — run the BitTorrent DHT swarm and crawl it
//!    ([`bt_dht`]), then run Netalyzr sessions from sampled subscribers
//!    ([`netalyzr`]);
//! 3. **Analyse** — feed the observations to the detection pipelines and
//!    compute every table and figure ([`analysis`]);
//! 4. **Report** — assemble a [`StudyReport`] and render it as text.
//!
//! A second, operator-side pipeline lives in [`dimensioning`]: drive
//! flow-level workloads (`cgn-traffic`) through a CGN build-out and
//! report the port/state capacity each traffic mix demands.
//!
//! ```no_run
//! use cgn_study::{StudyConfig, run_study};
//!
//! let report = run_study(StudyConfig::small(42));
//! println!("{}", report.render());
//! ```

pub mod config;
pub mod detection;
pub mod dimensioning;
pub mod export;
pub mod pipeline;
pub mod report;
pub mod results;

pub use config::StudyConfig;
pub use detection::{
    check_gates, export_detection, write_detection_to_dir, DetectionArtifact, GATE_CGN_PRECISION,
    GATE_CGN_RECALL,
};
pub use dimensioning::{run_dimensioning, DimensioningConfig, DimensioningReport};
pub use export::{export_figures, write_to_dir, ExportFile};
pub use pipeline::{run_study, StudyArtifacts};
pub use report::StudyReport;
