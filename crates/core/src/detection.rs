//! The detection pipeline: run the `cgn-detect` scenario campaign and
//! export its scores — the measurement-side counterpart of the
//! operator-side [`crate::dimensioning`] sweep.
//!
//! `repro -- detection` drives this: the standard scenario library
//! (NAT444, double NAT, cellular, deterministic NAT, small/large
//! pools, EIM/EDM timeouts, no-CGN controls) at ≥100k simulated
//! subscribers through `ShardedNat`-backed CGN instances, classified
//! from both perspectives and scored against topology ground truth.
//! The committed quality gates ([`GATE_CGN_PRECISION`] /
//! [`GATE_CGN_RECALL`]) are what CI enforces on the exported
//! `BENCH_detection.json`.

use crate::export::ExportFile;
use cgn_detect::{AsLabel, CampaignReport};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Minimum CGN-class precision the standard campaign must achieve.
pub const GATE_CGN_PRECISION: f64 = 0.95;
/// Minimum CGN-class recall the standard campaign must achieve.
pub const GATE_CGN_RECALL: f64 = 0.95;

/// Schema tag of the `BENCH_detection.json` artifact.
pub const DETECTION_SCHEMA: &str = "cgn-detection/1";

/// The machine-readable campaign artifact (`BENCH_detection.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionArtifact {
    pub schema: String,
    /// The committed gates the scores are held against.
    pub gate_cgn_precision: f64,
    pub gate_cgn_recall: f64,
    pub report: CampaignReport,
}

impl DetectionArtifact {
    pub fn new(report: CampaignReport) -> DetectionArtifact {
        DetectionArtifact {
            schema: DETECTION_SCHEMA.to_string(),
            gate_cgn_precision: GATE_CGN_PRECISION,
            gate_cgn_recall: GATE_CGN_RECALL,
            report,
        }
    }
}

/// Check a campaign's scores against the committed gates.
pub fn check_gates(report: &CampaignReport) -> Result<(), String> {
    let mut failures = Vec::new();
    if report.cgn_precision < GATE_CGN_PRECISION {
        failures.push(format!(
            "CGN precision {:.3} below the {GATE_CGN_PRECISION} gate",
            report.cgn_precision
        ));
    }
    if report.cgn_recall < GATE_CGN_RECALL {
        failures.push(format!(
            "CGN recall {:.3} below the {GATE_CGN_RECALL} gate",
            report.cgn_recall
        ));
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

/// TSV series + JSON dump for a detection campaign.
pub fn export_detection(report: &CampaignReport) -> Vec<ExportFile> {
    let mut files = Vec::new();

    // Per-AS classification rows across all scenarios.
    {
        let mut c = String::from(
            "#scenario\tas\ttruth\tpredicted\tvantages\tusable\tcarrier_votes\thome_votes\
             \tpublic_votes\tdistinct_mapped_ips\tport_preservation\texternal_ips\
             \tmax_peers_per_ip\tshared_ips\text_signature\n",
        );
        for s in &report.scenarios {
            for a in &s.ases {
                let f = &a.features;
                let _ = writeln!(
                    c,
                    "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.4}\t{}\t{}\t{}\t{}",
                    s.name,
                    a.as_name,
                    a.truth.name(),
                    a.predicted.name(),
                    f.vantages,
                    f.usable,
                    f.carrier_votes,
                    f.home_votes,
                    f.public_votes,
                    f.distinct_mapped_ips,
                    f.port_preservation,
                    f.external_ips_observed,
                    f.max_peers_per_ip,
                    f.shared_ips,
                    f.ext_signature,
                );
            }
        }
        files.push(ExportFile {
            name: "detection_as_results.tsv".into(),
            content: c,
        });
    }

    // Per-scenario load + scale summary.
    {
        let mut c = String::from(
            "#scenario\tsubscribers\tcgn_instances\tshards_per_instance\tflows_offered\
             \tflows_admitted\tflows_blocked\tsightings\taccuracy\n",
        );
        for s in &report.scenarios {
            let _ = writeln!(
                c,
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.4}",
                s.name,
                s.subscribers,
                s.cgn_instances,
                s.shards_per_instance,
                s.flows_offered,
                s.flows_admitted,
                s.flows_blocked,
                s.sightings,
                s.confusion.accuracy(),
            );
        }
        files.push(ExportFile {
            name: "detection_scenarios.tsv".into(),
            content: c,
        });
    }

    // Pooled confusion matrix, long form.
    {
        let mut c = String::from("#truth\tpredicted\tcount\n");
        for (t, truth) in AsLabel::ALL.iter().enumerate() {
            for (p, predicted) in AsLabel::ALL.iter().enumerate() {
                let _ = writeln!(
                    c,
                    "{}\t{}\t{}",
                    truth.name(),
                    predicted.name(),
                    report.confusion.counts[t][p]
                );
            }
        }
        files.push(ExportFile {
            name: "detection_confusion.tsv".into(),
            content: c,
        });
    }

    // Per-class scores.
    {
        let mut c = String::from("#label\tsupport\tprecision\trecall\n");
        for s in &report.scores {
            let _ = writeln!(
                c,
                "{}\t{}\t{:.6}\t{:.6}",
                s.label.name(),
                s.support,
                s.precision,
                s.recall
            );
        }
        files.push(ExportFile {
            name: "detection_scores.tsv".into(),
            content: c,
        });
    }

    // Full machine-readable artifact (same content as
    // BENCH_detection.json).
    if let Ok(json) = serde_json::to_string_pretty(&DetectionArtifact::new(report.clone())) {
        files.push(ExportFile {
            name: "detection_report.json".into(),
            content: json,
        });
    }

    files
}

/// Write the detection exports into a directory.
pub fn write_detection_to_dir(
    report: &CampaignReport,
    dir: &std::path::Path,
) -> std::io::Result<Vec<String>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for f in export_detection(report) {
        std::fs::write(dir.join(&f.name), f.content.as_bytes())?;
        written.push(f.name);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgn_detect::{run_campaign, CampaignConfig};

    fn quick_report() -> CampaignReport {
        run_campaign(&CampaignConfig::quick(5))
    }

    #[test]
    fn quick_campaign_passes_the_committed_gates() {
        let rep = quick_report();
        assert!(
            check_gates(&rep).is_ok(),
            "quick campaign must meet the gates: precision {:.3} recall {:.3}",
            rep.cgn_precision,
            rep.cgn_recall
        );
    }

    #[test]
    fn gates_reject_degraded_scores() {
        let mut rep = quick_report();
        rep.cgn_precision = 0.5;
        let err = check_gates(&rep).expect_err("0.5 precision must fail");
        assert!(err.contains("precision"));
        rep.cgn_precision = 1.0;
        rep.cgn_recall = 0.2;
        assert!(check_gates(&rep)
            .expect_err("low recall")
            .contains("recall"));
    }

    #[test]
    fn exports_are_well_formed() {
        let files = export_detection(&quick_report());
        let names: Vec<&str> = files.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "detection_as_results.tsv",
                "detection_scenarios.tsv",
                "detection_confusion.tsv",
                "detection_scores.tsv",
                "detection_report.json",
            ]
        );
        for f in files.iter().filter(|f| f.name.ends_with(".tsv")) {
            let mut lines = f.content.lines();
            let header = lines.next().expect("header");
            assert!(header.starts_with('#'));
            let cols = header.split('\t').count();
            for line in lines {
                assert_eq!(line.split('\t').count(), cols, "{}", f.name);
            }
        }
        // Confusion is the full 3×3 long form.
        let confusion = files.iter().find(|f| f.name.contains("confusion")).unwrap();
        assert_eq!(confusion.content.lines().count(), 1 + 9);
    }

    #[test]
    fn artifact_round_trips() {
        let art = DetectionArtifact::new(quick_report());
        let json = serde_json::to_string(&art).expect("serializable");
        let back: DetectionArtifact = serde_json::from_str(&json).expect("parseable");
        assert_eq!(art, back);
        assert_eq!(back.schema, DETECTION_SCHEMA);
    }
}
