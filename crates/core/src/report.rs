//! The study report: one struct per table/figure plus text rendering.

use crate::pipeline::CalibrationResult;
use analysis::addr_class::Table4;
use analysis::baseline::PrecisionRecall;
use analysis::coverage::{CoverageReport, Fig6};
use analysis::distance::{Fig11, Table7};
use analysis::graph::ClusterSummary;
use analysis::port_alloc::{AsStrategyMix, Table6};
use analysis::stats::Histogram;
use analysis::stun_class::StunDistribution;
use analysis::timeouts::Fig12;
use netcore::{AsId, ReservedRange};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Study metadata (scale indicators).
#[derive(Debug, Clone, Default)]
pub struct Meta {
    pub seed: u64,
    pub routed_ases: usize,
    pub eyeball_ases: usize,
    pub cellular_ases: usize,
    pub subscribers: usize,
    pub dht_peers: usize,
    pub sessions: usize,
    pub ttl_sessions: usize,
    pub stun_sessions: usize,
}

/// Fig. 1: survey shares.
#[derive(Debug, Clone, Default)]
pub struct Fig1 {
    pub respondents: usize,
    pub cgn: (f64, f64, f64),
    pub ipv6: (f64, f64, f64, f64),
    pub scarcity_share: f64,
    pub max_subs_per_address: f64,
}

/// Table 2: crawl volumes.
#[derive(Debug, Clone, Default)]
pub struct Table2 {
    pub queried_peers: usize,
    pub queried_ips: usize,
    pub queried_ases: usize,
    pub learned_peers: usize,
    pub learned_ips: usize,
    pub learned_ases: usize,
    pub responded_peers: usize,
    pub queries_sent: u64,
}

/// One row of Table 3 (per reserved range).
#[derive(Debug, Clone)]
pub struct Table3Row {
    pub range: ReservedRange,
    pub internal_total: usize,
    pub internal_ips: usize,
    pub leaking_total: usize,
    pub leaking_ips: usize,
    pub leaking_ases: usize,
}

/// Fig. 3: contrasting leak-graph examples.
#[derive(Debug, Clone)]
pub struct Fig3Example {
    pub as_id: AsId,
    pub leakers: usize,
    pub internals: usize,
    pub largest: ClusterSummary,
}

/// One point of Fig. 4.
#[derive(Debug, Clone)]
pub struct Fig4Point {
    pub as_id: AsId,
    pub range: ReservedRange,
    pub external_ips: usize,
    pub internal_ips: usize,
    pub positive: bool,
}

/// One point of Fig. 5.
#[derive(Debug, Clone)]
pub struct Fig5Point {
    pub as_id: AsId,
    pub candidate_sessions: usize,
    pub cpe_slash24s: usize,
    pub positive: bool,
}

/// Fig. 7: internal address space usage of detected CGNs.
#[derive(Debug, Clone, Default)]
pub struct Fig7 {
    /// label → AS count, for non-cellular CGN-positive ASes.
    pub noncellular: BTreeMap<String, usize>,
    /// label → AS count, for cellular CGN-positive ASes.
    pub cellular: BTreeMap<String, usize>,
    /// ASes observed using routable space internally (Fig. 7b).
    pub routable_internal_ases: Vec<(AsId, String)>,
}

/// Fig. 8(c): one chunk-allocating AS in detail.
#[derive(Debug, Clone)]
pub struct Fig8c {
    pub as_id: AsId,
    pub estimated_chunk: u16,
    /// Per session: (min observed port, max observed port).
    pub session_ranges: Vec<(u16, u16)>,
}

/// Fig. 9: per-AS strategy mixes, pure ASes first.
#[derive(Debug, Clone, Default)]
pub struct Fig9 {
    pub noncellular: Vec<(AsId, AsStrategyMix)>,
    pub cellular: Vec<(AsId, AsStrategyMix)>,
}

/// Fig. 13(b) panels.
#[derive(Debug, Clone, Default)]
pub struct Fig13b {
    pub cellular: StunDistribution,
    pub noncellular: StunDistribution,
}

/// Detector scoring against ground truth (the ablation study).
#[derive(Debug, Clone)]
pub struct Scoring {
    pub truth_cgn_ases: usize,
    pub bt_paper: PrecisionRecall,
    pub bt_any_leak: PrecisionRecall,
    pub bt_low_threshold: PrecisionRecall,
    pub nz_noncellular_paper: PrecisionRecall,
    pub nz_any_mismatch: PrecisionRecall,
    pub nz_cellular_paper: PrecisionRecall,
    pub union_paper: PrecisionRecall,
}

/// IP pooling summary (§6.2).
#[derive(Debug, Clone, Default)]
pub struct PoolingSummary {
    pub cgn_ases_observed: usize,
    pub arbitrary_pooling_ases: usize,
}

/// IETF-requirement violation census over the detected CGNs (§7:
/// "which, incidentally, many of our identified CGNs violate").
#[derive(Debug, Clone, Default)]
pub struct ComplianceCensus {
    pub cgn_instances: usize,
    pub noncompliant: usize,
    pub per_requirement: Vec<(String, usize)>,
}

/// The full study report.
#[derive(Debug, Clone)]
pub struct StudyReport {
    pub meta: Meta,
    pub fig1: Fig1,
    pub table2: Table2,
    pub table3: Vec<Table3Row>,
    pub fig3_isolated: Option<Fig3Example>,
    pub fig3_clustered: Option<Fig3Example>,
    pub fig4: Vec<Fig4Point>,
    pub bt_positive: BTreeSet<AsId>,
    pub calibration: CalibrationResult,
    pub table4: Table4,
    pub fig5: Vec<Fig5Point>,
    pub nz_noncellular_positive: BTreeSet<AsId>,
    pub nz_cellular_positive: BTreeSet<AsId>,
    pub table5: CoverageReport,
    pub fig6: Fig6,
    pub fig7: Fig7,
    pub fig8a_preserved: Histogram,
    pub fig8a_translated: Histogram,
    pub fig8b: BTreeMap<String, (usize, usize)>,
    pub fig8c: Option<Fig8c>,
    pub fig9: Fig9,
    pub table6_noncellular: Table6,
    pub table6_cellular: Table6,
    pub pooling: PoolingSummary,
    pub table7: Table7,
    pub fig11: Fig11,
    pub fig12: Fig12,
    pub fig13a: StunDistribution,
    pub fig13b: Fig13b,
    pub scoring: Scoring,
    pub compliance: ComplianceCensus,
    /// Present when the study also ran the operator-side dimensioning
    /// sweep (`StudyConfig::dimensioning`).
    pub dimensioning: Option<crate::dimensioning::DimensioningReport>,
}

fn hbar(out: &mut String, title: &str) {
    let _ = writeln!(
        out,
        "\n==== {title} {}",
        "=".repeat(66usize.saturating_sub(title.len()))
    );
}

impl StudyReport {
    /// Render the whole report as text (the content of EXPERIMENTS.md's
    /// "measured" columns).
    pub fn render(&self) -> String {
        let mut o = String::new();
        let m = &self.meta;
        let _ = writeln!(
            o,
            "CGN study reproduction — seed {} | {} routed ASes ({} eyeball, {} cellular), \
             {} subscribers, {} DHT peers, {} Netalyzr sessions ({} TTL, {} STUN)",
            m.seed,
            m.routed_ases,
            m.eyeball_ases,
            m.cellular_ases,
            m.subscribers,
            m.dht_peers,
            m.sessions,
            m.ttl_sessions,
            m.stun_sessions
        );

        hbar(&mut o, "Fig 1 — operator survey");
        let f = &self.fig1;
        let _ = writeln!(
            o,
            "CGN:  deployed {:.0}% | considering {:.0}% | no plans {:.0}%   (paper: 38/12/50)",
            100.0 * f.cgn.0,
            100.0 * f.cgn.1,
            100.0 * f.cgn.2
        );
        let _ = writeln!(
            o,
            "IPv6: most/all {:.0}% | some {:.0}% | soon {:.0}% | none {:.0}%  (paper: 32/35/11/22)",
            100.0 * f.ipv6.0,
            100.0 * f.ipv6.1,
            100.0 * f.ipv6.2,
            100.0 * f.ipv6.3
        );
        let _ = writeln!(
            o,
            "scarcity now: {:.0}% (paper >40%); max subscriber:address ratio {:.0}:1 (paper 20:1)",
            100.0 * f.scarcity_share,
            f.max_subs_per_address
        );

        hbar(&mut o, "Table 1 — address space reserved for internal use");
        let _ = writeln!(
            o,
            "{:<18} {:<10} {:<6} Comments",
            "Range", "Shorthand", "RFC"
        );
        for r in ReservedRange::ALL {
            let comment = match r {
                ReservedRange::R192 => "commonly used in CPE",
                ReservedRange::R100 => "for CGN deployments",
                _ => "",
            };
            let _ = writeln!(
                o,
                "{:<18} {:<10} {:<6} {}",
                r.prefix().to_string(),
                r.shorthand(),
                r.rfc(),
                comment
            );
        }

        hbar(&mut o, "Table 2 — DHT crawl volumes");
        let t = &self.table2;
        let _ = writeln!(
            o,
            "{:<12} {:>10} {:>12} {:>8}",
            "", "Peers", "Unique IPs", "ASes"
        );
        let _ = writeln!(
            o,
            "{:<12} {:>10} {:>12} {:>8}",
            "Queried", t.queried_peers, t.queried_ips, t.queried_ases
        );
        let _ = writeln!(
            o,
            "{:<12} {:>10} {:>12} {:>8}",
            "Learned", t.learned_peers, t.learned_ips, t.learned_ases
        );
        let _ = writeln!(
            o,
            "responded to bt_ping: {} ({:.0}% of learned); find_nodes sent: {}",
            t.responded_peers,
            100.0 * t.responded_peers as f64 / t.learned_peers.max(1) as f64,
            t.queries_sent
        );

        hbar(
            &mut o,
            "Table 3 — internal peers and leaking peers per range",
        );
        let _ = writeln!(
            o,
            "{:<6} {:>14} {:>14} {:>14} {:>14} {:>8}",
            "Range", "internal tot", "internal IPs", "leaking tot", "leaking IPs", "ASes"
        );
        for r in &self.table3 {
            let _ = writeln!(
                o,
                "{:<6} {:>14} {:>14} {:>14} {:>14} {:>8}",
                r.range.shorthand(),
                r.internal_total,
                r.internal_ips,
                r.leaking_total,
                r.leaking_ips,
                r.leaking_ases
            );
        }

        hbar(&mut o, "Fig 3 — leak-graph contrast");
        match (&self.fig3_isolated, &self.fig3_clustered) {
            (Some(i), Some(c)) => {
                let _ = writeln!(
                    o,
                    "isolated  ({}): {} leakers, {} internals, largest cluster {}x{}",
                    i.as_id, i.leakers, i.internals, i.largest.external_ips, i.largest.internal_ips
                );
                let _ = writeln!(
                    o,
                    "clustered ({}): {} leakers, {} internals, largest cluster {}x{}",
                    c.as_id, c.leakers, c.internals, c.largest.external_ips, c.largest.internal_ips
                );
            }
            _ => {
                let _ = writeln!(o, "(insufficient leakage for contrasting examples)");
            }
        }

        hbar(
            &mut o,
            "Fig 4 — largest cluster per AS and range (boundary: >=5 ext, >=5 int)",
        );
        let positive = self.fig4.iter().filter(|p| p.positive).count();
        let _ = writeln!(
            o,
            "{} (AS, range) points; {} cross the detection boundary; {} distinct CGN-positive ASes",
            self.fig4.len(),
            positive,
            self.bt_positive.len()
        );
        for range in ReservedRange::ALL {
            let pts: Vec<&Fig4Point> = self.fig4.iter().filter(|p| p.range == range).collect();
            let pos = pts.iter().filter(|p| p.positive).count();
            let _ = writeln!(
                o,
                "  {:<5} {:>4} ASes with clusters, {:>3} positive",
                range.shorthand(),
                pts.len(),
                pos
            );
        }

        hbar(&mut o, "DHT calibration (par. 4.1)");
        let _ = writeln!(
            o,
            "{} peers, {} with contacts; {} would propagate unvalidated contacts ({:.1}%, paper: 1.3%)",
            self.calibration.peers,
            self.calibration.peers_with_contacts,
            self.calibration.unvalidated_propagators,
            100.0 * self.calibration.violation_rate()
        );

        hbar(&mut o, "Table 4 — IPdev / IPcpe classification");
        let _ = writeln!(o, "cellular IPdev (N={}):", self.table4.cellular_dev.n);
        for (l, p) in self.table4.cellular_dev.percentages() {
            let _ = writeln!(o, "  {l:<16} {p:5.1}%");
        }
        let _ = writeln!(
            o,
            "non-cellular IPdev (N={}):",
            self.table4.noncellular_dev.n
        );
        for (l, p) in self.table4.noncellular_dev.percentages() {
            let _ = writeln!(o, "  {l:<16} {p:5.1}%");
        }
        let _ = writeln!(
            o,
            "non-cellular IPcpe (N={}):",
            self.table4.noncellular_cpe.n
        );
        for (l, p) in self.table4.noncellular_cpe.percentages() {
            let _ = writeln!(o, "  {l:<16} {p:5.1}%");
        }

        hbar(
            &mut o,
            "Fig 5 — Netalyzr non-cellular candidates (cutoff 0.4*N, N>=10)",
        );
        let pos5 = self.fig5.iter().filter(|p| p.positive).count();
        let _ = writeln!(
            o,
            "{} candidate ASes, {} CGN-positive; cellular detector: {} positive ASes",
            self.fig5.len(),
            pos5,
            self.nz_cellular_positive.len()
        );
        for p in self.fig5.iter().filter(|p| p.positive).take(12) {
            let _ = writeln!(
                o,
                "  {}: {} candidate sessions over {} /24s",
                p.as_id, p.candidate_sessions, p.cpe_slash24s
            );
        }

        hbar(&mut o, "Table 5 — coverage and detection rates");
        let t5 = &self.table5;
        let _ = writeln!(
            o,
            "populations: routed {} | eyeball (PBL) {} | eyeball (APNIC) {}",
            t5.routed_total, t5.pbl_total, t5.apnic_total
        );
        let _ = writeln!(
            o,
            "{:<24} {:>18} {:>22} {:>22}",
            "method", "routed cov/pos", "PBL cov%/pos%", "APNIC cov%/pos%"
        );
        for row in &t5.rows {
            let _ = writeln!(
                o,
                "{:<24} {:>8} /{:>7} {:>11.1}%/{:>7.1}% {:>11.1}%/{:>7.1}%",
                row.method,
                row.routed.0,
                row.routed.2,
                row.pbl.1,
                row.pbl.3,
                row.apnic.1,
                row.apnic.3
            );
        }

        hbar(
            &mut o,
            "Fig 6 — per-RIR eyeball coverage and CGN penetration",
        );
        let _ = writeln!(
            o,
            "{:<9} {:>10} {:>14} {:>18}",
            "RIR", "coverage%", "CGN-positive%", "cellular positive%"
        );
        for rir in netcore::Rir::ALL {
            let _ = writeln!(
                o,
                "{:<9} {:>9.1}% {:>13.1}% {:>17.1}%",
                rir.name(),
                self.fig6.coverage_pct.get(&rir).copied().unwrap_or(0.0),
                self.fig6.positive_pct.get(&rir).copied().unwrap_or(0.0),
                self.fig6
                    .cellular_positive_pct
                    .get(&rir)
                    .copied()
                    .unwrap_or(0.0)
            );
        }

        hbar(&mut o, "Fig 7 — internal address space of detected CGNs");
        let _ = writeln!(o, "non-cellular: {:?}", self.fig7.noncellular);
        let _ = writeln!(o, "cellular:     {:?}", self.fig7.cellular);
        let _ = writeln!(
            o,
            "routable-internal ASes: {:?}",
            self.fig7.routable_internal_ases
        );

        hbar(
            &mut o,
            "Fig 8a — source ports seen by the server (bin = 4096)",
        );
        let _ = writeln!(
            o,
            "preserved sessions (OS ephemeral): {}",
            sparkline(&self.fig8a_preserved)
        );
        let _ = writeln!(
            o,
            "translated sessions (CGN):         {}",
            sparkline(&self.fig8a_translated)
        );

        hbar(&mut o, "Fig 8b — port preservation per CPE model");
        let preserving_models = self.fig8b.values().filter(|(n, p)| *p * 2 > *n).count();
        let total_sessions: usize = self.fig8b.values().map(|(n, _)| n).sum();
        let preserved_sessions: usize = self
            .fig8b
            .iter()
            .filter(|(_, (n, p))| *p * 2 > *n)
            .map(|(_, (n, _))| n)
            .sum();
        let _ = writeln!(
            o,
            "{} models, {} predominantly preserving; {:.0}% of sessions behind preserving models (paper: 92%)",
            self.fig8b.len(),
            preserving_models,
            100.0 * preserved_sessions as f64 / total_sessions.max(1) as f64
        );

        hbar(&mut o, "Fig 8c — chunk-based allocation example");
        match &self.fig8c {
            Some(c) => {
                let _ = writeln!(
                    o,
                    "{}: estimated chunk {} ports -> {} subscribers per IP; {} sessions",
                    c.as_id,
                    c.estimated_chunk,
                    65536 / c.estimated_chunk.max(1) as u32,
                    c.session_ranges.len()
                );
                for (lo, hi) in c.session_ranges.iter().take(8) {
                    let _ = writeln!(o, "  ports [{lo:>5}..{hi:>5}] spread {}", hi - lo);
                }
            }
            None => {
                let _ = writeln!(o, "(no chunk-allocating AS detected at this scale)");
            }
        }

        hbar(
            &mut o,
            "Fig 9 / Table 6 — port allocation strategies per CGN AS",
        );
        let render_mixes = |o: &mut String,
                            label: &str,
                            v: &[(AsId, AsStrategyMix)],
                            t: &Table6| {
            let pure = v.iter().filter(|(_, m)| m.is_pure()).count();
            let _ = writeln!(
                o,
                "{label}: {} ASes ({} pure); dominant: preservation {:.1}% | sequential {:.1}% | random {:.1}%",
                t.ases, pure, t.preservation_pct, t.sequential_pct, t.random_pct
            );
            let _ = writeln!(o, "  chunked ASes: {:?}", t.chunked);
        };
        render_mixes(
            &mut o,
            "non-cellular",
            &self.fig9.noncellular,
            &self.table6_noncellular,
        );
        render_mixes(
            &mut o,
            "cellular    ",
            &self.fig9.cellular,
            &self.table6_cellular,
        );
        let _ = writeln!(
            o,
            "IP pooling: {} of {} CGN ASes show arbitrary pooling ({:.0}%, paper: 21%)",
            self.pooling.arbitrary_pooling_ases,
            self.pooling.cgn_ases_observed,
            100.0 * self.pooling.arbitrary_pooling_ases as f64
                / self.pooling.cgn_ases_observed.max(1) as f64
        );

        hbar(&mut o, "Table 7 — TTL-driven enumeration detection rates");
        for (label, rate) in self.table7.rates() {
            let _ = writeln!(o, "  {label:<32} {rate:5.1}%");
        }
        let _ = writeln!(o, "  (paper: 67.6 / 30.9 / 0.5 / 0.9)");

        hbar(&mut o, "Fig 11 — most distant NAT per AS");
        for (group, counts) in &self.fig11.per_group {
            let total: usize = counts.iter().sum();
            let bars: Vec<String> = counts
                .iter()
                .map(|c| format!("{:.0}", 100.0 * *c as f64 / total.max(1) as f64))
                .collect();
            let _ = writeln!(o, "  {group:<22} hops 1..10+: [{}]%", bars.join(" "));
        }

        hbar(&mut o, "Fig 12 — UDP mapping timeouts (seconds)");
        let bp = |s: &Option<analysis::stats::BoxplotStats>| match s {
            Some(b) => format!(
                "min {:.0} | q1 {:.0} | median {:.0} | q3 {:.0} | max {:.0} (n={})",
                b.min, b.q1, b.median, b.q3, b.max, b.n
            ),
            None => "(no data)".to_string(),
        };
        let _ = writeln!(
            o,
            "  cellular CGN (per AS):     {}",
            bp(&self.fig12.cellular_cgn_per_as)
        );
        let _ = writeln!(
            o,
            "  non-cellular CGN (per AS): {}",
            bp(&self.fig12.noncellular_cgn_per_as)
        );
        let _ = writeln!(
            o,
            "  CPE (per session):         {}",
            bp(&self.fig12.cpe_per_session)
        );

        hbar(&mut o, "Fig 13 — STUN mapping types");
        let dist = |d: &StunDistribution| {
            d.shares()
                .iter()
                .map(|(t, v)| format!("{} {:.0}%", t.name(), 100.0 * v))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        let _ = writeln!(o, "  CPE sessions (13a):        {}", dist(&self.fig13a));
        let _ = writeln!(
            o,
            "  non-cellular CGN ASes:     {}",
            dist(&self.fig13b.noncellular)
        );
        let _ = writeln!(
            o,
            "  cellular CGN ASes:         {}",
            dist(&self.fig13b.cellular)
        );

        hbar(&mut o, "IETF compliance of detected CGNs (par. 7)");
        let cc = &self.compliance;
        let _ = writeln!(
            o,
            "{} of {} detected CGN middleboxes violate at least one requirement",
            cc.noncompliant, cc.cgn_instances
        );
        for (req, n) in &cc.per_requirement {
            if *n > 0 {
                let _ = writeln!(o, "  {req:<52} {n:>4}");
            }
        }

        hbar(&mut o, "Ground-truth scoring (ablation)");
        let s = &self.scoring;
        let _ = writeln!(o, "true CGN ASes (ground truth): {}", s.truth_cgn_ases);
        let pr = |p: &PrecisionRecall| {
            format!(
                "precision {:.2} recall {:.2} f1 {:.2} (tp {} fp {} fn {})",
                p.precision, p.recall, p.f1, p.true_positives, p.false_positives, p.false_negatives
            )
        };
        let _ = writeln!(o, "  BT paper (5x5 clusters):   {}", pr(&s.bt_paper));
        let _ = writeln!(o, "  BT any-leak baseline:      {}", pr(&s.bt_any_leak));
        let _ = writeln!(
            o,
            "  BT 2x2-cluster baseline:   {}",
            pr(&s.bt_low_threshold)
        );
        let _ = writeln!(
            o,
            "  NZ non-cellular paper:     {}",
            pr(&s.nz_noncellular_paper)
        );
        let _ = writeln!(o, "  NZ any-mismatch baseline:  {}", pr(&s.nz_any_mismatch));
        let _ = writeln!(
            o,
            "  NZ cellular paper:         {}",
            pr(&s.nz_cellular_paper)
        );
        let _ = writeln!(o, "  BT ∪ NZ (paper):           {}", pr(&s.union_paper));

        if let Some(dim) = &self.dimensioning {
            hbar(&mut o, "Dimensioning — operator-side port demand");
            o.push_str(&dim.render());
        }

        o
    }
}

/// Tiny ASCII sparkline of a histogram.
fn sparkline(h: &Histogram) -> String {
    const LEVELS: [char; 8] = ['.', ':', '-', '=', '+', '*', '#', '@'];
    let max = h.bins.iter().copied().max().unwrap_or(0).max(1);
    h.bins
        .iter()
        .map(|c| {
            if *c == 0 {
                ' '
            } else {
                LEVELS[((*c as f64 / max as f64) * 7.0).round() as usize]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_shapes() {
        let mut h = Histogram::new(10, 100);
        for v in [5, 5, 5, 5, 95] {
            h.add(v);
        }
        let s = sparkline(&h);
        assert_eq!(s.chars().next(), Some('@'), "dominant bin at max level");
        assert!(s.contains(' '), "empty bins blank");
    }
}
