//! The measurement pipeline: world → DHT crawl → Netalyzr sessions.

use crate::config::StudyConfig;
use analysis::obs::{BtLeakObs, FlowObs, SessionObs, TtlNatObs, TtlObs};
use bt_dht::peer::PeerConfig;
use bt_dht::{CrawlReport, Crawler, DhtWorld};
use netalyzr::{run_session, ClientSpec, MeasurementLab, OsPortPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::RealmId;
use topology::{Subscriber, Survey, SurveyConfig, World};

/// Outcome of the §4.1 DHT calibration check: how many peers stored (and
/// hence would propagate) contacts without validating reachability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CalibrationResult {
    pub peers: usize,
    pub peers_with_contacts: usize,
    /// Peers that stored at least one unvalidated contact.
    pub unvalidated_propagators: usize,
}

impl CalibrationResult {
    /// The paper's headline: 1.3% of peers propagate without validating.
    pub fn violation_rate(&self) -> f64 {
        if self.peers_with_contacts == 0 {
            0.0
        } else {
            self.unvalidated_propagators as f64 / self.peers_with_contacts as f64
        }
    }
}

/// Everything the measurement phase produced; input to the analysis.
#[derive(Debug)]
pub struct StudyArtifacts {
    pub config: StudyConfig,
    pub world: World,
    pub lab: MeasurementLab,
    pub crawl: CrawlReport,
    pub leaks: Vec<BtLeakObs>,
    pub sessions: Vec<SessionObs>,
    pub survey: Survey,
    pub calibration: CalibrationResult,
    pub dht_peer_count: usize,
}

/// Derive a per-subscriber OS port policy.
fn port_policy(sub: &Subscriber) -> OsPortPolicy {
    let (lo, hi, sequential) = sub.os.port_policy();
    OsPortPolicy {
        range: (lo, hi),
        sequential,
    }
}

/// Run the full measurement phase.
pub fn measure(config: StudyConfig) -> StudyArtifacts {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x0057_AB1E);
    let mut world = World::build(config.topology.clone());

    // Measurement infrastructure: echo + STUN lab, DHT bootstrap, crawler.
    let lab_base = {
        // Reserve the lab's consecutive service addresses.
        let a = world.next_service_addr();
        for _ in 1..MeasurementLab::SERVICE_ADDRS {
            let _ = world.next_service_addr();
        }
        a
    };
    let lab = MeasurementLab::install(&mut world.net, lab_base);
    let bs_addr = world.next_service_addr();
    let bs_node = world.net.add_host(RealmId::PUBLIC, bs_addr, vec![]);

    // --- Phase 1: the BitTorrent DHT swarm. ---
    let mut dht = DhtWorld::new(config.dht.clone(), bs_node, bs_addr);
    for sub in &world.subscribers {
        if !sub.runs_bittorrent {
            continue;
        }
        // Locality key: peers behind the same CGN instance share a swarm
        // bias (locally popular content), otherwise the AS itself.
        let locality = (sub.as_id.0 as u64) << 8 | sub.cgn_instance.unwrap_or(0xFF) as u64;
        let peer_cfg = PeerConfig {
            validates_before_adding: !rng.gen_bool(config.p_dht_violators),
            ..PeerConfig::default()
        };
        dht.add_peer_with_locality(sub.device_node, sub.device_addr, peer_cfg, locality);
        for (node, addr) in &sub.extra_bt_devices {
            let peer_cfg = PeerConfig {
                validates_before_adding: !rng.gen_bool(config.p_dht_violators),
                ..PeerConfig::default()
            };
            dht.add_peer_with_locality(*node, *addr, peer_cfg, locality);
        }
    }
    // The crawler participates in the DHT during the swarm phase, so
    // peers validate it and punch holes through their NATs toward it.
    let crawler_addr = world.next_service_addr();
    let crawler_node = world.net.add_host(RealmId::PUBLIC, crawler_addr, vec![]);
    let crawler_presence = dht.add_service_peer(crawler_node, crawler_addr, 64_000);
    let dht_peer_count = dht.peers.len() - 1;
    dht.run(&mut world.net);

    // Warm crawl passes: the paper's crawl ran for a week while the DHT
    // lived. Peers queried by the crawler learn it from the query source,
    // validate it during the next maintenance round, and thereby punch
    // holes through restrictive NATs that let later passes reach them.
    for extra in 0..config.warm_crawl_passes {
        let mut warm = Crawler::new(
            crawler_node,
            crawler_addr,
            bt_dht::CrawlConfig {
                ping_learned: false,
                ..config.crawl.clone()
            },
        );
        let _ = warm.crawl(&mut world.net, &mut dht);
        dht.run_round(&mut world.net, 1000 + extra);
    }

    // Churn: a share of clients goes offline before the final crawl.
    dht.retire_peers(config.p_peer_churn, &[crawler_presence]);

    // Calibration (§4.1): which peers would propagate unvalidated
    // contacts?
    let calibration = CalibrationResult {
        peers: dht_peer_count,
        peers_with_contacts: dht
            .peers
            .iter()
            .enumerate()
            .filter(|(i, p)| *i != crawler_presence && !p.table.is_empty())
            .count(),
        unvalidated_propagators: dht
            .peers
            .iter()
            .enumerate()
            .filter(|(i, p)| *i != crawler_presence && p.contacts_inserted_unvalidated > 0)
            .count(),
    };

    // --- Phase 2: crawl the DHT from the participating host. ---
    let mut crawler = Crawler::new(crawler_node, crawler_addr, config.crawl.clone());
    let crawl = crawler.crawl(&mut world.net, &mut dht);

    let leaks: Vec<BtLeakObs> = crawl
        .leaks
        .iter()
        .map(|l| BtLeakObs {
            leaker_ip: l.leaker_endpoint.ip,
            leaker_as: world.routing.origin_of(l.leaker_endpoint.ip),
            internal_ip: l.internal.endpoint.ip,
            range: l.range,
        })
        .collect();

    // --- Phase 3: Netalyzr sessions. ---
    let mut sessions: Vec<SessionObs> = Vec::new();
    let deployments: Vec<(netcore::AsId, bool, Vec<usize>)> = world
        .deployments
        .iter()
        .map(|d| {
            (
                d.info.id,
                d.info.kind.is_cellular(),
                d.subscriber_ids.clone(),
            )
        })
        .collect();
    for (as_id, cellular, sub_ids) in deployments {
        if !rng.gen_bool(config.p_as_netalyzr) {
            continue;
        }
        for sub_id in sub_ids {
            if !rng.gen_bool(config.p_subscriber_netalyzr) {
                continue;
            }
            let n_sessions =
                rng.gen_range(config.sessions_per_subscriber.0..=config.sessions_per_subscriber.1);
            for k in 0..n_sessions {
                let sub = &world.subscribers[sub_id];
                let spec = ClientSpec {
                    node: sub.device_node,
                    addr: sub.device_addr,
                    os_ports: port_policy(sub),
                    upnp_cpe_external: sub.cpe.as_ref().filter(|c| c.upnp).map(|c| c.external_ip),
                    upnp_model: sub
                        .cpe
                        .as_ref()
                        .filter(|c| c.upnp)
                        .map(|c| c.model_name.clone()),
                    run_stun: config.run_stun,
                    run_ttl: config.run_ttl,
                    port_flows: 10,
                };
                let seed = config
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((sub_id as u64) << 8)
                    .wrapping_add(k as u64);
                let report = run_session(&mut world.net, &lab, &spec, seed);
                let ip_pub = report.ip_pub();
                let obs_as = ip_pub
                    .and_then(|p| world.routing.origin_of(p))
                    .or(Some(as_id));
                sessions.push(SessionObs {
                    as_id: obs_as,
                    cellular,
                    ip_dev: report.ip_dev,
                    ip_cpe: report.ip_cpe,
                    cpe_model: report.cpe_model.clone(),
                    ip_pub,
                    multiple_public_ips: report.saw_multiple_public_ips(),
                    flows: report
                        .port_test
                        .flows
                        .iter()
                        .map(|f| FlowObs {
                            local_port: f.local_port,
                            observed: f.observed,
                        })
                        .collect(),
                    stun_nat: report.stun.and_then(|s| s.class.nat_type()),
                    ttl: report.ttl.as_ref().map(|t| TtlObs {
                        path_len: t.path_len,
                        ip_mismatch: t.ip_mismatch,
                        detected: t
                            .detected
                            .iter()
                            .map(|d| TtlNatObs {
                                hop: d.hop,
                                timeout_gt_secs: d.timeout_gt.as_secs(),
                                timeout_le_secs: d.timeout_le.as_secs(),
                            })
                            .collect(),
                    }),
                });
            }
        }
    }

    // --- Phase 4: the operator survey (§2). ---
    let survey = Survey::generate(&SurveyConfig {
        seed: config.seed ^ 0x50_50,
        ..SurveyConfig::default()
    });

    StudyArtifacts {
        config,
        world,
        lab,
        crawl,
        leaks,
        sessions,
        survey,
        calibration,
        dht_peer_count,
    }
}

/// Run measurement and analysis end to end; when the config carries a
/// [`crate::dimensioning::DimensioningConfig`], the operator-side
/// dimensioning sweep runs afterwards and lands in the report.
pub fn run_study(config: StudyConfig) -> crate::report::StudyReport {
    let dimensioning = config.dimensioning.clone();
    let mut report = crate::results::assemble(&measure(config));
    if let Some(d) = &dimensioning {
        report.dimensioning = Some(crate::dimensioning::run_dimensioning(d));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_pipeline_produces_data() {
        let art = measure(StudyConfig::tiny(7));
        assert!(art.dht_peer_count > 0, "some subscribers run BitTorrent");
        assert!(!art.sessions.is_empty(), "sessions were sampled");
        assert!(art.crawl.queries_sent > 0);
        // Sessions carry AS attribution.
        assert!(art.sessions.iter().all(|s| s.as_id.is_some()));
        // Port tests completed for the overwhelming majority of sessions.
        let with_flows = art
            .sessions
            .iter()
            .filter(|s| s.observed_flows().count() >= 8)
            .count();
        assert!(
            with_flows * 10 >= art.sessions.len() * 9,
            "{} of {} sessions completed port tests",
            with_flows,
            art.sessions.len()
        );
    }

    #[test]
    fn pipeline_deterministic() {
        let a = measure(StudyConfig::tiny(9));
        let b = measure(StudyConfig::tiny(9));
        assert_eq!(a.sessions.len(), b.sessions.len());
        assert_eq!(a.leaks.len(), b.leaks.len());
        assert_eq!(a.crawl.queries_sent, b.crawl.queries_sent);
        for (x, y) in a.sessions.iter().zip(&b.sessions) {
            assert_eq!(x, y);
        }
    }
}
