//! The dimensioning pipeline: drive every workload mix through a CGN
//! and render the operator-side capacity report.
//!
//! This is the forward direction of §6.2: instead of inferring chunk
//! sizes and pooling from outside probes, fix a CGN configuration, push
//! a synthetic subscriber population's flows through it (`cgn-traffic`)
//! and read off how much port/state capacity each traffic mix demands —
//! including the chunk-size vs. blocking-probability trade-off behind
//! the 512..16K chunks the paper observed.

use cgn_traffic::{DriverConfig, Modulation, RunSummary, WorkloadMix};
use nat_engine::NatConfig;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Configuration of one dimensioning study (a set of workload mixes
/// run against the same CGN build-out).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DimensioningConfig {
    pub seed: u64,
    /// Subscribers behind the CGN deployment.
    pub subscribers: u32,
    /// NAT state shards sharing the load (subscribers are hashed to
    /// shards at admission).
    pub shards: u16,
    /// Public IPs owned by each shard.
    pub external_ips_per_shard: u16,
    /// Worker threads for the epoch-parallel engine: `0` = one per
    /// available core, `1` = sequential. Never changes the results,
    /// only the wall time.
    pub threads: usize,
    /// Behaviour of every shard.
    pub nat: NatConfig,
    /// Workload mixes to sweep (each gets its own fresh CGN).
    pub mixes: Vec<WorkloadMix>,
    /// Diurnal/flash-crowd modulation applied to every mix.
    pub modulation: Modulation,
    /// Simulated seconds per mix.
    pub duration_secs: u64,
    /// Demand-sampling cadence in seconds.
    pub sample_secs: u64,
    /// Mapping-sweep cadence in seconds.
    pub sweep_secs: u64,
}

impl DimensioningConfig {
    /// Quick preset for tests: a few hundred subscribers, minutes of
    /// virtual time.
    pub fn small(seed: u64) -> DimensioningConfig {
        DimensioningConfig {
            seed,
            subscribers: 400,
            shards: 1,
            external_ips_per_shard: 2,
            threads: 1,
            nat: NatConfig::cgn_default(),
            mixes: WorkloadMix::all(),
            modulation: Modulation::none(),
            duration_secs: 300,
            sample_secs: 30,
            sweep_secs: 20,
        }
    }

    /// Release-scale preset: drives millions of flows per full sweep
    /// (the `dimensioning` example's default).
    pub fn release(seed: u64) -> DimensioningConfig {
        DimensioningConfig {
            seed,
            subscribers: 10_000,
            shards: 4,
            external_ips_per_shard: 4,
            threads: 0,
            nat: NatConfig::cgn_default(),
            mixes: WorkloadMix::all(),
            modulation: Modulation::none(),
            duration_secs: 900,
            sample_secs: 60,
            sweep_secs: 30,
        }
    }

    /// The per-mix driver configuration this study hands to
    /// `cgn_traffic::run` (public so the perf harness can time mixes
    /// individually).
    pub fn driver_config(&self, mix: WorkloadMix) -> DriverConfig {
        DriverConfig {
            subscribers: self.subscribers,
            shards: self.shards,
            external_ips_per_shard: self.external_ips_per_shard,
            threads: self.threads,
            nat: self.nat.clone(),
            mix,
            modulation: self.modulation,
            duration_secs: self.duration_secs,
            sample_secs: self.sample_secs,
            sweep_secs: self.sweep_secs,
            seed: self.seed,
        }
    }
}

/// Outcome of a dimensioning study: one [`RunSummary`] per mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DimensioningReport {
    pub config: DimensioningConfig,
    pub runs: Vec<RunSummary>,
}

/// Run every configured mix against a fresh CGN deployment.
pub fn run_dimensioning(config: &DimensioningConfig) -> DimensioningReport {
    let runs = config
        .mixes
        .iter()
        .map(|mix| cgn_traffic::run(&config.driver_config(mix.clone())))
        .collect();
    DimensioningReport {
        config: config.clone(),
        runs,
    }
}

impl DimensioningReport {
    /// Total flows pushed through NATs across all mixes.
    pub fn total_flows(&self) -> u64 {
        self.runs.iter().map(|r| r.flows_started).sum()
    }

    /// Deterministic fingerprint over every run.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for r in &self.runs {
            let d = r.digest();
            for b in d.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }

    /// Render the report as text (per-mix demand summary plus the
    /// chunk-size vs. blocking-probability table).
    pub fn render(&self) -> String {
        let mut o = String::new();
        let c = &self.config;
        let _ = writeln!(
            o,
            "CGN dimensioning — seed {} | {} subscribers behind {} shard(s) × {} external IP(s), \
             {} s per mix, {} mixes, {} flows total",
            c.seed,
            c.subscribers,
            c.shards,
            c.external_ips_per_shard,
            c.duration_secs,
            self.runs.len(),
            self.total_flows(),
        );

        for r in &self.runs {
            let rep = &r.report;
            let _ = writeln!(
                o,
                "\n---- mix: {} {}",
                r.mix_name,
                "-".repeat(58usize.saturating_sub(r.mix_name.len()))
            );
            let _ = writeln!(
                o,
                "flows: {} started | {} blocked | {} completed | {} packets",
                r.flows_started, r.flows_blocked, r.flows_completed, r.packets_sent
            );
            let _ = writeln!(
                o,
                "mappings: peak {} | median {:.0} | p99 {:.0} | created {} | expired {}",
                rep.peak_mappings,
                rep.median_mappings,
                rep.p99_mappings,
                r.stats.mappings_created,
                r.stats.mappings_expired
            );
            let _ = writeln!(
                o,
                "ports/subscriber at peak: p50 {:.1} | p95 {:.1} | p99 {:.1} | max {}",
                rep.peak_ports_p50, rep.peak_ports_p95, rep.peak_ports_p99, rep.peak_ports_max
            );
            let _ = writeln!(
                o,
                "multiplexing: {:.1} subscribers/external-IP | {:.0} peak ports/external-IP | worst allocator fill {:.1}%",
                rep.subscribers_per_external_ip,
                rep.peak_ports_per_external_ip,
                100.0 * rep.worst_ip_utilization
            );
            let _ = writeln!(
                o,
                "drops: {} port-exhausted | {} session-limit",
                rep.drops_port_exhausted, rep.drops_session_limit
            );
            let st = &r.store;
            let _ = writeln!(
                o,
                "store: {} slab slots ({} live, {} free) | interned: {} hosts, {} (IP, proto) pools | {} wheel timers",
                st.slots, st.live, st.free, st.hosts_interned, st.pools_interned, st.timers
            );
            let _ = writeln!(
                o,
                "shard balance: flow imbalance {:.3} | peak-mapping imbalance {:.3} (max/mean across {} shard(s))",
                r.shard_load.flow_imbalance,
                r.shard_load.mapping_imbalance,
                r.shard_load.flows_per_shard.len()
            );
            let _ = writeln!(
                o,
                "chunk-size sweep (paper §6.2 observes 512..16K chunks; 64 subs/IP at 1K):"
            );
            let _ = writeln!(
                o,
                "  chunk   subs/IP   P(demand blocked)   chunk utilization"
            );
            for row in &rep.chunk_curve {
                let _ = writeln!(
                    o,
                    "  {:>5}   {:>7}   {:>16.4}%   {:>16.2}%",
                    row.chunk_size,
                    row.subscribers_per_ip,
                    100.0 * row.p_demand_blocked,
                    100.0 * row.chunk_utilization
                );
            }
        }
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(seed: u64) -> DimensioningConfig {
        DimensioningConfig {
            subscribers: 120,
            duration_secs: 120,
            mixes: vec![WorkloadMix::residential_evening(), WorkloadMix::iot_fleet()],
            ..DimensioningConfig::small(seed)
        }
    }

    #[test]
    fn sweep_runs_every_mix() {
        let rep = run_dimensioning(&tiny(3));
        assert_eq!(rep.runs.len(), 2);
        assert!(rep.total_flows() > 0);
        assert!(rep.runs.iter().all(|r| !r.series.is_empty()));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_dimensioning(&tiny(11));
        let b = run_dimensioning(&tiny(11));
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), run_dimensioning(&tiny(12)).digest());
    }

    #[test]
    fn threads_do_not_change_results() {
        let mut cfg = tiny(9);
        cfg.shards = 2;
        cfg.threads = 1;
        let seq = run_dimensioning(&cfg);
        cfg.threads = 4;
        let par = run_dimensioning(&cfg);
        assert_eq!(seq.runs, par.runs, "threads are an execution detail");
        assert_eq!(seq.digest(), par.digest());
    }

    #[test]
    fn render_contains_chunk_table_and_mix_names() {
        let rep = run_dimensioning(&tiny(5));
        let text = rep.render();
        assert!(text.contains("chunk-size sweep"));
        assert!(text.contains("slab slots"), "store occupancy line");
        assert!(text.contains("wheel timers"));
        assert!(text.contains("shard balance"), "imbalance line");
        assert!(text.contains("residential-evening"));
        assert!(text.contains("iot-fleet"));
        assert!(text.contains("subs/IP"));
        for chunk in analysis::port_demand::CHUNK_SIZES {
            assert!(text.contains(&format!("{chunk}")), "chunk {chunk} missing");
        }
    }

    #[test]
    fn json_round_trips() {
        let rep = run_dimensioning(&tiny(7));
        let json = serde_json::to_string_pretty(&rep).expect("serializable");
        let back: DimensioningReport = serde_json::from_str(&json).expect("parseable");
        assert_eq!(rep, back);
    }
}
