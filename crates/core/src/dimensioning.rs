//! The dimensioning pipeline: drive every workload mix through a CGN
//! and render the operator-side capacity report.
//!
//! This is the forward direction of §6.2: instead of inferring chunk
//! sizes and pooling from outside probes, fix a CGN configuration, push
//! a synthetic subscriber population's flows through it (`cgn-traffic`)
//! and read off how much port/state capacity each traffic mix demands —
//! including the chunk-size vs. blocking-probability trade-off behind
//! the 512..16K chunks the paper observed.
//!
//! A second axis rides on every sweep: the **logging/traceability
//! study** (§2's survey question). The reference mix is re-run under
//! the three §6.2 allocation policies — per-connection logging,
//! bulk port-block logging, deterministic NAT — measuring the log
//! volume each produces (bytes/subscriber/day) and *verifying* that
//! sampled abuse probes `(ext IP, port, T)` resolve to the exact
//! subscriber through `cgn_telemetry`'s interval index (or, for
//! deterministic NAT, by inverting the provisioning arithmetic with
//! zero log bytes).

use analysis::log_volume::{self, PolicyLogVolume};
use cgn_telemetry::{DeterministicMap, Record, TraceIndex};
use cgn_traffic::{DriverConfig, Modulation, RunSummary, TraceConfig, WorkloadMix};
use nat_engine::telemetry::TelemetryMode;
use nat_engine::{NatConfig, PortAllocation};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Configuration of one dimensioning study (a set of workload mixes
/// run against the same CGN build-out).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DimensioningConfig {
    pub seed: u64,
    /// Subscribers behind the CGN deployment.
    pub subscribers: u32,
    /// NAT state shards sharing the load (subscribers are hashed to
    /// shards at admission).
    pub shards: u16,
    /// Public IPs owned by each shard.
    pub external_ips_per_shard: u16,
    /// Worker threads for the epoch-parallel engine: `0` = one per
    /// available core, `1` = sequential. Never changes the results,
    /// only the wall time.
    pub threads: usize,
    /// Behaviour of every shard.
    pub nat: NatConfig,
    /// Workload mixes to sweep (each gets its own fresh CGN).
    pub mixes: Vec<WorkloadMix>,
    /// Diurnal/flash-crowd modulation applied to every mix.
    pub modulation: Modulation,
    /// Simulated seconds per mix.
    pub duration_secs: u64,
    /// Demand-sampling cadence in seconds.
    pub sample_secs: u64,
    /// Mapping-sweep cadence in seconds.
    pub sweep_secs: u64,
    /// Telemetry applied to the per-mix sweep runs (`Off` keeps the
    /// engine on its zero-cost path; the logging study below always
    /// measures every policy regardless).
    pub telemetry: TelemetryMode,
    /// Runtime-metrics aggregation window for the per-mix runs
    /// (`None` = registries not installed, the zero-cost default).
    /// Populates [`RunSummary::metrics`]
    /// (`cgn_traffic::MetricsSummary`) for every mix.
    pub metrics_window_secs: Option<u64>,
    /// Packets per burst the driver hands to
    /// `Nat::process_burst` per shard; `0` = the driver's default
    /// ([`cgn_traffic::DEFAULT_BURST`]). Never changes the results,
    /// only the wall time — the perf harness's batch leg sweeps it.
    pub burst: usize,
    /// Permille of forwarded outbound packets whose flow receives an
    /// inbound reply in the same millisecond batch
    /// ([`cgn_traffic::DriverConfig::inbound_reply_permille`]). `0`
    /// (the default) keeps the workload outbound-only; the perf
    /// harness's inbound leg sets it to exercise
    /// `Nat::process_inbound_burst` under load.
    pub inbound_reply_permille: u32,
    /// Flow-lifecycle tracing / phase profiling applied to every mix
    /// run ([`cgn_traffic::DriverConfig::trace`]). `off` (the
    /// default) installs no tracer; flow spans, when sampled, are
    /// sim-time-deterministic, so enabling them never changes a
    /// summary.
    pub trace: TraceConfig,
}

impl DimensioningConfig {
    /// Quick preset for tests: a few hundred subscribers, minutes of
    /// virtual time.
    pub fn small(seed: u64) -> DimensioningConfig {
        DimensioningConfig {
            seed,
            subscribers: 400,
            shards: 1,
            external_ips_per_shard: 2,
            threads: 1,
            nat: NatConfig::cgn_default(),
            mixes: WorkloadMix::all(),
            modulation: Modulation::none(),
            duration_secs: 300,
            sample_secs: 30,
            sweep_secs: 20,
            telemetry: TelemetryMode::Off,
            metrics_window_secs: None,
            burst: 0,
            inbound_reply_permille: 0,
            trace: TraceConfig::off(),
        }
    }

    /// Release-scale preset: drives millions of flows per full sweep
    /// (the `dimensioning` example's default).
    pub fn release(seed: u64) -> DimensioningConfig {
        DimensioningConfig {
            seed,
            subscribers: 10_000,
            shards: 4,
            external_ips_per_shard: 4,
            threads: 0,
            nat: NatConfig::cgn_default(),
            mixes: WorkloadMix::all(),
            modulation: Modulation::none(),
            duration_secs: 900,
            sample_secs: 60,
            sweep_secs: 30,
            telemetry: TelemetryMode::Off,
            metrics_window_secs: None,
            burst: 0,
            inbound_reply_permille: 0,
            trace: TraceConfig::off(),
        }
    }

    /// The per-mix driver configuration this study hands to
    /// `cgn_traffic::run` (public so the perf harness can time mixes
    /// individually).
    pub fn driver_config(&self, mix: WorkloadMix) -> DriverConfig {
        DriverConfig {
            subscribers: self.subscribers,
            shards: self.shards,
            external_ips_per_shard: self.external_ips_per_shard,
            threads: self.threads,
            nat: self.nat.clone(),
            mix,
            modulation: self.modulation,
            duration_secs: self.duration_secs,
            sample_secs: self.sample_secs,
            sweep_secs: self.sweep_secs,
            telemetry: self.telemetry,
            metrics_window_secs: self.metrics_window_secs,
            metrics_retention: 0,
            burst: self.burst,
            inbound_reply_permille: self.inbound_reply_permille,
            trace: self.trace,
            seed: self.seed,
        }
    }

    /// Per-subscriber block size the deterministic-NAT leg of the
    /// logging study uses: the largest power of two that provisions a
    /// collision-free slot for every subscriber of this study
    /// (`shard pool × blocks/IP ≥ subscribers`), so abuse attribution
    /// inverts to exactly one candidate. Deliberately tight — the
    /// restrictiveness of deterministic NAT's hard port cap *is* the
    /// trade-off the paper weighs against its zero logging cost.
    pub fn deterministic_ports_per_host(&self) -> u16 {
        let capacity = (self.nat.port_range.1 - self.nat.port_range.0) as u64 + 1;
        let budget = capacity * self.external_ips_per_shard as u64 / self.subscribers.max(1) as u64;
        let mut pph: u64 = 4;
        while pph * 2 <= budget && pph * 2 <= 16_384 {
            pph *= 2;
        }
        pph as u16
    }
}

/// Abuse probes sampled per policy in the logging study.
const TRACE_PROBES: usize = 16;
/// Block size of the port-block leg (the paper observes 512..16K
/// port chunks; 1K is the canonical mid-range deployment value).
const PORT_BLOCK_SIZE: u16 = 1024;
/// Sampling ratio of the NetFlow-style sampled-logging leg.
const SAMPLED_ONE_IN: u32 = 10;

/// One allocation/logging policy's measured outcome on the reference
/// mix: its log volume and whether sampled abuse probes resolved.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoggingPolicyRow {
    /// `per-connection`, `port-block` or `deterministic`.
    pub policy: String,
    /// Allocation policy the leg ran.
    pub port_alloc: PortAllocation,
    /// What the sink recorded.
    pub telemetry: TelemetryMode,
    pub flows_started: u64,
    pub flows_blocked: u64,
    /// Measured volume, normalized to bytes/subscriber/day.
    pub volume: PolicyLogVolume,
    /// Sampled `(ext IP, port, T)` probes and how many resolved to
    /// the exact subscriber.
    pub probes: u32,
    pub probes_resolved: u32,
}

/// Outcome of a dimensioning study: one [`RunSummary`] per mix, plus
/// the logging/traceability policy study on the reference mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DimensioningReport {
    pub config: DimensioningConfig,
    pub runs: Vec<RunSummary>,
    /// The three-policy logging study (reference mix = first mix).
    pub logging: Vec<LoggingPolicyRow>,
}

/// Run every configured mix against a fresh CGN deployment, then the
/// logging/traceability study on the reference mix.
pub fn run_dimensioning(config: &DimensioningConfig) -> DimensioningReport {
    let runs = config
        .mixes
        .iter()
        .map(|mix| cgn_traffic::run(&config.driver_config(mix.clone())))
        .collect();
    DimensioningReport {
        config: config.clone(),
        runs,
        logging: logging_study(config),
    }
}

/// Re-run the reference mix under each §6.2 allocation policy with its
/// natural logging model, measure the log volume, and verify sampled
/// abuse probes resolve to the exact subscriber.
fn logging_study(config: &DimensioningConfig) -> Vec<LoggingPolicyRow> {
    let Some(mix) = config.mixes.first() else {
        return Vec::new();
    };
    let legs: [(&str, PortAllocation, TelemetryMode); 4] = [
        // Whatever per-connection strategy the study configured
        // (random by default) with full create/expire logging.
        (
            "per-connection",
            config.nat.port_alloc,
            TelemetryMode::PerConnection,
        ),
        // Same allocation, NetFlow-style 1-in-N flow sampling — the
        // affordable middle ground the full-volume row motivates.
        (
            "sampled",
            config.nat.port_alloc,
            TelemetryMode::Sampled {
                one_in: SAMPLED_ONE_IN,
            },
        ),
        (
            "port-block",
            PortAllocation::PortBlock {
                block_size: PORT_BLOCK_SIZE,
            },
            TelemetryMode::PerBlock,
        ),
        (
            "deterministic",
            PortAllocation::Deterministic {
                ports_per_host: config.deterministic_ports_per_host(),
            },
            TelemetryMode::Off,
        ),
    ];
    legs.iter()
        .map(|(name, alloc, mode)| {
            let mut driver = config.driver_config(mix.clone());
            driver.nat.port_alloc = *alloc;
            driver.telemetry = *mode;
            let (summary, logs) = cgn_traffic::run_with_logs(&driver);
            // Shard logs never share an external IP, so their decoded
            // records can be concatenated for one combined index.
            let records: Vec<Record> = logs
                .iter()
                .flat_map(|l| l.decode().expect("self-produced log decodes"))
                .collect();
            let (probes, probes_resolved) = match mode {
                TelemetryMode::Off => probe_deterministic(&driver, *alloc),
                _ => probe_logged(&records),
            };
            LoggingPolicyRow {
                policy: name.to_string(),
                port_alloc: *alloc,
                telemetry: *mode,
                flows_started: summary.flows_started,
                flows_blocked: summary.flows_blocked,
                volume: PolicyLogVolume::new(
                    *name,
                    summary.telemetry.records,
                    summary.telemetry.bytes,
                    config.subscribers as u64,
                    config.duration_secs,
                    summary.flows_started,
                ),
                probes: probes as u32,
                probes_resolved: probes_resolved as u32,
            }
        })
        .collect()
}

/// The probe-able targets of a decoded log: `(proto, external
/// endpoint, instant, expected subscriber)` per create/grant record.
fn probe_targets(
    records: &[Record],
) -> Vec<(
    netcore::Protocol,
    netcore::Endpoint,
    u64,
    std::net::Ipv4Addr,
)> {
    use netcore::Endpoint;
    records
        .iter()
        .filter_map(|r| match *r {
            Record::MapCreate {
                at_ms,
                subscriber,
                proto,
                external,
            } => Some((proto, external, at_ms, subscriber)),
            Record::BlockAlloc {
                at_ms,
                subscriber,
                proto,
                ext_ip,
                block_start,
                block_len,
            } => Some((
                proto,
                // Probe mid-block: attribution must cover the whole
                // range, not just the start the record names.
                Endpoint::new(ext_ip, block_start + block_len / 2),
                at_ms,
                subscriber,
            )),
            _ => None,
        })
        .collect()
}

/// Probe a logged policy: sample create/grant records across the run
/// and ask the interval index who held the endpoint at that instant.
fn probe_logged(records: &[Record]) -> (usize, usize) {
    let index = TraceIndex::build(records);
    let targets = probe_targets(records);
    if targets.is_empty() {
        return (0, 0);
    }
    let step = (targets.len() / TRACE_PROBES).max(1);
    let mut probes = 0;
    let mut resolved = 0;
    for (proto, external, at_ms, expected) in targets.iter().step_by(step).take(TRACE_PROBES) {
        probes += 1;
        if index.query(*proto, *external, *at_ms) == Some(*expected) {
            resolved += 1;
        }
    }
    (probes, resolved)
}

/// Queries timed for the probe-latency histogram.
const LATENCY_PROBES: usize = 512;

/// Wall-clock [`TraceIndex`] probe-latency histogram: build the index
/// over `records`, then time up to `LATENCY_PROBES` (512) evenly-sampled
/// `(ext IP, port, T)` queries, recording **nanoseconds** into a log2
/// histogram.
///
/// Wall-clock values live in the artifact layer only (perf reports,
/// `BENCH_metrics.json`) — they must never enter [`RunSummary`] or
/// [`DimensioningReport`], which are compared bit-for-bit across runs
/// and machines.
pub fn probe_latency_histogram(records: &[Record]) -> cgn_metrics::Histogram {
    let mut h = cgn_metrics::Histogram::default();
    let index = TraceIndex::build(records);
    let targets = probe_targets(records);
    if targets.is_empty() {
        return h;
    }
    let step = (targets.len() / LATENCY_PROBES).max(1);
    for (proto, external, at_ms, _) in targets.iter().step_by(step).take(LATENCY_PROBES) {
        let t0 = std::time::Instant::now();
        let answer = index.query(*proto, *external, *at_ms);
        let elapsed = t0.elapsed().as_nanos() as u64;
        // Keep the query observable so the timed call cannot be
        // optimized away.
        std::hint::black_box(answer);
        h.record(elapsed);
    }
    h
}

/// Probe deterministic NAT: no log exists, so attribution inverts the
/// provisioning arithmetic — forward-compute a sampled subscriber's
/// block, then recover the subscriber from a mid-block port probe,
/// admitting only candidates the sharded deployment actually routes
/// to that shard.
fn probe_deterministic(driver: &DriverConfig, alloc: PortAllocation) -> (usize, usize) {
    use netcore::Endpoint;
    let PortAllocation::Deterministic { ports_per_host } = alloc else {
        return (0, 0);
    };
    let base = cgn_traffic::subscriber_ip(0);
    let count = driver.subscribers;
    let step = (count as usize / TRACE_PROBES).max(1);
    let mut probes = 0;
    let mut resolved = 0;
    for idx in (0..count).step_by(step).take(TRACE_PROBES) {
        probes += 1;
        let shard = cgn_traffic::shard_of_subscriber(driver, idx);
        let map = DeterministicMap::new(
            cgn_traffic::shard_pool(driver, shard),
            driver.nat.port_range,
            ports_per_host,
        );
        let expected = cgn_traffic::subscriber_ip(idx);
        let (ext_ip, start, len) = map.external_block(expected);
        let probe = Endpoint::new(ext_ip, start + len / 2);
        let answer = map.subscriber_for(probe, base, count, |candidate| {
            let ordinal = u32::from(candidate).wrapping_sub(u32::from(base));
            cgn_traffic::shard_of_subscriber(driver, ordinal) == shard
        });
        if answer == Some(expected) {
            resolved += 1;
        }
    }
    (probes, resolved)
}

impl DimensioningReport {
    /// Total flows pushed through NATs across all mixes.
    pub fn total_flows(&self) -> u64 {
        self.runs.iter().map(|r| r.flows_started).sum()
    }

    /// Deterministic fingerprint over every run.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for r in &self.runs {
            let d = r.digest();
            for b in d.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }

    /// Render the report as text (per-mix demand summary plus the
    /// chunk-size vs. blocking-probability table).
    pub fn render(&self) -> String {
        let mut o = String::new();
        let c = &self.config;
        let _ = writeln!(
            o,
            "CGN dimensioning — seed {} | {} subscribers behind {} shard(s) × {} external IP(s), \
             {} s per mix, {} mixes, {} flows total",
            c.seed,
            c.subscribers,
            c.shards,
            c.external_ips_per_shard,
            c.duration_secs,
            self.runs.len(),
            self.total_flows(),
        );

        for r in &self.runs {
            let rep = &r.report;
            let _ = writeln!(
                o,
                "\n---- mix: {} {}",
                r.mix_name,
                "-".repeat(58usize.saturating_sub(r.mix_name.len()))
            );
            let _ = writeln!(
                o,
                "flows: {} started | {} blocked | {} completed | {} packets",
                r.flows_started, r.flows_blocked, r.flows_completed, r.packets_sent
            );
            let _ = writeln!(
                o,
                "mappings: peak {} | median {:.0} | p99 {:.0} | created {} | expired {}",
                rep.peak_mappings,
                rep.median_mappings,
                rep.p99_mappings,
                r.stats.mappings_created,
                r.stats.mappings_expired
            );
            let _ = writeln!(
                o,
                "ports/subscriber at peak: p50 {:.1} | p95 {:.1} | p99 {:.1} | max {}",
                rep.peak_ports_p50, rep.peak_ports_p95, rep.peak_ports_p99, rep.peak_ports_max
            );
            let _ = writeln!(
                o,
                "multiplexing: {:.1} subscribers/external-IP | {:.0} peak ports/external-IP | worst allocator fill {:.1}%",
                rep.subscribers_per_external_ip,
                rep.peak_ports_per_external_ip,
                100.0 * rep.worst_ip_utilization
            );
            let _ = writeln!(
                o,
                "drops: {} port-exhausted | {} session-limit",
                rep.drops_port_exhausted, rep.drops_session_limit
            );
            let st = &r.store;
            let _ = writeln!(
                o,
                "store: {} slab slots ({} live, {} free) | interned: {} hosts, {} (IP, proto) pools | {} wheel timers",
                st.slots, st.live, st.free, st.hosts_interned, st.pools_interned, st.timers
            );
            let _ = writeln!(
                o,
                "shard balance: flow imbalance {:.3} | peak-mapping imbalance {:.3} (max/mean across {} shard(s)) | worst window {:.3} at t={} s",
                r.shard_load.flow_imbalance,
                r.shard_load.mapping_imbalance,
                r.shard_load.flows_per_shard.len(),
                r.shard_load.worst_window_flow_imbalance,
                r.shard_load.worst_window_start_secs
            );
            if let Some(m) = &r.metrics {
                let _ = writeln!(o, "windowed metrics ({} s windows):", m.window_secs);
                let _ = writeln!(
                    o,
                    "  window    flows/s   created   expired      live   fill-permille   wheel-depth   arena-chunks   imbalance   drops"
                );
                for w in &m.windows {
                    let _ = writeln!(
                        o,
                        "  {:>6}   {:>8.1}   {:>7}   {:>7}   {:>7}   {:>13}   {:>11}   {:>12}   {:>9.3}   {:>5}",
                        w.start_secs,
                        w.flows_per_sec,
                        w.mappings_created,
                        w.mappings_expired,
                        w.mappings_live,
                        w.allocator_fill_permille_worst,
                        w.event_wheel_depth,
                        w.arena_chunks,
                        w.shard_flow_imbalance,
                        w.drops
                    );
                }
                let _ = writeln!(
                    o,
                    "  worst-window flow imbalance {:.3} (window starting t={} s)",
                    m.worst_window_flow_imbalance, m.worst_window_start_secs
                );
            }
            let _ = writeln!(
                o,
                "chunk-size sweep (paper §6.2 observes 512..16K chunks; 64 subs/IP at 1K):"
            );
            let _ = writeln!(
                o,
                "  chunk   subs/IP   P(demand blocked)   chunk utilization"
            );
            for row in &rep.chunk_curve {
                let _ = writeln!(
                    o,
                    "  {:>5}   {:>7}   {:>16.4}%   {:>16.2}%",
                    row.chunk_size,
                    row.subscribers_per_ip,
                    100.0 * row.p_demand_blocked,
                    100.0 * row.chunk_utilization
                );
            }
        }

        if !self.logging.is_empty() {
            let mix = self
                .config
                .mixes
                .first()
                .map(|m| m.name.as_str())
                .unwrap_or("?");
            let _ = writeln!(
                o,
                "\n---- logging / traceability (reference mix: {mix}, §2's dimensioning axis) ----"
            );
            let _ = writeln!(
                o,
                "  policy           records   rec/flow       volume   bytes/sub/day   blocked-flows   probes-ok"
            );
            for row in &self.logging {
                let _ = writeln!(
                    o,
                    "  {:<14} {:>9}   {:>8.2}   {:>10}   {:>13.1}   {:>13}   {:>6}/{}",
                    row.policy,
                    row.volume.records,
                    row.volume.records_per_flow,
                    log_volume::format_bytes(row.volume.bytes as f64),
                    row.volume.bytes_per_subscriber_day,
                    row.flows_blocked,
                    row.probes_resolved,
                    row.probes
                );
            }
            let _ = writeln!(
                o,
                "  projected daily volume for 1M subscribers: {}",
                self.logging
                    .iter()
                    .map(|r| format!(
                        "{} {}",
                        r.policy,
                        log_volume::format_bytes(r.volume.projected_daily_bytes(1_000_000))
                    ))
                    .collect::<Vec<_>>()
                    .join(" | ")
            );
        }
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(seed: u64) -> DimensioningConfig {
        DimensioningConfig {
            subscribers: 120,
            duration_secs: 120,
            mixes: vec![WorkloadMix::residential_evening(), WorkloadMix::iot_fleet()],
            ..DimensioningConfig::small(seed)
        }
    }

    #[test]
    fn sweep_runs_every_mix() {
        let rep = run_dimensioning(&tiny(3));
        assert_eq!(rep.runs.len(), 2);
        assert!(rep.total_flows() > 0);
        assert!(rep.runs.iter().all(|r| !r.series.is_empty()));
    }

    #[test]
    fn logging_study_measures_all_four_policies() {
        let rep = run_dimensioning(&tiny(3));
        assert_eq!(rep.logging.len(), 4);
        let by_name = |n: &str| {
            rep.logging
                .iter()
                .find(|r| r.policy == n)
                .unwrap_or_else(|| panic!("policy {n} missing"))
        };
        let per_conn = by_name("per-connection");
        let sampled = by_name("sampled");
        let per_block = by_name("port-block");
        let det = by_name("deterministic");
        // 1-in-10 flow sampling sits strictly between full
        // per-connection volume and nothing.
        assert!(sampled.volume.records > 0, "sampling must keep flows");
        assert!(
            sampled.volume.bytes * 3 < per_conn.volume.bytes,
            "sampled ({}) must undercut per-connection ({})",
            sampled.volume.bytes,
            per_conn.volume.bytes
        );
        assert!(sampled.volume.bytes_per_subscriber_day > 0.0);
        // The paper's ordering: per-connection >> port-block > zero.
        assert!(per_conn.volume.bytes > 0 && per_conn.volume.records > 0);
        assert!(per_block.volume.records > 0);
        // The margin grows with flows/subscriber; even this tiny
        // two-minute fixture shows a multiple (the driver's p2p test
        // pins the order-of-magnitude gap on a realistic mix).
        assert!(
            per_block.volume.bytes * 3 < per_conn.volume.bytes,
            "block logs ({}) must undercut per-connection ({})",
            per_block.volume.bytes,
            per_conn.volume.bytes
        );
        assert_eq!(det.volume.bytes, 0, "deterministic NAT logs nothing");
        assert_eq!(det.volume.records, 0);
        assert!(per_conn.volume.bytes_per_subscriber_day > det.volume.bytes_per_subscriber_day);
        // Every sampled abuse probe resolves to the exact subscriber —
        // through the interval index for logged policies, through the
        // provisioning inverse for deterministic NAT.
        for row in &rep.logging {
            assert!(row.probes > 0, "{}: probes sampled", row.policy);
            assert_eq!(
                row.probes_resolved, row.probes,
                "{}: every probe must resolve exactly",
                row.policy
            );
        }
        // Roughly two records per flow (create+expire) under
        // per-connection logging; far fewer under blocks.
        assert!(per_conn.volume.records_per_flow > 1.0);
        assert!(per_block.volume.records_per_flow < 0.5);
    }

    #[test]
    fn deterministic_ports_per_host_provisions_every_subscriber() {
        let cfg = tiny(3);
        let pph = cfg.deterministic_ports_per_host() as u64;
        assert!(pph.is_power_of_two());
        let capacity = (cfg.nat.port_range.1 - cfg.nat.port_range.0) as u64 + 1;
        let slots_per_shard = cfg.external_ips_per_shard as u64 * (capacity / pph);
        assert!(
            slots_per_shard >= cfg.subscribers as u64,
            "{slots_per_shard} slots must cover {} subscribers",
            cfg.subscribers
        );
        // Tight: the next power of two would not fit the population.
        assert!(
            pph == 16_384
                || cfg.external_ips_per_shard as u64 * (capacity / (pph * 2))
                    < cfg.subscribers as u64
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_dimensioning(&tiny(11));
        let b = run_dimensioning(&tiny(11));
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), run_dimensioning(&tiny(12)).digest());
    }

    #[test]
    fn threads_do_not_change_results() {
        let mut cfg = tiny(9);
        cfg.shards = 2;
        cfg.threads = 1;
        let seq = run_dimensioning(&cfg);
        cfg.threads = 4;
        let par = run_dimensioning(&cfg);
        assert_eq!(seq.runs, par.runs, "threads are an execution detail");
        assert_eq!(seq.digest(), par.digest());
    }

    #[test]
    fn render_contains_chunk_table_and_mix_names() {
        let rep = run_dimensioning(&tiny(5));
        let text = rep.render();
        assert!(text.contains("chunk-size sweep"));
        assert!(text.contains("slab slots"), "store occupancy line");
        assert!(text.contains("wheel timers"));
        assert!(text.contains("shard balance"), "imbalance line");
        assert!(text.contains("logging / traceability"), "logging table");
        assert!(text.contains("per-connection"));
        assert!(text.contains("sampled"), "NetFlow-style sampled row");
        assert!(text.contains("port-block"));
        assert!(text.contains("deterministic"));
        assert!(text.contains("bytes/sub/day"));
        assert!(text.contains("projected daily volume for 1M subscribers"));
        assert!(text.contains("residential-evening"));
        assert!(text.contains("iot-fleet"));
        assert!(text.contains("subs/IP"));
        for chunk in analysis::port_demand::CHUNK_SIZES {
            assert!(text.contains(&format!("{chunk}")), "chunk {chunk} missing");
        }
    }

    #[test]
    fn json_round_trips() {
        let rep = run_dimensioning(&tiny(7));
        let json = serde_json::to_string_pretty(&rep).expect("serializable");
        let back: DimensioningReport = serde_json::from_str(&json).expect("parseable");
        assert_eq!(rep, back);
    }

    #[test]
    fn metrics_window_renders_live_table() {
        let mut cfg = tiny(5);
        cfg.metrics_window_secs = Some(60);
        let rep = run_dimensioning(&cfg);
        assert!(rep.runs.iter().all(|r| r.metrics.is_some()));
        let text = rep.render();
        assert!(text.contains("windowed metrics (60 s windows):"));
        assert!(text.contains("flows/s"));
        assert!(text.contains("fill-permille"));
        assert!(text.contains("worst-window flow imbalance"));
        assert!(text.contains("worst window"), "shard-balance worst window");
        // Thread-count invariance holds with metrics installed too.
        cfg.threads = 1;
        let seq = run_dimensioning(&cfg);
        cfg.threads = 3;
        let par = run_dimensioning(&cfg);
        assert_eq!(seq.runs, par.runs);
    }

    #[test]
    fn probe_latency_histogram_measures_queries() {
        let cfg = tiny(3);
        let mut driver = cfg.driver_config(cfg.mixes[0].clone());
        driver.telemetry = TelemetryMode::PerConnection;
        let (_, logs) = cgn_traffic::run_with_logs(&driver);
        let records: Vec<Record> = logs
            .iter()
            .flat_map(|l| l.decode().expect("self-produced log decodes"))
            .collect();
        let h = probe_latency_histogram(&records);
        assert!(h.count > 0, "probes were timed");
        assert!(h.count <= 512);
        assert!(h.sum > 0, "wall time accumulated");
        assert!(h.quantile(0.99) >= h.quantile(0.5));
        assert_eq!(probe_latency_histogram(&[]).count, 0, "empty log is safe");
    }
}
