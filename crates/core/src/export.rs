//! Plot-data export: TSV series for every plottable figure.
//!
//! `repro -- export=DIR` writes one tab-separated file per figure, ready
//! for gnuplot/matplotlib — the form in which a measurement-paper
//! repository usually ships its figure data.

use crate::report::StudyReport;
use std::fmt::Write as _;

/// One exported data file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportFile {
    /// Suggested file name, e.g. `fig04_clusters.tsv`.
    pub name: String,
    /// Tab-separated content with a `#`-prefixed header line.
    pub content: String,
}

/// Produce the TSV series for every plottable figure in the report.
pub fn export_figures(report: &StudyReport) -> Vec<ExportFile> {
    let mut files = Vec::new();

    // Fig. 4 — per-(AS, range) largest-cluster scatter.
    {
        let mut c = String::from("#as\trange\texternal_ips\tinternal_ips\tpositive\n");
        for p in &report.fig4 {
            let _ = writeln!(
                c,
                "{}\t{}\t{}\t{}\t{}",
                p.as_id.0,
                p.range.shorthand(),
                p.external_ips,
                p.internal_ips,
                p.positive as u8
            );
        }
        files.push(ExportFile {
            name: "fig04_clusters.tsv".into(),
            content: c,
        });
    }

    // Fig. 5 — candidate sessions vs /24 diversity scatter.
    {
        let mut c = String::from("#as\tcandidate_sessions\tcpe_slash24s\tpositive\n");
        for p in &report.fig5 {
            let _ = writeln!(
                c,
                "{}\t{}\t{}\t{}",
                p.as_id.0, p.candidate_sessions, p.cpe_slash24s, p.positive as u8
            );
        }
        files.push(ExportFile {
            name: "fig05_candidates.tsv".into(),
            content: c,
        });
    }

    // Fig. 6 — per-RIR rates.
    {
        let mut c = String::from("#rir\tcoverage_pct\tpositive_pct\tcellular_positive_pct\n");
        for rir in netcore::Rir::ALL {
            let _ = writeln!(
                c,
                "{}\t{:.2}\t{:.2}\t{:.2}",
                rir.name(),
                report.fig6.coverage_pct.get(&rir).copied().unwrap_or(0.0),
                report.fig6.positive_pct.get(&rir).copied().unwrap_or(0.0),
                report
                    .fig6
                    .cellular_positive_pct
                    .get(&rir)
                    .copied()
                    .unwrap_or(0.0)
            );
        }
        files.push(ExportFile {
            name: "fig06_rir.tsv".into(),
            content: c,
        });
    }

    // Fig. 8a — the two port histograms.
    {
        let mut c = String::from("#port_bin_low\tpreserved_freq\ttranslated_freq\n");
        let p = report.fig8a_preserved.normalized();
        let t = report.fig8a_translated.normalized();
        let w = report.fig8a_preserved.bin_width;
        for (i, (pv, tv)) in p.iter().zip(&t).enumerate() {
            let _ = writeln!(c, "{}\t{:.6}\t{:.6}", i as u64 * w, pv, tv);
        }
        files.push(ExportFile {
            name: "fig08a_ports.tsv".into(),
            content: c,
        });
    }

    // Fig. 8b — per-model preservation.
    {
        let mut c = String::from("#model\tsessions\tpreserving_sessions\n");
        for (model, (n, pres)) in &report.fig8b {
            let _ = writeln!(c, "{model}\t{n}\t{pres}");
        }
        files.push(ExportFile {
            name: "fig08b_cpe_models.tsv".into(),
            content: c,
        });
    }

    // Fig. 9 — per-AS strategy mixes (both panels).
    {
        let mut c = String::from("#panel\tas\tsessions\tpreservation\tsequential\trandom\tpure\n");
        for (panel, mixes) in [
            ("non-cellular", &report.fig9.noncellular),
            ("cellular", &report.fig9.cellular),
        ] {
            for (a, m) in mixes {
                let _ = writeln!(
                    c,
                    "{panel}\t{}\t{}\t{}\t{}\t{}\t{}",
                    a.0,
                    m.sessions,
                    m.preservation,
                    m.sequential,
                    m.random,
                    m.is_pure() as u8
                );
            }
        }
        files.push(ExportFile {
            name: "fig09_strategies.tsv".into(),
            content: c,
        });
    }

    // Fig. 11 — distance histograms per group.
    {
        let mut c = String::from("#group\thop\tfraction\n");
        for (group, counts) in &report.fig11.per_group {
            let total: usize = counts.iter().sum();
            for (i, n) in counts.iter().enumerate() {
                let _ = writeln!(
                    c,
                    "{group}\t{}\t{:.4}",
                    i + 1,
                    *n as f64 / total.max(1) as f64
                );
            }
        }
        files.push(ExportFile {
            name: "fig11_distance.tsv".into(),
            content: c,
        });
    }

    // Fig. 12 — timeout samples per population (box plots are derived).
    {
        let mut c = String::from("#population\ttimeout_secs\n");
        for v in &report.fig12.cellular_values {
            let _ = writeln!(c, "cellular_cgn\t{v}");
        }
        for v in &report.fig12.noncellular_values {
            let _ = writeln!(c, "noncellular_cgn\t{v}");
        }
        for v in &report.fig12.cpe_values {
            let _ = writeln!(c, "cpe\t{v}");
        }
        files.push(ExportFile {
            name: "fig12_timeouts.tsv".into(),
            content: c,
        });
    }

    // Fig. 13 — STUN distributions.
    {
        let mut c = String::from("#panel\tstun_type\tshare\n");
        for (panel, d) in [
            ("cpe_sessions", &report.fig13a),
            ("noncellular_cgn_ases", &report.fig13b.noncellular),
            ("cellular_cgn_ases", &report.fig13b.cellular),
        ] {
            for (t, share) in d.shares() {
                let _ = writeln!(c, "{panel}\t{}\t{:.4}", t.name().replace(' ', "_"), share);
            }
        }
        files.push(ExportFile {
            name: "fig13_stun.tsv".into(),
            content: c,
        });
    }

    // Dimensioning (when the study ran the operator-side sweep).
    if let Some(dim) = &report.dimensioning {
        files.extend(export_dimensioning(dim));
    }

    files
}

/// TSV series + JSON dump for a dimensioning sweep.
pub fn export_dimensioning(dim: &crate::dimensioning::DimensioningReport) -> Vec<ExportFile> {
    let mut files = Vec::new();

    // Demand time series: one row per (mix, sample).
    {
        let mut c = String::from(
            "#mix\tt_secs\tmappings\tactive_subscribers\tports_p50\tports_p95\tports_p99\
             \tports_max\tworst_ip_utilization\tdrops_port_exhausted\tdrops_session_limit\n",
        );
        for r in &dim.runs {
            for s in &r.series.samples {
                let _ = writeln!(
                    c,
                    "{}\t{}\t{}\t{}\t{:.2}\t{:.2}\t{:.2}\t{}\t{:.4}\t{}\t{}",
                    r.mix_name,
                    s.t_secs,
                    s.mappings,
                    s.active_subscribers,
                    s.ports_p50,
                    s.ports_p95,
                    s.ports_p99,
                    s.ports_max,
                    s.worst_ip_utilization,
                    s.drops_port_exhausted,
                    s.drops_session_limit
                );
            }
        }
        files.push(ExportFile {
            name: "dim_demand_series.tsv".into(),
            content: c,
        });
    }

    // Chunk-size vs. blocking-probability curve per mix (§6.2's knob).
    {
        let mut c = String::from(
            "#mix\tchunk_size\tsubscribers_per_ip\tp_demand_blocked\tchunk_utilization\n",
        );
        for r in &dim.runs {
            for row in &r.report.chunk_curve {
                let _ = writeln!(
                    c,
                    "{}\t{}\t{}\t{:.6}\t{:.6}",
                    r.mix_name,
                    row.chunk_size,
                    row.subscribers_per_ip,
                    row.p_demand_blocked,
                    row.chunk_utilization
                );
            }
        }
        files.push(ExportFile {
            name: "dim_chunk_blocking.tsv".into(),
            content: c,
        });
    }

    // Log-volume vs. allocation-policy table (§2's logging burden).
    {
        let mut c = String::from(
            "#policy\trecords\tbytes\tbytes_per_subscriber_day\trecords_per_flow\
             \tflows_blocked\tprobes\tprobes_resolved\n",
        );
        for row in &dim.logging {
            let _ = writeln!(
                c,
                "{}\t{}\t{}\t{:.3}\t{:.4}\t{}\t{}\t{}",
                row.policy,
                row.volume.records,
                row.volume.bytes,
                row.volume.bytes_per_subscriber_day,
                row.volume.records_per_flow,
                row.flows_blocked,
                row.probes,
                row.probes_resolved
            );
        }
        files.push(ExportFile {
            name: "dim_log_volume.tsv".into(),
            content: c,
        });
    }

    // Full machine-readable report.
    if let Ok(json) = serde_json::to_string_pretty(dim) {
        files.push(ExportFile {
            name: "dim_report.json".into(),
            content: json,
        });
    }

    files
}

/// Write the exported files into a directory.
pub fn write_to_dir(report: &StudyReport, dir: &std::path::Path) -> std::io::Result<Vec<String>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for f in export_figures(report) {
        let path = dir.join(&f.name);
        std::fs::write(&path, f.content.as_bytes())?;
        written.push(f.name);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StudyConfig;
    use crate::pipeline::measure;
    use crate::results::assemble;

    fn report() -> StudyReport {
        assemble(&measure(StudyConfig::tiny(19)))
    }

    #[test]
    fn every_plottable_figure_is_exported() {
        let files = export_figures(&report());
        let names: Vec<&str> = files.iter().map(|f| f.name.as_str()).collect();
        for expected in [
            "fig04_clusters.tsv",
            "fig05_candidates.tsv",
            "fig06_rir.tsv",
            "fig08a_ports.tsv",
            "fig08b_cpe_models.tsv",
            "fig09_strategies.tsv",
            "fig11_distance.tsv",
            "fig12_timeouts.tsv",
            "fig13_stun.tsv",
        ] {
            assert!(
                names.contains(&expected),
                "{expected} missing from {names:?}"
            );
        }
    }

    #[test]
    fn tsv_files_are_well_formed() {
        for f in export_figures(&report()) {
            let mut lines = f.content.lines();
            let header = lines.next().expect("header line");
            assert!(header.starts_with('#'), "{}: header missing", f.name);
            let cols = header.split('\t').count();
            for (i, line) in lines.enumerate() {
                assert_eq!(
                    line.split('\t').count(),
                    cols,
                    "{} line {}: column count mismatch",
                    f.name,
                    i + 2
                );
            }
        }
    }

    #[test]
    fn fig6_always_has_five_rows() {
        let files = export_figures(&report());
        let fig6 = files
            .iter()
            .find(|f| f.name == "fig06_rir.tsv")
            .expect("present");
        assert_eq!(fig6.content.lines().count(), 6, "header + 5 RIRs");
    }

    #[test]
    fn dimensioning_export_has_series_curve_and_json() {
        use crate::dimensioning::{run_dimensioning, DimensioningConfig};
        let mut cfg = DimensioningConfig::small(3);
        cfg.subscribers = 100;
        cfg.duration_secs = 90;
        cfg.mixes.truncate(2);
        let dim = run_dimensioning(&cfg);
        let files = export_dimensioning(&dim);
        let names: Vec<&str> = files.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "dim_demand_series.tsv",
                "dim_chunk_blocking.tsv",
                "dim_log_volume.tsv",
                "dim_report.json"
            ]
        );
        let series = &files[0].content;
        assert!(series.lines().count() > 2, "series has data rows");
        let curve = &files[1].content;
        assert_eq!(
            curve.lines().count(),
            1 + 2 * analysis::port_demand::CHUNK_SIZES.len(),
            "one curve row per (mix, chunk size)"
        );
        let logging = &files[2].content;
        assert_eq!(
            logging.lines().count(),
            1 + 4,
            "one log-volume row per policy"
        );
        for policy in ["per-connection", "sampled", "port-block", "deterministic"] {
            assert!(logging.contains(policy), "{policy} row missing");
        }
        assert!(files[3].content.trim_start().starts_with('{'));
    }

    #[test]
    fn write_to_dir_roundtrip() {
        let dir = std::env::temp_dir().join(format!("cgn_export_{}", std::process::id()));
        let written = write_to_dir(&report(), &dir).expect("write");
        assert_eq!(written.len(), 9);
        for name in &written {
            let content = std::fs::read_to_string(dir.join(name)).expect("readable");
            assert!(content.starts_with('#'));
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
