//! Assembling the report: run every analysis over the artifacts.

use crate::pipeline::StudyArtifacts;
use crate::report::*;
use analysis::addr_class::{classify_addr, table4, AddrClass};
use analysis::baseline;
use analysis::bt_detect::BtDetector;
use analysis::coverage::{fig6, table5, MethodCoverage, Populations};
use analysis::distance::{fig11, table7};
use analysis::graph::LeakGraph;
use analysis::nz_detect::{NzCellularDetector, NzNonCellularDetector};
use analysis::obs::SessionObs;
use analysis::port_alloc::{
    arbitrary_pooling_ases, fig8a_histograms, fig8b_cpe_preservation, strategy_mix_per_as, table6,
    ChunkDetector, PortClassifier,
};
use analysis::stun_class::{
    distribution_over_ases, fig13a_cpe_sessions, fig13b_most_permissive_per_as,
};
use analysis::timeouts::fig12;
use netcore::{AsId, ReservedRange};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Run all analyses and build the report.
pub fn assemble(art: &StudyArtifacts) -> StudyReport {
    let world = &art.world;
    let routing = &world.routing;
    let sessions = &art.sessions;

    // ------------------------------------------------------------------
    // BitTorrent pipeline (Tables 2/3, Figs 3/4).
    // ------------------------------------------------------------------
    let bt_det = BtDetector::default().detect(&art.leaks);
    let bt_positive = bt_det.positive_ases();

    let as_of = |ip: std::net::Ipv4Addr| routing.origin_of(ip);
    let queried_ases: BTreeSet<AsId> = art
        .crawl
        .queried
        .iter()
        .filter_map(|(e, _)| as_of(e.ip))
        .collect();
    let learned_ases: BTreeSet<AsId> = art
        .crawl
        .learned
        .iter()
        .filter_map(|(e, _)| as_of(e.ip))
        .collect();
    let table2 = Table2 {
        queried_peers: art.crawl.queried.len(),
        queried_ips: art.crawl.queried_unique_ips(),
        queried_ases: queried_ases.len(),
        learned_peers: art.crawl.learned.len(),
        learned_ips: art.crawl.learned_unique_ips(),
        learned_ases: learned_ases.len(),
        responded_peers: art.crawl.ping_responders.len(),
        queries_sent: art.crawl.queries_sent,
    };

    let internal_by_range = art.crawl.internal_peers_by_range();
    let leaking_by_range = art.crawl.leaking_peers_by_range();
    let table3: Vec<Table3Row> = ReservedRange::ALL
        .into_iter()
        .map(|range| {
            let leaking_ases: BTreeSet<AsId> = art
                .leaks
                .iter()
                .filter(|l| l.range == range)
                .filter_map(|l| l.leaker_as)
                .collect();
            let (int_tot, int_ips) = internal_by_range.get(&range).copied().unwrap_or((0, 0));
            let (leak_tot, leak_ips) = leaking_by_range.get(&range).copied().unwrap_or((0, 0));
            Table3Row {
                range,
                internal_total: int_tot,
                internal_ips: int_ips,
                leaking_total: leak_tot,
                leaking_ips: leak_ips,
                leaking_ases: leaking_ases.len(),
            }
        })
        .collect();

    // Fig 3: pick the best isolated (largest leaker count among ASes with
    // only 1x1 clusters) and clustered (largest positive cluster) examples.
    let mut fig3_isolated: Option<Fig3Example> = None;
    let mut fig3_clustered: Option<Fig3Example> = None;
    for (as_id, a) in &bt_det.per_as {
        let largest = a
            .largest_per_range
            .values()
            .max_by_key(|c| (c.external_ips, c.internal_ips))
            .copied()
            .unwrap_or(analysis::graph::ClusterSummary {
                external_ips: 0,
                internal_ips: 0,
            });
        let ex = Fig3Example {
            as_id: *as_id,
            leakers: a.leaking_ips,
            internals: a.internal_ips,
            largest,
        };
        if largest.external_ips <= 1 {
            if fig3_isolated
                .as_ref()
                .map(|e| e.leakers < ex.leakers)
                .unwrap_or(true)
            {
                fig3_isolated = Some(ex);
            }
        } else if a.cgn_positive
            && fig3_clustered
                .as_ref()
                .map(|e| e.largest.external_ips < largest.external_ips)
                .unwrap_or(true)
        {
            fig3_clustered = Some(ex);
        }
    }

    let fig4: Vec<Fig4Point> = bt_det
        .per_as
        .iter()
        .flat_map(|(as_id, a)| {
            a.largest_per_range.iter().map(|(range, c)| Fig4Point {
                as_id: *as_id,
                range: *range,
                external_ips: c.external_ips,
                internal_ips: c.internal_ips,
                positive: a.positive_ranges.contains(range),
            })
        })
        .collect();

    // ------------------------------------------------------------------
    // Netalyzr pipeline (Tables 4/7, Figs 5/8/9/11/12/13).
    // ------------------------------------------------------------------
    let t4 = table4(sessions, routing);
    let nz_cell = NzCellularDetector::default().detect(sessions, routing);
    let nz_noncell = NzNonCellularDetector::default().detect(sessions, routing);
    let nz_cellular_positive: BTreeSet<AsId> = nz_cell
        .iter()
        .filter(|(_, r)| r.cgn_positive)
        .map(|(a, _)| *a)
        .collect();
    let nz_noncellular_positive: BTreeSet<AsId> = nz_noncell
        .iter()
        .filter(|(_, r)| r.cgn_positive)
        .map(|(a, _)| *a)
        .collect();
    let fig5: Vec<Fig5Point> = nz_noncell
        .iter()
        .filter(|(_, r)| r.candidate_sessions > 0)
        .map(|(a, r)| Fig5Point {
            as_id: *a,
            candidate_sessions: r.candidate_sessions,
            cpe_slash24s: r.cpe_slash24s,
            positive: r.cgn_positive,
        })
        .collect();

    // ------------------------------------------------------------------
    // Coverage (Table 5, Fig 6).
    // ------------------------------------------------------------------
    let mut queried_per_as: HashMap<AsId, usize> = HashMap::new();
    for (e, _) in &art.crawl.queried {
        if let Some(a) = as_of(e.ip) {
            *queried_per_as.entry(a).or_insert(0) += 1;
        }
    }
    let bt_covered: BTreeSet<AsId> = queried_per_as
        .iter()
        .filter(|(_, n)| **n >= art.config.bt_coverage_min_peers)
        .map(|(a, _)| *a)
        .collect();
    let bt_cov = MethodCoverage {
        covered: bt_covered.union(&bt_positive).copied().collect(),
        positive: bt_positive.clone(),
    };

    let nz_nc_covered: BTreeSet<AsId> = sessions
        .iter()
        .filter(|s| !s.cellular)
        .filter_map(|s| s.as_id)
        .collect();
    let nz_nc_cov = MethodCoverage {
        covered: nz_nc_covered
            .union(&nz_noncellular_positive)
            .copied()
            .collect(),
        positive: nz_noncellular_positive.clone(),
    };

    let nz_cell_covered: BTreeSet<AsId> = nz_cell.keys().copied().collect();
    let nz_cell_cov = MethodCoverage {
        covered: nz_cell_covered
            .union(&nz_cellular_positive)
            .copied()
            .collect(),
        positive: nz_cellular_positive.clone(),
    };

    let pops = Populations {
        routed: world.registry.iter().map(|a| a.id).collect(),
        pbl: world.pbl.iter().copied().collect(),
        apnic: world.apnic_list.iter().copied().collect(),
        cellular: world
            .registry
            .iter()
            .filter(|a| a.kind.is_cellular())
            .map(|a| a.id)
            .collect(),
        rir_of: world.registry.iter().map(|a| (a.id, a.rir)).collect(),
    };
    let t5 = table5(&bt_cov, &nz_nc_cov, &nz_cell_cov, &pops);
    let union_cov = bt_cov.union(&nz_nc_cov);
    let f6 = fig6(&union_cov, &nz_cell_cov, &pops);

    // The union of all positives, for downstream per-AS filters.
    let all_positive: BTreeSet<AsId> = bt_positive
        .union(&nz_noncellular_positive)
        .copied()
        .collect::<BTreeSet<_>>()
        .union(&nz_cellular_positive)
        .copied()
        .collect();
    let cellular_set: BTreeSet<AsId> = pops.cellular.clone();
    let is_cgn = |a: AsId| all_positive.contains(&a);
    let is_cellular = |a: AsId| cellular_set.contains(&a);

    // ------------------------------------------------------------------
    // Fig 7 — measured internal address space of detected CGNs.
    // ------------------------------------------------------------------
    let mut fig7 = Fig7::default();
    for a in &all_positive {
        let mut labels: BTreeSet<String> = BTreeSet::new();
        // BT evidence.
        if let Some(analysis) = bt_det.per_as.get(a) {
            for r in analysis.largest_per_range.keys() {
                labels.insert(r.shorthand().to_string());
            }
        }
        // Netalyzr evidence: cellular IPdev classes; non-cellular IPcpe
        // ranges.
        for s in sessions.iter().filter(|s| s.as_id == Some(*a)) {
            if s.cellular {
                match classify_addr(s.ip_dev, s.ip_pub, routing) {
                    AddrClass::Private(r) => {
                        labels.insert(r.shorthand().to_string());
                    }
                    AddrClass::Unrouted => {
                        labels.insert("routable (unrouted)".to_string());
                    }
                    AddrClass::RoutedMismatch => {
                        labels.insert("routable (routed)".to_string());
                    }
                    AddrClass::RoutedMatch => {}
                }
            }
        }
        if let Some(r) = nz_noncell.get(a) {
            for range in &r.ranges {
                labels.insert(range.shorthand().to_string());
            }
        }
        if labels.is_empty() {
            continue;
        }
        let key = if labels.len() > 1 {
            "multiple".to_string()
        } else {
            labels.iter().next().expect("nonempty").clone()
        };
        let bucket = if is_cellular(*a) {
            &mut fig7.cellular
        } else {
            &mut fig7.noncellular
        };
        *bucket.entry(key).or_insert(0) += 1;
        for l in &labels {
            if l.starts_with("routable") {
                fig7.routable_internal_ases.push((*a, l.clone()));
            }
        }
    }

    // ------------------------------------------------------------------
    // Port allocation (Figs 8/9, Table 6) + pooling.
    // ------------------------------------------------------------------
    let classifier = PortClassifier::default();
    let (fig8a_preserved, fig8a_translated) = fig8a_histograms(sessions, &classifier, 4096);
    let fig8b = fig8b_cpe_preservation(sessions, &classifier, is_cgn);

    let noncell_sessions: Vec<SessionObs> =
        sessions.iter().filter(|s| !s.cellular).cloned().collect();
    let cell_sessions: Vec<SessionObs> = sessions.iter().filter(|s| s.cellular).cloned().collect();
    let mixes_noncell = strategy_mix_per_as(&noncell_sessions, &classifier, is_cgn);
    let mixes_cell = strategy_mix_per_as(&cell_sessions, &classifier, is_cgn);

    let chunks_noncell = ChunkDetector::default().detect(&noncell_sessions, &classifier, is_cgn);
    let chunks_cell = ChunkDetector::default().detect(&cell_sessions, &classifier, is_cgn);
    let t6_noncell = table6(&mixes_noncell, &chunks_noncell);
    let t6_cell = table6(&mixes_cell, &chunks_cell);

    // Fig 8c: showcase the chunked AS with the most sessions.
    let fig8c = chunks_noncell
        .iter()
        .chain(chunks_cell.iter())
        .map(|(a, c)| {
            let ranges: Vec<(u16, u16)> = sessions
                .iter()
                .filter(|s| s.as_id == Some(*a))
                .filter_map(|s| {
                    let ports: Vec<u16> = s.observed_flows().map(|(_, o)| o.port).collect();
                    if ports.len() < 4 {
                        return None;
                    }
                    Some((
                        *ports.iter().min().expect("nonempty"),
                        *ports.iter().max().expect("nonempty"),
                    ))
                })
                .collect();
            (*a, *c, ranges)
        })
        .max_by_key(|(_, _, r)| r.len())
        .map(|(as_id, estimated_chunk, session_ranges)| Fig8c {
            as_id,
            estimated_chunk,
            session_ranges,
        });

    let sort_mixes = |m: &BTreeMap<AsId, analysis::port_alloc::AsStrategyMix>| {
        let mut v: Vec<(AsId, analysis::port_alloc::AsStrategyMix)> =
            m.iter().map(|(a, x)| (*a, x.clone())).collect();
        v.sort_by_key(|(a, m)| (!m.is_pure(), a.0));
        v
    };
    let fig9 = Fig9 {
        noncellular: sort_mixes(&mixes_noncell),
        cellular: sort_mixes(&mixes_cell),
    };

    let pooling_map = arbitrary_pooling_ases(sessions, is_cgn, 0.6);
    let pooling = PoolingSummary {
        cgn_ases_observed: pooling_map.len(),
        arbitrary_pooling_ases: pooling_map.values().filter(|v| **v).count(),
    };

    // ------------------------------------------------------------------
    // Topology & timeouts (Table 7, Figs 11/12) and STUN (Fig 13).
    // ------------------------------------------------------------------
    let t7 = table7(sessions);
    let f11 = fig11(sessions, is_cgn);
    let f12 = fig12(
        sessions,
        |a| is_cellular(a) && is_cgn(a),
        |a| !is_cellular(a) && is_cgn(a),
    );
    let f13a = fig13a_cpe_sessions(sessions, is_cgn);
    let f13b_cell = fig13b_most_permissive_per_as(&cell_sessions, |a| is_cgn(a) && is_cellular(a));
    let f13b_noncell =
        fig13b_most_permissive_per_as(&noncell_sessions, |a| is_cgn(a) && !is_cellular(a));

    // ------------------------------------------------------------------
    // Ground-truth scoring (ablation).
    // ------------------------------------------------------------------
    let truth: BTreeSet<AsId> = world
        .deployments
        .iter()
        .filter(|d| d.has_cgn())
        .map(|d| d.info.id)
        .collect();
    let nz_nc_universe: BTreeSet<AsId> = nz_noncell.keys().copied().collect();
    let union_detected: BTreeSet<AsId> = all_positive.clone();
    let union_universe: BTreeSet<AsId> = bt_cov
        .covered
        .union(&nz_nc_cov.covered)
        .copied()
        .collect::<BTreeSet<_>>()
        .union(&nz_cell_cov.covered)
        .copied()
        .collect();
    let scoring = Scoring {
        truth_cgn_ases: truth.len(),
        bt_paper: baseline::score(&bt_positive, &truth, &bt_cov.covered),
        bt_any_leak: baseline::score(&baseline::bt_any_leak(&art.leaks), &truth, &bt_cov.covered),
        bt_low_threshold: baseline::score(
            &baseline::bt_low_threshold(&art.leaks),
            &truth,
            &bt_cov.covered,
        ),
        nz_noncellular_paper: baseline::score(&nz_noncellular_positive, &truth, &nz_nc_universe),
        nz_any_mismatch: baseline::score(
            &baseline::nz_any_mismatch(sessions),
            &truth,
            &nz_nc_universe,
        ),
        nz_cellular_paper: baseline::score(&nz_cellular_positive, &truth, &nz_cell_cov.covered),
        union_paper: baseline::score(&union_detected, &truth, &union_universe),
    };

    // ------------------------------------------------------------------
    // IETF compliance census over detected CGNs (§7).
    // ------------------------------------------------------------------
    let detected_configs: Vec<nat_engine::NatConfig> = world
        .deployments
        .iter()
        .filter(|d| all_positive.contains(&d.info.id))
        .flat_map(|d| d.cgn_instances.iter())
        .map(|ci| world.net.nat(ci.nat_node).config().clone())
        .collect();
    let (cgn_instances, noncompliant, counts) =
        nat_engine::compliance::violation_census(detected_configs.iter());
    let compliance = ComplianceCensus {
        cgn_instances,
        noncompliant,
        per_requirement: counts
            .into_iter()
            .map(|(r, n)| (r.label().to_string(), n))
            .collect(),
    };

    // ------------------------------------------------------------------
    // Survey & meta.
    // ------------------------------------------------------------------
    let fig1 = Fig1 {
        respondents: art.survey.len(),
        cgn: art.survey.cgn_shares(),
        ipv6: art.survey.ipv6_shares(),
        scarcity_share: art.survey.scarcity_share(),
        max_subs_per_address: art.survey.max_subs_per_address(),
    };

    let meta = Meta {
        seed: art.config.seed,
        routed_ases: world.registry.len(),
        eyeball_ases: world.registry.eyeballs().count(),
        cellular_ases: world.registry.cellular().count(),
        subscribers: world.subscribers.len(),
        dht_peers: art.dht_peer_count,
        sessions: sessions.len(),
        ttl_sessions: sessions.iter().filter(|s| s.ttl.is_some()).count(),
        stun_sessions: sessions.iter().filter(|s| s.stun_nat.is_some()).count(),
    };

    // Consistency guard: leak graphs per AS never contradict the raw
    // crawl (every positive AS has leakage).
    for a in &bt_positive {
        debug_assert!(
            art.leaks.iter().any(|l| l.leaker_as == Some(*a)),
            "positive AS {a} without leak records"
        );
    }
    let _ = LeakGraph::new(); // keep the import obviously used in release

    StudyReport {
        meta,
        fig1,
        table2,
        table3,
        fig3_isolated,
        fig3_clustered,
        fig4,
        bt_positive,
        calibration: art.calibration,
        table4: t4,
        fig5,
        nz_noncellular_positive,
        nz_cellular_positive,
        table5: t5,
        fig6: f6,
        fig7,
        fig8a_preserved,
        fig8a_translated,
        fig8b,
        fig8c,
        fig9,
        table6_noncellular: t6_noncell,
        table6_cellular: t6_cell,
        pooling,
        table7: t7,
        fig11: f11,
        fig12: f12,
        fig13a: f13a,
        fig13b: Fig13b {
            cellular: distribution_over_ases(&f13b_cell),
            noncellular: distribution_over_ases(&f13b_noncell),
        },
        scoring,
        compliance,
        // The dimensioning sweep is attached by `pipeline::run_study`
        // when the study config requests it.
        dimensioning: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StudyConfig;
    use crate::pipeline::measure;

    #[test]
    fn tiny_study_assembles_full_report() {
        let art = measure(StudyConfig::tiny(3));
        let report = assemble(&art);
        // Every section renders.
        let text = report.render();
        assert!(text.contains("Table 5"));
        assert!(text.contains("Fig 12"));
        assert!(text.contains("Ground-truth scoring"));
        // Meta matches artifacts.
        assert_eq!(report.meta.sessions, art.sessions.len());
        assert!(report.meta.routed_ases > report.meta.eyeball_ases);
        // Table 5 population sanity.
        assert_eq!(report.table5.pbl_total, art.world.pbl.len());
    }

    #[test]
    fn report_is_deterministic() {
        let r1 = assemble(&measure(StudyConfig::tiny(5))).render();
        let r2 = assemble(&measure(StudyConfig::tiny(5))).render();
        assert_eq!(r1, r2);
    }
}
