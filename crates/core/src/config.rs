//! Study configuration and scale presets.

use crate::dimensioning::DimensioningConfig;
use bt_dht::{CrawlConfig, WorldConfig};
use topology::TopologyConfig;

/// Everything the end-to-end study needs.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    pub seed: u64,
    pub topology: TopologyConfig,
    pub dht: WorldConfig,
    pub crawl: CrawlConfig,
    /// P(an AS has any Netalyzr users) — drives Table 5's coverage story.
    pub p_as_netalyzr: f64,
    /// P(a subscriber runs Netalyzr | the AS has users).
    pub p_subscriber_netalyzr: f64,
    /// Sessions per participating subscriber (inclusive range) — Netalyzr
    /// users often run the tool repeatedly.
    pub sessions_per_subscriber: (usize, usize),
    /// Whether sessions run the TTL-driven enumeration (expensive).
    pub run_ttl: bool,
    /// Whether sessions run the STUN test.
    pub run_stun: bool,
    /// Minimum responsive queried peers for an AS to count as covered by
    /// the BitTorrent method.
    pub bt_coverage_min_peers: usize,
    /// Share of DHT peers violating the validate-before-store rule
    /// (1.3% in the paper's calibration, §4.1).
    pub p_dht_violators: f64,
    /// Share of peers that go offline between swarm activity and the
    /// crawl (BitTorrent churn; the paper saw 56% of learned peers
    /// respond to bt_ping).
    pub p_peer_churn: f64,
    /// Crawl passes interleaved with swarm rounds before the measured
    /// crawl (the paper's crawl ran for a week while the DHT lived).
    pub warm_crawl_passes: usize,
    /// Optional operator-side dimensioning sweep appended to the study
    /// (drives `cgn-traffic` workloads through a CGN build-out).
    pub dimensioning: Option<DimensioningConfig>,
}

impl StudyConfig {
    /// Minimal world for unit/integration tests (seconds in debug mode).
    pub fn tiny(seed: u64) -> StudyConfig {
        StudyConfig {
            seed,
            topology: TopologyConfig::tiny(seed),
            dht: WorldConfig {
                bootstrap_rounds: 2,
                maintenance_rounds: 4,
                ..WorldConfig::default()
            },
            crawl: CrawlConfig::default(),
            p_as_netalyzr: 1.0,
            p_subscriber_netalyzr: 0.9,
            sessions_per_subscriber: (1, 2),
            run_ttl: true,
            run_stun: true,
            bt_coverage_min_peers: 2,
            p_dht_violators: 0.013,
            p_peer_churn: 0.20,
            warm_crawl_passes: 2,
            dimensioning: None,
        }
    }

    /// A mid-size world: tens of ASes — integration tests and quick
    /// benchmark baselines.
    pub fn small(seed: u64) -> StudyConfig {
        let mut topology = TopologyConfig::default_with_seed(seed);
        topology.residential_per_rir = [2, 6, 4, 3, 7];
        topology.cellular_per_rir = [1, 2, 2, 1, 2];
        topology.silent_as_ratio = 10;
        topology.subscribers_per_as = (12, 24);
        StudyConfig {
            seed,
            topology,
            dht: WorldConfig {
                bootstrap_rounds: 2,
                maintenance_rounds: 5,
                ..WorldConfig::default()
            },
            crawl: CrawlConfig::default(),
            p_as_netalyzr: 0.65,
            p_subscriber_netalyzr: 0.90,
            sessions_per_subscriber: (1, 2),
            run_ttl: true,
            run_stun: true,
            bt_coverage_min_peers: 3,
            p_dht_violators: 0.013,
            p_peer_churn: 0.20,
            warm_crawl_passes: 2,
            dimensioning: None,
        }
    }

    /// The full study scale (~170 instrumented eyeball ASes). Intended
    /// for release builds (the `repro` binary and benches).
    pub fn default_with_seed(seed: u64) -> StudyConfig {
        StudyConfig {
            seed,
            topology: TopologyConfig::default_with_seed(seed),
            dht: WorldConfig::default(),
            crawl: CrawlConfig::default(),
            p_as_netalyzr: 0.50,
            p_subscriber_netalyzr: 0.90,
            sessions_per_subscriber: (1, 2),
            run_ttl: true,
            run_stun: true,
            bt_coverage_min_peers: 3,
            p_dht_violators: 0.013,
            p_peer_churn: 0.20,
            warm_crawl_passes: 2,
            dimensioning: None,
        }
    }
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig::default_with_seed(0x1AC_2016)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_sanely() {
        let tiny = StudyConfig::tiny(1);
        let small = StudyConfig::small(1);
        let full = StudyConfig::default_with_seed(1);
        assert!(tiny.topology.eyeball_count() < small.topology.eyeball_count());
        assert!(small.topology.eyeball_count() < full.topology.eyeball_count());
        assert!(full.p_dht_violators < 0.05);
    }
}
