//! The soak runner: an always-on operator session over the sharded
//! driver, with machine-checked leak gates.
//!
//! Richter et al. (IMC 2016, §2) report that CGNs are not batch
//! devices: operators run them for months, and the engineering risks
//! are the slow ones — state tables that creep, log volume that
//! outruns its budget, timer backlogs that surface as latency cliffs.
//! A batch [`cgn_traffic::run`] cannot observe any of that; it holds
//! every window and every log in memory and exits. The soak mode
//! holds the opposite contract:
//!
//! * the session advances epoch by epoch through a
//!   [`DriverSession`], **streaming** every closed metrics window out
//!   of the bounded ring (JSONL rows, one [`MetricsWindow`] per line)
//!   instead of accumulating them;
//! * event logs, when enabled, flow through one per-shard
//!   [`cgn_telemetry::RotatingFileSink`] — bounded generations on
//!   disk, bounded buffers in memory;
//! * a live [`OpsServer`] exposes `/metrics` and `/healthz`
//!   throughout, re-published at every closed window;
//! * at exit, [`GATES`](SoakReport::gates) check what a leak-free CGN
//!   must look like: zero arena-chunk growth after warm-up, slab
//!   slots recycled (high-water flat), timer wheel cascading with a
//!   bounded pending backlog, a flat RSS proxy, per-window shard
//!   balance, and a byte-exact scrape against the final merged
//!   snapshot.
//!
//! Determinism carries over from the driver: every field of the
//! report that derives from simulation (counters, digests, gate
//! observables) is bit-identical for every worker-thread count; only
//! the wall-clock fields vary run to run.

use crate::http::{self, OpsServer};
use cgn_metrics::Value;
use cgn_telemetry::RotatingFileSink;
use cgn_trace::TraceConfig;
use cgn_traffic::{DriverConfig, DriverSession, MetricsWindow, SessionHealth, WorkloadMix};
use nat_engine::telemetry::{EventSink, TelemetryMode};
use serde::{Deserialize, Serialize};
use std::io::{BufWriter, Write};
use std::path::PathBuf;

/// Schema tag of [`SoakReport`]; bump on any incompatible change.
pub const SOAK_SCHEMA: &str = "cgn-soak/1";

/// Bytes behind one 2 MiB slab-arena chunk (`cgn_arena_chunks` is a
/// chunk count; the RSS proxy converts it to bytes).
pub const ARENA_CHUNK_BYTES: u64 = 2 * 1024 * 1024;

/// Modeled resident bytes per retained metrics window (a normalized
/// snapshot of every instrument: tens of samples, each a name plus a
/// scalar or small histogram).
const WINDOW_RESIDENT_BYTES: u64 = 8 * 1024;

/// Modeled resident bytes per outstanding driver event-wheel entry.
const EVENT_RESIDENT_BYTES: u64 = 32;

/// Pass/fail thresholds of the exit gates. The defaults encode
/// "flat after warm-up": growth ratios are small multiplicative
/// slacks over the warm-up measurement, not absolute sizes, so one
/// threshold set serves every scale from the smoke test to the 1M
/// soak.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateThresholds {
    /// Arena chunks mapped after the warm-up barrier (chunks are a
    /// high-water mark, so any growth is a recycling failure).
    pub max_arena_chunk_growth: u64,
    /// `slots_final / slots_warm` — slab high-water growth after
    /// warm-up.
    pub max_slot_growth_ratio: f64,
    /// `timers_pending / slots` at exit: stale re-arm entries the
    /// wheel may carry per slot before cascading is judged broken.
    pub max_timers_per_slot: f64,
    /// `rss_proxy_final / rss_proxy_warm` — modeled resident-set
    /// growth after warm-up.
    pub max_rss_growth_ratio: f64,
    /// Worst per-window `max/mean` of per-shard flow starts.
    pub max_window_imbalance: f64,
}

impl Default for GateThresholds {
    fn default() -> GateThresholds {
        GateThresholds {
            max_arena_chunk_growth: 0,
            max_slot_growth_ratio: 1.02,
            max_timers_per_slot: 4.0,
            max_rss_growth_ratio: 1.05,
            max_window_imbalance: 2.0,
        }
    }
}

/// One exit gate's verdict: what was measured, what was allowed, and
/// a human-readable account of the inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateResult {
    pub name: String,
    pub observed: f64,
    pub limit: f64,
    pub passed: bool,
    pub detail: String,
}

impl GateResult {
    fn check(name: &str, observed: f64, limit: f64, detail: String) -> GateResult {
        GateResult {
            name: name.to_string(),
            observed,
            limit,
            passed: observed <= limit,
            detail,
        }
    }
}

/// Aggregate volume of the rotated event logs (present when
/// [`SoakConfig::event_log_stem`] was set).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventLogVolume {
    /// Closed + final generations across all shard sinks.
    pub generations: u64,
    pub records: u64,
    pub bytes: u64,
    /// `bytes × MODELED_COMPRESSION_RATIO`, summed per generation —
    /// the archived footprint an operator would provision for.
    pub compressed_bytes_modeled: u64,
}

/// Everything one soak run needs. Build from a preset
/// ([`SoakConfig::full`], [`SoakConfig::ci`], [`SoakConfig::smoke`])
/// and override fields as needed.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Preset name recorded in the report (`full`/`ci`/`smoke`/…).
    pub preset: String,
    pub subscribers: u32,
    pub shards: u16,
    pub external_ips_per_shard: u16,
    /// Worker threads (`0` = one per core). Report fields derived
    /// from simulation are identical for every value.
    pub threads: usize,
    pub duration_secs: u64,
    pub sample_secs: u64,
    pub sweep_secs: u64,
    /// Metrics aggregation window (also the publish cadence).
    pub window_secs: u64,
    /// Idle-timeout clamp applied to every NAT timeout (the arena
    /// leg's trick): the mapping population must plateau *inside* the
    /// run for "flat after warm-up" to be a meaningful gate. Clamped
    /// further to a quarter of the duration.
    pub timeout_clamp_secs: u64,
    /// Inbound-reply leg intensity (permille of forwarded packets).
    pub inbound_reply_permille: u32,
    pub seed: u64,
    pub mix: WorkloadMix,
    /// Scrape endpoint bind address (`None` disables the server).
    pub listen: Option<String>,
    /// JSONL destination for the streamed window rows.
    pub stats_path: Option<PathBuf>,
    /// Stem for per-shard rotating event logs
    /// (`<stem>.shard<N>.<generation>`); `None` disables event
    /// logging entirely (the zero-cost driver default).
    pub event_log_stem: Option<PathBuf>,
    /// Rotation threshold per generation.
    pub event_log_generation_bytes: u64,
    /// Flow-lifecycle tracing / phase profiling for the session
    /// ([`cgn_traffic::DriverConfig::trace`]). When enabled, phase
    /// percentiles ride the published `/metrics` exposition, the
    /// flight recorder serves on `/trace`, and a failing exit gate
    /// auto-dumps the recorder to
    /// [`trace_dump_path`](SoakConfig::trace_dump_path). `off` (the
    /// default) keeps the
    /// hot path on its untaken-branch cost.
    pub trace: TraceConfig,
    /// Destination for the gate-trip flight-recorder dump
    /// (Chrome-trace JSON). Only written when tracing is enabled and
    /// at least one exit gate fails.
    pub trace_dump_path: Option<PathBuf>,
    pub gates: GateThresholds,
}

impl SoakConfig {
    fn base(preset: &str, mix: WorkloadMix) -> SoakConfig {
        SoakConfig {
            preset: preset.to_string(),
            subscribers: 0,
            shards: 1,
            external_ips_per_shard: 16,
            threads: 0,
            duration_secs: 0,
            sample_secs: 60,
            sweep_secs: 30,
            window_secs: 60,
            timeout_clamp_secs: 60,
            inbound_reply_permille: 250,
            seed: 9,
            mix,
            listen: Some("127.0.0.1:0".to_string()),
            stats_path: None,
            event_log_stem: None,
            event_log_generation_bytes: 8 * 1024 * 1024,
            trace: TraceConfig::off(),
            trace_dump_path: None,
            gates: GateThresholds::default(),
        }
    }

    /// The headline soak: one simulated hour of a million-subscriber
    /// IoT-heavy population across 16 shards.
    pub fn full() -> SoakConfig {
        let mut c = SoakConfig::base("full", WorkloadMix::iot_fleet());
        c.subscribers = 1_000_000;
        c.shards = 16;
        c.duration_secs = 3_600;
        c
    }

    /// CI scale: the same shape at a fifth of the population and a
    /// third of the horizon, small enough for a shared runner.
    pub fn ci() -> SoakConfig {
        let mut c = SoakConfig::base("ci", WorkloadMix::iot_fleet());
        c.subscribers = 200_000;
        c.shards = 8;
        c.duration_secs = 1_200;
        c
    }

    /// Test scale: seconds of wall time, still enough windows past
    /// warm-up for every gate to measure something.
    pub fn smoke() -> SoakConfig {
        let mut c = SoakConfig::base("smoke", WorkloadMix::iot_fleet());
        c.subscribers = 4_000;
        c.shards = 4;
        c.external_ips_per_shard = 8;
        c.duration_secs = 600;
        c.sample_secs = 30;
        c.sweep_secs = 15;
        c.window_secs = 30;
        c
    }

    /// Simulated seconds after which the population is treated as
    /// warmed up (three quarters of the horizon, the arena-leg
    /// convention — every workload class with clamped timeouts sits
    /// at its plateau well before then).
    pub fn warmup_secs(&self) -> u64 {
        (self.duration_secs * 3 / 4).max(self.sample_secs)
    }

    /// Lower this config into the driver configuration it runs.
    pub fn driver_config(&self) -> DriverConfig {
        let mut d = DriverConfig::new(self.mix.clone(), self.seed);
        d.subscribers = self.subscribers;
        d.shards = self.shards;
        d.external_ips_per_shard = self.external_ips_per_shard;
        d.threads = self.threads;
        d.duration_secs = self.duration_secs;
        d.sample_secs = self.sample_secs;
        d.sweep_secs = self.sweep_secs;
        d.metrics_window_secs = Some(self.window_secs);
        d.inbound_reply_permille = self.inbound_reply_permille;
        d.trace = self.trace;
        // Event logs (if any) go through externally-installed rotating
        // sinks; the driver's own in-memory logging stays off.
        d.telemetry = TelemetryMode::Off;
        let clamp = self.timeout_clamp_secs.min(self.duration_secs / 4).max(1);
        let timeout = netcore::SimDuration::from_secs(clamp);
        d.nat.udp_timeout = timeout;
        d.nat.tcp_established_timeout = timeout;
        d.nat.tcp_transitory_timeout = timeout;
        d
    }
}

/// The machine-readable outcome of one soak run (`BENCH_soak.json`).
/// Everything except the `wall_*` fields and `scrapes_served` is a
/// deterministic function of [`SoakConfig`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoakReport {
    pub schema: String,
    pub preset: String,
    pub mix_name: String,
    pub subscribers: u32,
    pub shards: u16,
    pub duration_secs: u64,
    pub window_secs: u64,
    pub warmup_secs: u64,
    pub seed: u64,
    // Simulation totals.
    pub flows_started: u64,
    pub flows_blocked: u64,
    pub flows_completed: u64,
    pub packets_sent: u64,
    pub mappings_created: u64,
    pub mappings_expired: u64,
    // Streaming behaviour.
    /// Window rows streamed out of the bounded ring (drained during
    /// the run plus the retained tail at exit).
    pub windows_streamed: u64,
    /// FNV-1a over the streamed rows in order — the cross-thread
    /// determinism fingerprint of the whole stats stream.
    pub window_stream_digest: u64,
    /// Peak windows resident in the ring (≤ 2 when draining per
    /// epoch: the closing window plus the open one).
    pub max_windows_retained: u64,
    // Gate observables.
    pub chunks_warm: u64,
    pub chunks_final: u64,
    pub slots_warm: u64,
    pub slots_final: u64,
    pub free_slots_final: u64,
    pub rss_proxy_warm_bytes: u64,
    pub rss_proxy_final_bytes: u64,
    pub timer_cascades: u64,
    pub timers_pending_final: u64,
    pub worst_window_imbalance: f64,
    // Scrape endpoint.
    /// Requests the live endpoint answered during the run (0 when the
    /// server was disabled).
    pub scrapes_served: u64,
    /// The final `/metrics` scrape matched the end-of-run merged
    /// snapshot series-for-series (vacuously false when disabled).
    pub scrape_verified: bool,
    /// Series confirmed by that scrape.
    pub scrape_series_verified: u64,
    pub event_log: Option<EventLogVolume>,
    /// Where the flight recorder was dumped because a gate tripped
    /// (`None`: gates passed, tracing off, or no path configured).
    pub trace_dump_written: Option<String>,
    pub gates: Vec<GateResult>,
    pub all_gates_passed: bool,
    // Wall-clock (excluded from determinism comparisons).
    pub wall_secs: f64,
    /// Simulated seconds per wall second.
    pub sim_rate: f64,
}

/// FNV-1a fold of one `Debug`-rendered value into a running hash —
/// the same fingerprint family as `RunSummary::digest`.
fn fnv_fold(hash: u64, text: &str) -> u64 {
    let mut h = hash;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn rss_proxy(chunks: u64, health: &SessionHealth) -> u64 {
    chunks * ARENA_CHUNK_BYTES
        + health.windows_retained as u64 * WINDOW_RESIDENT_BYTES
        + health.event_wheel_depth * EVENT_RESIDENT_BYTES
}

/// Run one soak session to completion. Streams windows as they
/// close, keeps the scrape endpoint live throughout, and evaluates
/// every exit gate; I/O failures (stats file, event-log generations)
/// are errors, gate failures are reported in the returned
/// [`SoakReport`], not errors.
pub fn run(config: &SoakConfig) -> std::io::Result<SoakReport> {
    let started = std::time::Instant::now();
    let warmup_secs = config.warmup_secs();
    let mut session = DriverSession::new(&config.driver_config());

    let events_installed = match &config.event_log_stem {
        Some(stem) => {
            let sinks: Vec<Box<dyn EventSink>> = (0..config.shards)
                .map(|shard| {
                    let mut path = stem.clone().into_os_string();
                    path.push(format!(".shard{shard}"));
                    Box::new(RotatingFileSink::create(
                        TelemetryMode::PerConnection,
                        config.event_log_generation_bytes,
                        PathBuf::from(path),
                    )) as Box<dyn EventSink>
                })
                .collect();
            session.install_event_sinks(sinks);
            true
        }
        None => false,
    };

    let server = match &config.listen {
        Some(addr) => Some(OpsServer::bind(addr)?),
        None => None,
    };
    let mut stats_out = match &config.stats_path {
        Some(path) => Some(BufWriter::new(std::fs::File::create(path)?)),
        None => None,
    };

    let mut stream_digest = FNV_OFFSET;
    let mut windows_streamed = 0u64;
    let mut max_windows_retained = 0u64;
    let mut worst_window_imbalance = 0.0f64;
    let mut chunks_latest = 0u64;
    // Warm-up measurements: taken at the first barrier at or past the
    // warm-up boundary.
    let mut warm: Option<(u64, u64, u64)> = None; // (chunks, slots, rss_proxy)
    let mut midrun_scrape_ok = false;

    let emit_row = |row: &MetricsWindow,
                    out: &mut Option<BufWriter<std::fs::File>>|
     -> std::io::Result<()> {
        if let Some(w) = out {
            let line = serde_json::to_string(row)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            w.write_all(line.as_bytes())?;
            w.write_all(b"\n")?;
        }
        Ok(())
    };

    while let Some(now) = session.step() {
        let closed = session.drain_closed_windows();
        if !closed.is_empty() {
            let health = session.health();
            max_windows_retained =
                max_windows_retained.max(health.windows_retained as u64 + closed.len() as u64);
            for win in &closed {
                let row = session.metrics_row(win);
                stream_digest = fnv_fold(stream_digest, &format!("{row:?}"));
                worst_window_imbalance = worst_window_imbalance.max(row.shard_flow_imbalance);
                chunks_latest = row.arena_chunks;
                windows_streamed += 1;
                emit_row(&row, &mut stats_out)?;
            }
            if let (Some(server), Some(snap)) = (&server, session.latest_snapshot()) {
                // Wall-clock phase percentiles ride the published
                // exposition only — the windowed stream and its digest
                // stay deterministic.
                match session.phase_profile() {
                    Some(profile) => {
                        let mut published = snap.clone();
                        profile.render_into(&mut published);
                        server.publish(&published, &health);
                    }
                    None => server.publish(snap, &health),
                }
                if let Some(dump) = session.trace_dump() {
                    server.publish_trace(cgn_trace::chrome_trace_json(&dump));
                }
            }
        }
        if warm.is_none() && now >= warmup_secs {
            let health = session.health();
            let chunks = session
                .latest_snapshot()
                .map(|s| s.scalar("cgn_arena_chunks"))
                .unwrap_or(chunks_latest);
            warm = Some((chunks, health.store.slots, rss_proxy(chunks, &health)));
            // Liveness probe while the run is hot: the endpoint must
            // serve parseable text mid-run, not just at exit.
            if let Some(server) = &server {
                if let Ok(body) = http::scrape(server.local_addr(), "/metrics") {
                    midrun_scrape_ok = !http::parse_scalars(&body).is_empty();
                }
            }
        }
    }

    let final_health = session.health();
    let mut final_snapshot = session.latest_snapshot().cloned().unwrap_or_default();
    let chunks_final = final_snapshot.scalar("cgn_arena_chunks");
    let rss_final = rss_proxy(chunks_final, &final_health);
    let (chunks_warm, slots_warm, rss_warm) =
        warm.unwrap_or((chunks_final, final_health.store.slots, rss_final));

    // Recover the rotating sinks before `finish` tears the shards
    // down (the driver only recovers sinks it installed itself). Done
    // before the final scrape so the log-rotation counter rides the
    // last exposition; the sinks' live throughput was already scraped
    // all run long as `cgn_sink_records_total`/`cgn_sink_bytes_total`.
    let event_log = if events_installed {
        let mut volume = EventLogVolume {
            generations: 0,
            records: 0,
            bytes: 0,
            compressed_bytes_modeled: 0,
        };
        let mut rotations = 0u64;
        for sink in session.take_event_sinks().into_iter().flatten() {
            let sink = sink
                .into_any()
                .downcast::<RotatingFileSink>()
                .expect("soak installs rotating file sinks");
            rotations += sink.rotations();
            for g in sink.finish()? {
                volume.generations += 1;
                volume.records += g.records;
                volume.bytes += g.bytes;
                volume.compressed_bytes_modeled += g.compressed_bytes_modeled();
            }
        }
        final_snapshot.push("cgn_log_rotations_total", Value::Counter(rotations));
        final_snapshot.normalize();
        Some(volume)
    } else {
        None
    };

    // The final scrape happens while the session is still live — the
    // endpoint is serving, the run just has no epochs left — and is
    // checked series-for-series against the merged snapshot.
    let (scrape_verified, scrape_series_verified) = match &server {
        Some(server) => {
            // Same overlay at exit: extra phase lines never break the
            // snapshot-subset check in `verify_scrape`.
            match session.phase_profile() {
                Some(profile) => {
                    let mut published = final_snapshot.clone();
                    profile.render_into(&mut published);
                    server.publish(&published, &final_health);
                }
                None => server.publish(&final_snapshot, &final_health),
            }
            match http::scrape(server.local_addr(), "/metrics") {
                Ok(body) => match http::verify_scrape(&body, &final_snapshot) {
                    Ok(n) => (midrun_scrape_ok, n),
                    Err(_) => (false, 0),
                },
                Err(_) => (false, 0),
            }
        }
        None => (false, 0),
    };

    let trace_dump = session.trace_dump();
    let (summary, _logs) = session.finish();

    // Stream the retained tail (the windows still in the ring at
    // exit, ending with the open final window) so the JSONL file and
    // the digest cover the run end to end.
    if let Some(metrics) = &summary.metrics {
        for row in &metrics.windows {
            stream_digest = fnv_fold(stream_digest, &format!("{row:?}"));
            worst_window_imbalance = worst_window_imbalance.max(row.shard_flow_imbalance);
            windows_streamed += 1;
            emit_row(row, &mut stats_out)?;
        }
    }
    if let Some(mut w) = stats_out {
        w.flush()?;
    }

    let timer_cascades = final_snapshot.scalar("cgn_timer_cascades_total");
    let slots_final = final_health.store.slots;
    let ratio = |num: u64, den: u64| num as f64 / den.max(1) as f64;
    let t = &config.gates;
    let mut gates = vec![
        GateResult::check(
            "arena-chunks-flat",
            chunks_final.saturating_sub(chunks_warm) as f64,
            t.max_arena_chunk_growth as f64,
            format!("chunks {chunks_warm} at warm-up ({warmup_secs}s) -> {chunks_final} at exit"),
        ),
        GateResult::check(
            "slab-slots-recycled",
            ratio(slots_final, slots_warm),
            t.max_slot_growth_ratio,
            format!(
                "slot high-water {slots_warm} -> {slots_final}, {} on the free-list at exit",
                final_health.store.free
            ),
        ),
        {
            let mut g = GateResult::check(
                "timer-wheel-bounded",
                ratio(final_health.store.timers, slots_final),
                t.max_timers_per_slot,
                format!(
                    "{} timers pending over {slots_final} slots, {timer_cascades} cascades",
                    final_health.store.timers
                ),
            );
            // A wheel that never cascaded never aged anything out;
            // bounded-pending alone would pass vacuously.
            g.passed = g.passed && timer_cascades > 0;
            g
        },
        GateResult::check(
            "rss-proxy-flat",
            ratio(rss_final, rss_warm),
            t.max_rss_growth_ratio,
            format!("modeled resident bytes {rss_warm} at warm-up -> {rss_final} at exit"),
        ),
        GateResult::check(
            "shard-balance",
            worst_window_imbalance,
            t.max_window_imbalance,
            format!(
                "worst per-window max/mean of shard flow starts across {windows_streamed} windows"
            ),
        ),
    ];
    if config.listen.is_some() {
        gates.push(GateResult {
            name: "scrape-verified".to_string(),
            observed: if scrape_verified { 1.0 } else { 0.0 },
            limit: 1.0,
            passed: scrape_verified,
            detail: format!(
                "{scrape_series_verified} series matched the final merged snapshot \
                 (mid-run liveness probe {})",
                if midrun_scrape_ok { "ok" } else { "failed" }
            ),
        });
    }
    let all_gates_passed = gates.iter().all(|g| g.passed);

    // Flight-recorder post-mortem: a tripped gate dumps the sampled
    // flow history (Chrome-trace JSON) for offline triage.
    let trace_dump_written = match (&trace_dump, &config.trace_dump_path, all_gates_passed) {
        (Some(dump), Some(path), false) => {
            std::fs::write(path, cgn_trace::chrome_trace_json(dump))?;
            Some(path.display().to_string())
        }
        _ => None,
    };

    let scrapes_served = server.map(OpsServer::shutdown).unwrap_or(0);
    let wall_secs = started.elapsed().as_secs_f64();
    Ok(SoakReport {
        schema: SOAK_SCHEMA.to_string(),
        preset: config.preset.clone(),
        mix_name: summary.mix_name.clone(),
        subscribers: config.subscribers,
        shards: config.shards,
        duration_secs: config.duration_secs,
        window_secs: config.window_secs,
        warmup_secs,
        seed: config.seed,
        flows_started: summary.flows_started,
        flows_blocked: summary.flows_blocked,
        flows_completed: summary.flows_completed,
        packets_sent: summary.packets_sent,
        mappings_created: summary.stats.mappings_created,
        mappings_expired: summary.stats.mappings_expired,
        windows_streamed,
        window_stream_digest: stream_digest,
        max_windows_retained,
        chunks_warm,
        chunks_final,
        slots_warm,
        slots_final,
        free_slots_final: final_health.store.free,
        rss_proxy_warm_bytes: rss_warm,
        rss_proxy_final_bytes: rss_final,
        timer_cascades,
        timers_pending_final: final_health.store.timers,
        worst_window_imbalance,
        scrapes_served,
        scrape_verified,
        scrape_series_verified,
        event_log,
        trace_dump_written,
        gates,
        all_gates_passed,
        wall_secs,
        sim_rate: config.duration_secs as f64 / wall_secs.max(1e-9),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(threads: usize) -> SoakConfig {
        let mut c = SoakConfig::smoke();
        c.subscribers = 1_500;
        c.shards = 4;
        c.duration_secs = 360;
        c.threads = threads;
        c.listen = None;
        c
    }

    #[test]
    fn window_stream_is_thread_count_invariant() {
        let reports: Vec<SoakReport> = [1usize, 2, 4]
            .iter()
            .map(|&threads| run(&tiny(threads)).expect("soak runs"))
            .collect();
        let reference = &reports[0];
        assert!(reference.windows_streamed > 0);
        for r in &reports[1..] {
            assert_eq!(r.window_stream_digest, reference.window_stream_digest);
            assert_eq!(r.flows_started, reference.flows_started);
            assert_eq!(r.packets_sent, reference.packets_sent);
            assert_eq!(r.windows_streamed, reference.windows_streamed);
            assert_eq!(r.chunks_final, reference.chunks_final);
            assert_eq!(r.slots_final, reference.slots_final);
            assert_eq!(r.timers_pending_final, reference.timers_pending_final);
            assert_eq!(r.worst_window_imbalance, reference.worst_window_imbalance);
        }
    }

    #[test]
    fn smoke_soak_passes_every_gate_and_streams_bounded() {
        let dir = std::env::temp_dir().join(format!("cgn-opsd-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let mut config = tiny(2);
        config.listen = Some("127.0.0.1:0".to_string());
        config.stats_path = Some(dir.join("windows.jsonl"));
        config.event_log_stem = Some(dir.join("events"));
        config.event_log_generation_bytes = 2 * 1024;

        let report = run(&config).expect("soak runs");
        assert_eq!(report.schema, SOAK_SCHEMA);
        assert!(report.all_gates_passed, "gates failed: {:#?}", report.gates);
        assert!(report.scrape_verified);
        assert!(report.scrape_series_verified > 0);
        assert!(report.scrapes_served >= 2, "mid-run + final scrape");
        assert!(
            report.max_windows_retained <= 2,
            "draining per epoch keeps the ring at closing + open window"
        );

        // The JSONL stream covers every window exactly once and
        // parses back into rows.
        let text = std::fs::read_to_string(dir.join("windows.jsonl")).expect("stats stream");
        let rows: Vec<MetricsWindow> = text
            .lines()
            .map(|l| serde_json::from_str(l).expect("row parses"))
            .collect();
        assert_eq!(rows.len() as u64, report.windows_streamed);
        assert!(rows.windows(2).all(|w| w[0].start_secs < w[1].start_secs));

        // Event logs rotated into multiple on-disk generations whose
        // accounting matches the report.
        let volume = report.event_log.expect("event volume present");
        assert!(
            volume.generations > config.shards as u64,
            "rotation happened"
        );
        assert!(volume.records > 0 && volume.bytes > 0);
        assert!(volume.compressed_bytes_modeled < volume.bytes);
        let on_disk: u64 = std::fs::read_dir(&dir)
            .expect("dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with("events.shard"))
            .map(|e| e.metadata().map(|m| m.len()).unwrap_or(0))
            .sum();
        assert_eq!(on_disk, volume.bytes, "generation files hold every byte");

        std::fs::remove_dir_all(&dir).ok();
    }

    /// Tracing on: phase percentiles ride the live exposition, the
    /// flight recorder serves on `/trace`, and every deterministic
    /// report field matches the tracing-off run bit for bit.
    #[test]
    fn traced_soak_publishes_phases_and_stays_deterministic() {
        let off = run(&tiny(2)).expect("soak runs");

        let mut config = tiny(2);
        config.trace = TraceConfig::sampled(16);
        config.listen = Some("127.0.0.1:0".to_string());
        let report = run(&config).expect("soak runs");
        assert!(report.all_gates_passed, "gates: {:#?}", report.gates);
        assert!(
            report.scrape_verified,
            "published exposition (with phase overlay) still verifies \
             series-for-series against the deterministic snapshot"
        );
        assert_eq!(report.window_stream_digest, off.window_stream_digest);
        assert_eq!(report.flows_started, off.flows_started);
        assert_eq!(report.packets_sent, off.packets_sent);
        assert_eq!(report.trace_dump_written, None, "no gate tripped");
    }

    /// A tripped gate dumps the flight recorder for post-mortem.
    #[test]
    fn gate_trip_dumps_flight_recorder() {
        let dir = std::env::temp_dir().join(format!("cgn-opsd-trip-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let mut config = tiny(1);
        config.trace = TraceConfig::sampled(8);
        config.trace_dump_path = Some(dir.join("postmortem.json"));
        // An impossible balance bound guarantees a gate failure.
        config.gates.max_window_imbalance = 0.0;

        let report = run(&config).expect("soak runs");
        assert!(!report.all_gates_passed, "gate must trip");
        let path = report.trace_dump_written.as_ref().expect("dump written");
        let text = std::fs::read_to_string(path).expect("dump readable");
        let v: serde_json::Value = serde_json::from_str(&text).expect("chrome JSON parses");
        drop(v);
        assert!(text.contains(cgn_trace::CHROME_SCHEMA));
        assert!(
            text.contains("\"ph\":\"i\""),
            "sampled spans present in the post-mortem"
        );

        // Tracing off (or no path): no dump even on failure.
        let mut config = tiny(1);
        config.gates.max_window_imbalance = 0.0;
        let report = run(&config).expect("soak runs");
        assert!(!report.all_gates_passed);
        assert_eq!(report.trace_dump_written, None);

        std::fs::remove_dir_all(&dir).ok();
    }
}
