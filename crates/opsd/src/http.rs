//! The operator scrape endpoint: a tiny HTTP/1.1 server over
//! [`std::net::TcpListener`] — no async runtime, no HTTP crate, one
//! background thread.
//!
//! The daemon's simulation loop is single-owner (the
//! [`cgn_traffic::DriverSession`] cannot be shared), so the server
//! never touches live session state: the loop **publishes** an
//! immutable rendering — Prometheus text for `/metrics`, JSON for
//! `/healthz` — after each sample barrier, and the accept thread
//! serves whatever was published last. A scrape therefore observes
//! the most recent *closed* barrier, which is exactly the freshness a
//! pull-based collector gets from a real exporter.
//!
//! Routes:
//!
//! * `GET /metrics` — [`cgn_metrics::expo::render`] of the latest
//!   merged cumulative snapshot (text format 0.0.4);
//! * `GET /healthz` — the latest [`SessionHealth`] as JSON — simulated
//!   progress plus slab/arena/timer-wheel occupancy, the liveness
//!   cross-section the soak gates are built on — with the server's own
//!   `scrapes_served`/`scrape_errors` counters spliced in;
//! * `GET /trace` — the latest published flight-recorder dump as
//!   Chrome-trace JSON ([`cgn_trace::chrome_trace_json`]); an empty
//!   dump until [`publish_trace`](OpsServer::publish_trace) is called;
//! * anything else — `404`.
//!
//! [`scrape`] is the matching one-shot client, and
//! [`verify_scrape`] closes the loop: it parses a scraped exposition
//! body back into `(series, value)` pairs and checks every
//! non-histogram sample (and every histogram's `_count`) against the
//! snapshot the server was fed — the machine check behind the soak
//! report's `scrape_verified` flag.

use cgn_metrics::{expo, Snapshot, Value};
use cgn_traffic::SessionHealth;
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// The last-published rendering of the session, served verbatim.
struct Published {
    metrics_text: String,
    health_json: String,
    trace_json: String,
}

/// Live scrape endpoint for one soak session. Bind, then call
/// [`publish`](OpsServer::publish) after every sample barrier;
/// dropping the server (or [`shutdown`](OpsServer::shutdown)) stops
/// the accept thread.
pub struct OpsServer {
    addr: SocketAddr,
    published: Arc<Mutex<Published>>,
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
    errors: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl OpsServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// start the accept thread. Before the first
    /// [`publish`](OpsServer::publish), `/metrics` serves an empty
    /// exposition and `/healthz` serves `{}`.
    pub fn bind(addr: &str) -> std::io::Result<OpsServer> {
        let listener = TcpListener::bind(addr)?;
        // Non-blocking accept so the thread can notice the stop flag
        // without needing a wake-up connection.
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let published = Arc::new(Mutex::new(Published {
            metrics_text: String::new(),
            health_json: "{}".to_string(),
            trace_json: cgn_trace::chrome_trace_json(&cgn_trace::TraceDump::default()),
        }));
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let errors = Arc::new(AtomicU64::new(0));
        let handle = {
            let published = Arc::clone(&published);
            let stop = Arc::clone(&stop);
            let served = Arc::clone(&served);
            let errors = Arc::clone(&errors);
            std::thread::spawn(move || accept_loop(listener, &published, &stop, &served, &errors))
        };
        Ok(OpsServer {
            addr,
            published,
            stop,
            served,
            errors,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests answered so far (any route, including 404s).
    pub fn scrapes_served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Requests that failed mid-answer (short reads, broken pipes on
    /// the response write) — the counter `/healthz` surfaces as
    /// `scrape_errors`.
    pub fn scrape_errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Swap in a fresh `/trace` body (Chrome-trace JSON, typically
    /// [`cgn_trace::chrome_trace_json`] of the session's latest
    /// [`cgn_traffic::DriverSession::trace_dump`]).
    pub fn publish_trace(&self, trace_json: String) {
        self.published.lock().expect("publish lock").trace_json = trace_json;
    }

    /// Swap in a fresh rendering of the session: `snapshot` becomes
    /// the `/metrics` exposition, `health` the `/healthz` body.
    pub fn publish(&self, snapshot: &Snapshot, health: &SessionHealth) {
        let metrics_text = expo::render(snapshot);
        let health_json = serde_json::to_string(health).unwrap_or_else(|_| "{}".to_string());
        let mut p = self.published.lock().expect("publish lock");
        p.metrics_text = metrics_text;
        p.health_json = health_json;
    }

    /// Stop the accept thread and return the total requests served.
    pub fn shutdown(mut self) -> u64 {
        self.stop_and_join();
        self.served.load(Ordering::Relaxed)
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for OpsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: TcpListener,
    published: &Mutex<Published>,
    stop: &AtomicBool,
    served: &AtomicU64,
    errors: &AtomicU64,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                if answer(stream, published, served, errors).is_ok() {
                    served.fetch_add(1, Ordering::Relaxed);
                } else {
                    errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Read one request head, route on the path, write one response.
/// `Connection: close` on everything — a scrape is one round trip.
fn answer(
    mut stream: TcpStream,
    published: &Mutex<Published>,
    served: &AtomicU64,
    errors: &AtomicU64,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") && head.len() < 8192 {
        match stream.read(&mut byte)? {
            0 => break,
            _ => head.push(byte[0]),
        }
    }
    let request_line = std::str::from_utf8(&head)
        .unwrap_or("")
        .lines()
        .next()
        .unwrap_or("");
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    let (status, content_type, body) = match path {
        "/metrics" => {
            let p = published.lock().expect("serve lock");
            (
                "200 OK",
                "text/plain; version=0.0.4",
                p.metrics_text.clone(),
            )
        }
        "/healthz" => {
            let p = published.lock().expect("serve lock");
            let body = splice_server_counters(
                &p.health_json,
                served.load(Ordering::Relaxed),
                errors.load(Ordering::Relaxed),
            );
            ("200 OK", "application/json", body)
        }
        "/trace" => {
            let p = published.lock().expect("serve lock");
            ("200 OK", "application/json", p.trace_json.clone())
        }
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Splice the server's own request counters into a published
/// `/healthz` JSON object: downstream parsers that deserialize the
/// body as [`SessionHealth`] ignore the extra keys, while operators
/// (and the round-trip test) read `scrapes_served`/`scrape_errors`
/// alongside the session fields.
fn splice_server_counters(health_json: &str, served: u64, errors: u64) -> String {
    let trimmed = health_json.trim_end();
    match trimmed.strip_suffix('}') {
        Some(head) => {
            let comma = if head.trim_end().ends_with('{') {
                ""
            } else {
                ","
            };
            format!("{head}{comma}\"scrapes_served\":{served},\"scrape_errors\":{errors}}}")
        }
        None => trimmed.to_string(),
    }
}

/// One-shot scrape client: `GET {path}` against `addr`, returning the
/// response body. Non-200 statuses come back as
/// [`ErrorKind::InvalidData`] errors carrying the status line.
pub fn scrape(addr: impl ToSocketAddrs, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: cgn-opsd\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(ErrorKind::InvalidData, "response without header terminator")
    })?;
    let status_line = head.lines().next().unwrap_or("");
    if !status_line.contains(" 200 ") {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("non-200 scrape: {status_line}"),
        ));
    }
    Ok(body.to_string())
}

/// Parse a Prometheus text body into `(series name incl. labels,
/// value)` pairs, skipping comments and blank lines. Values in this
/// stack are always `u64` renderings ([`Value::as_u64`]); lines that
/// don't parse as such are skipped rather than fatal, so the map is
/// usable on any exposition this repo produces.
pub fn parse_scalars(body: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((name, value)) = line.rsplit_once(' ') {
            if let Ok(v) = value.parse::<u64>() {
                out.insert(name.to_string(), v);
            }
        }
    }
    out
}

/// Check a scraped `/metrics` body against the snapshot the server
/// was fed: every scalar sample must appear with its exact value, and
/// every histogram must expose a matching `_count`. Returns the
/// number of series verified, or the first discrepancy.
pub fn verify_scrape(body: &str, snapshot: &Snapshot) -> Result<u64, String> {
    let parsed = parse_scalars(body);
    let mut verified = 0u64;
    for sample in &snapshot.samples {
        let (expected_name, expected) = match &sample.value {
            Value::Histogram(h) => {
                // `fam{l}` renders its count as `fam_count{l}`.
                let name = match sample.name.split_once('{') {
                    Some((family, labels)) => format!("{family}_count{{{labels}"),
                    None => format!("{}_count", sample.name),
                };
                (name, h.count)
            }
            v => (sample.name.clone(), v.as_u64()),
        };
        match parsed.get(&expected_name) {
            Some(&got) if got == expected => verified += 1,
            Some(&got) => {
                return Err(format!(
                    "series {expected_name}: scraped {got}, snapshot has {expected}"
                ))
            }
            None => return Err(format!("series {expected_name} missing from scrape")),
        }
    }
    Ok(verified)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nat_engine::StoreOccupancy;

    fn sample_state() -> (Snapshot, SessionHealth) {
        let mut snap = Snapshot::default();
        snap.push("cgn_mappings_live", Value::Gauge(42));
        snap.push("cgn_flows_started_total", Value::Counter(1234));
        snap.push(
            "cgn_flows_rejected_total{reason=\"port-exhausted\"}",
            Value::Counter(7),
        );
        snap.normalize();
        let health = SessionHealth {
            now_secs: 120,
            horizon_secs: 600,
            flows_started: 1234,
            flows_blocked: 7,
            flows_completed: 1100,
            packets_sent: 5000,
            event_wheel_depth: 17,
            store: StoreOccupancy::default(),
            windows_retained: 2,
            windows_evicted: 3,
        };
        (snap, health)
    }

    #[test]
    fn scrape_round_trips_published_state() {
        let server = OpsServer::bind("127.0.0.1:0").expect("bind");
        let (snap, health) = sample_state();
        server.publish(&snap, &health);

        let body = scrape(server.local_addr(), "/metrics").expect("scrape /metrics");
        assert!(body.contains("# TYPE cgn_mappings_live gauge"), "{body}");
        assert_eq!(verify_scrape(&body, &snap), Ok(3), "{body}");

        let health_body = scrape(server.local_addr(), "/healthz").expect("scrape /healthz");
        let parsed: SessionHealth = serde_json::from_str(&health_body).expect("health parses");
        assert_eq!(parsed, health);
        // The server splices its own counters into the same object;
        // deserializing as SessionHealth above proved extra keys are
        // harmless.
        assert!(
            health_body.contains("\"windows_evicted\":3"),
            "{health_body}"
        );
        assert!(health_body.contains("\"scrapes_served\":"), "{health_body}");
        assert!(health_body.contains("\"scrape_errors\":0"), "{health_body}");

        let err = scrape(server.local_addr(), "/nope").expect_err("404 is an error");
        assert_eq!(err.kind(), ErrorKind::InvalidData);

        assert_eq!(server.shutdown(), 3, "three requests served");
    }

    #[test]
    fn trace_endpoint_serves_published_chrome_json() {
        let server = OpsServer::bind("127.0.0.1:0").expect("bind");
        // Before any publish: an empty, parseable dump.
        let body = scrape(server.local_addr(), "/trace").expect("scrape /trace");
        let v: serde_json::Value = serde_json::from_str(&body).expect("empty dump parses");
        drop(v);

        let mut tracer = cgn_trace::ShardTracer::new(0, &cgn_trace::TraceConfig::sampled(1));
        tracer.on_admit(
            3,
            cgn_trace::FlowKey {
                udp: true,
                internal_ip: std::net::Ipv4Addr::new(100, 64, 0, 1),
                internal_port: 40_000,
                external_ip: std::net::Ipv4Addr::new(198, 18, 0, 1),
                external_port: 1024,
            },
            10,
            true,
        );
        tracer.on_expire(3, 500);
        let dump = cgn_trace::TraceDump::from_shards(
            [(
                tracer.events().copied().collect(),
                tracer.evicted(),
                tracer.sampled_flows(),
            )],
            1,
        );
        server.publish_trace(cgn_trace::chrome_trace_json(&dump));
        let body = scrape(server.local_addr(), "/trace").expect("scrape /trace");
        assert!(body.contains("\"ph\":\"X\""), "lifetime bar served: {body}");
        assert!(body.contains(cgn_trace::CHROME_SCHEMA), "{body}");
        let _: serde_json::Value = serde_json::from_str(&body).expect("published dump parses");
    }

    #[test]
    fn broken_requests_count_as_scrape_errors() {
        let server = OpsServer::bind("127.0.0.1:0").expect("bind");
        let (snap, health) = sample_state();
        server.publish(&snap, &health);
        assert_eq!(server.scrape_errors(), 0);

        // A client that connects and hangs up without a request: the
        // answer path hits EOF/EPIPE and the error counter moves.
        drop(TcpStream::connect(server.local_addr()).expect("connect"));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.scrape_errors() + server.scrapes_served() == 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }

        // The error (or, if the dropped connection still answered, the
        // served counter) surfaces in the next /healthz body.
        let errors = server.scrape_errors();
        let body = scrape(server.local_addr(), "/healthz").expect("scrape");
        assert!(
            body.contains(&format!("\"scrape_errors\":{errors}")),
            "healthz surfaces the live counter: {body}"
        );
    }

    #[test]
    fn verify_scrape_reports_discrepancies() {
        let (snap, _) = sample_state();
        let body = expo::render(&snap);
        assert_eq!(verify_scrape(&body, &snap), Ok(3));

        let tampered = body.replace("cgn_mappings_live 42", "cgn_mappings_live 41");
        let err = verify_scrape(&tampered, &snap).expect_err("tampered value detected");
        assert!(err.contains("cgn_mappings_live"), "{err}");

        let truncated = body.replace("cgn_flows_started_total 1234\n", "");
        let err = verify_scrape(&truncated, &snap).expect_err("missing series detected");
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn republishing_replaces_the_exposition() {
        let server = OpsServer::bind("127.0.0.1:0").expect("bind");
        let (mut snap, health) = sample_state();
        server.publish(&snap, &health);
        snap.push("cgn_flows_started_total", Value::Counter(1));
        snap.normalize();
        server.publish(&snap, &health);
        let body = scrape(server.local_addr(), "/metrics").expect("scrape");
        assert!(body.contains("cgn_flows_started_total 1235"), "{body}");
    }
}
