//! # cgn-opsd — the always-on CGN operator daemon
//!
//! Everything else in this repo answers Richter et al.'s questions
//! in batch: run a configuration, collect a summary, exit. Operators
//! don't get to exit — §2's survey shows CGN deployment decisions
//! are dominated by *operational* costs (state provisioning, logging
//! budgets, abuse-response latency) that only show up when the box
//! runs continuously. This crate is the continuous-operation shape
//! of the same engine:
//!
//! * [`soak`] — the soak runner: a [`cgn_traffic::DriverSession`]
//!   advanced epoch by epoch for hours of simulated time at
//!   million-subscriber scale, with **bounded memory** (closed
//!   metrics windows stream out of the driver's ring as JSONL; event
//!   logs rotate through bounded on-disk generations) and
//!   machine-checked **leak gates** at exit — flat arena, recycled
//!   slab slots, cascading timer wheel, flat RSS proxy, shard
//!   balance;
//! * [`http`] — the live scrape endpoint over
//!   [`std::net::TcpListener`]: `/metrics` (Prometheus text 0.0.4
//!   via [`cgn_metrics::expo`]) and `/healthz` (the session's
//!   liveness cross-section as JSON), published at every closed
//!   window and verified series-for-series against the final merged
//!   snapshot before the report is written.
//!
//! The determinism contract survives daemonisation: every
//! simulation-derived field of a [`SoakReport`] — counters, gate
//! observables, the digest of the whole window stream — is
//! bit-identical for every worker-thread count; only wall-clock
//! fields vary.

pub mod http;
pub mod soak;

pub use http::{parse_scalars, scrape, verify_scrape, OpsServer};
pub use soak::{
    run as run_soak, EventLogVolume, GateResult, GateThresholds, SoakConfig, SoakReport,
    ARENA_CHUNK_BYTES, SOAK_SCHEMA,
};
