//! Device and CPE behaviour models.

use nat_engine::{FilteringBehavior, MappingBehavior, NatConfig, Pooling, PortAllocation};
use netcore::{Prefix, SimDuration};
use rand::rngs::StdRng;
use rand::Rng;

/// Client operating systems and their ephemeral-port behaviour
/// (Fig. 8a's "OS ephemeral ports" histogram is the mixture of these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OsKind {
    Linux,
    Windows,
    MacOs,
    Android,
}

impl OsKind {
    /// Draw an OS for a subscriber device (cellular devices are Android-
    /// heavy; desktop mix otherwise).
    pub fn draw(rng: &mut StdRng, cellular: bool) -> OsKind {
        let x: f64 = rng.gen();
        if cellular {
            if x < 0.85 {
                OsKind::Android
            } else {
                OsKind::MacOs
            }
        } else if x < 0.55 {
            OsKind::Windows
        } else if x < 0.80 {
            OsKind::MacOs
        } else {
            OsKind::Linux
        }
    }

    /// The OS ephemeral port range and selection style.
    pub fn port_policy(self) -> (u16, u16, bool) {
        match self {
            // (lo, hi, sequential)
            OsKind::Linux | OsKind::Android => (32_768, 60_999, true),
            OsKind::Windows => (49_152, 65_535, false),
            OsKind::MacOs => (49_152, 65_535, true),
        }
    }
}

/// A CPE (customer premises equipment) router model. Netalyzr infers the
/// model via UPnP and the paper groups port-preservation behaviour per
/// model (Fig. 8b).
#[derive(Debug, Clone)]
pub struct CpeModel {
    pub name: String,
    /// Whether the model answers UPnP (provides `IPcpe`, Table 4).
    pub upnp: bool,
    /// Whether it preserves source ports (92% of sessions in Fig. 8b).
    pub preserves_ports: bool,
    /// The internal /24 the model assigns from ("top ten /24 blocks ...
    /// covering 95% of assignments", §4.2).
    pub lan_prefix: Prefix,
    /// NAT behaviour.
    pub mapping: MappingBehavior,
    pub filtering: FilteringBehavior,
    pub udp_timeout: SimDuration,
}

impl CpeModel {
    /// The canonical LAN /24s CPE vendors ship with, most common first.
    pub fn common_lan_prefixes() -> Vec<Prefix> {
        [
            "192.168.1.0/24",
            "192.168.0.0/24",
            "192.168.2.0/24",
            "192.168.100.0/24",
            "192.168.178.0/24", // Fritz!Box
            "192.168.10.0/24",
            "10.0.0.0/24",
            "10.0.1.0/24",
            "172.16.0.0/24",
            "192.168.8.0/24",
        ]
        .iter()
        .map(|s| s.parse().expect("static prefixes parse"))
        .collect()
    }

    /// Generate the market of CPE models. Distributions follow the
    /// paper's observations: ~92% of sessions behind port-preserving
    /// models (Fig. 8b), <2% symmetric, roughly half at permissive
    /// filtering (Fig. 13a), UPnP available for ~40–50% of sessions
    /// (Table 4), LAN space dominated by 192X with a small 10X/172X share
    /// (Table 4 column 3).
    pub fn generate_market(rng: &mut StdRng, count: usize) -> Vec<CpeModel> {
        let vendors = [
            "Acme",
            "RiverLink",
            "HomeGate",
            "NetBox",
            "Speedy",
            "AirWave",
        ];
        let lans = Self::common_lan_prefixes();
        (0..count)
            .map(|i| {
                let vendor = vendors[rng.gen_range(0..vendors.len())];
                let preserves_ports = rng.gen_bool(0.92);
                let upnp = rng.gen_bool(0.55);
                // LAN prefix: the handful of vendor defaults dominates;
                // 10X/172X LANs are the single-digit-percent tail
                // (Table 4 column 3: 92.4% of device addresses in 192X).
                let lan_prefix = {
                    let x: f64 = rng.gen();
                    if x < 0.72 {
                        lans[rng.gen_range(0..3usize)] // 192.168.{1,0,2}
                    } else if x < 0.90 {
                        lans[rng.gen_range(3..6usize)] // other 192X defaults
                    } else if x < 0.95 {
                        Prefix::new(netcore::ip(192, 168, rng.gen_range(3..=250), 0), 24)
                    } else {
                        lans[rng.gen_range(6..lans.len())] // 10X / 172X tail
                    }
                };
                let mapping = if rng.gen_bool(0.02) {
                    MappingBehavior::AddressAndPortDependent
                } else {
                    MappingBehavior::EndpointIndependent
                };
                let filtering = match rng.gen_range(0..100) {
                    0..=44 => FilteringBehavior::EndpointIndependent,
                    45..=64 => FilteringBehavior::AddressDependent,
                    _ => FilteringBehavior::AddressAndPortDependent,
                };
                let udp_timeout = SimDuration::from_secs(match rng.gen_range(0..100) {
                    0..=59 => 65,
                    60..=74 => 30,
                    75..=84 => 45,
                    85..=94 => 100,
                    _ => 150,
                });
                CpeModel {
                    name: format!("{vendor} CPE-{:03}", i + 1),
                    upnp,
                    preserves_ports,
                    lan_prefix,
                    mapping,
                    filtering,
                    udp_timeout,
                }
            })
            .collect()
    }

    /// The NAT configuration this model runs.
    pub fn nat_config(&self) -> NatConfig {
        let mut cfg = NatConfig::home_cpe();
        cfg.mapping = self.mapping;
        cfg.filtering = self.filtering;
        cfg.udp_timeout = self.udp_timeout;
        cfg.port_alloc = if self.preserves_ports {
            PortAllocation::Preserve
        } else {
            PortAllocation::Random
        };
        cfg.pooling = Pooling::Paired;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::classify_reserved;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn market_distributions_roughly_match_paper() {
        let market = CpeModel::generate_market(&mut rng(), 400);
        let preserving = market.iter().filter(|m| m.preserves_ports).count() as f64 / 400.0;
        assert!(
            (0.85..=0.97).contains(&preserving),
            "preserving: {preserving}"
        );
        let upnp = market.iter().filter(|m| m.upnp).count() as f64 / 400.0;
        assert!((0.45..=0.65).contains(&upnp), "upnp: {upnp}");
        let symmetric = market
            .iter()
            .filter(|m| m.mapping == MappingBehavior::AddressAndPortDependent)
            .count() as f64
            / 400.0;
        assert!(symmetric < 0.05, "symmetric CPEs must be rare: {symmetric}");
    }

    #[test]
    fn lan_prefixes_are_reserved_space() {
        let market = CpeModel::generate_market(&mut rng(), 100);
        for m in &market {
            assert!(
                classify_reserved(m.lan_prefix.network()).is_some(),
                "{} has public LAN {}",
                m.name,
                m.lan_prefix
            );
            assert_eq!(m.lan_prefix.len(), 24);
        }
    }

    #[test]
    fn lan_prefixes_mostly_192x() {
        let market = CpeModel::generate_market(&mut rng(), 400);
        let r192 = market
            .iter()
            .filter(|m| m.lan_prefix.network().octets()[0] == 192)
            .count() as f64
            / 400.0;
        assert!(r192 > 0.75, "192X should dominate CPE LANs: {r192}");
    }

    #[test]
    fn nat_config_reflects_model() {
        let mut m = CpeModel::generate_market(&mut rng(), 1).remove(0);
        m.preserves_ports = true;
        assert_eq!(m.nat_config().port_alloc, PortAllocation::Preserve);
        m.preserves_ports = false;
        assert_eq!(m.nat_config().port_alloc, PortAllocation::Random);
    }

    #[test]
    fn os_port_policies_sane() {
        let (lo, hi, seq) = OsKind::Linux.port_policy();
        assert!(lo < hi && seq);
        let (lo, hi, seq) = OsKind::Windows.port_policy();
        assert!(lo >= 49_152 && hi == 65_535 && !seq);
    }

    #[test]
    fn cellular_devices_mostly_android() {
        let mut r = rng();
        let android = (0..200)
            .filter(|_| OsKind::draw(&mut r, true) == OsKind::Android)
            .count();
        assert!(android > 140);
    }
}
