//! Address-space allocation for the synthetic Internet.

use netcore::{Prefix, ReservedRange};
use std::net::Ipv4Addr;

/// Hands out public /16 blocks, skipping reserved and special-purpose
/// space. Each eyeball AS gets one block for subscribers, CPE WAN
/// addresses and CGN pools.
#[derive(Debug)]
pub struct PublicSpaceAllocator {
    /// The next candidate /16 index (high 16 bits of the base address).
    next: u32,
}

impl Default for PublicSpaceAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl PublicSpaceAllocator {
    pub fn new() -> Self {
        // Start above the historically special low space.
        PublicSpaceAllocator { next: 20 << 8 }
    }

    fn is_usable(base: Ipv4Addr) -> bool {
        let first = base.octets()[0];
        // Skip loopback, reserved-for-internal, shared space (the whole
        // 100/8 to be safe), link local, TEST-NETs, benchmark space and
        // multicast/class E. Also keep 25/8 unannounced (the MoD-style
        // routable-but-unrouted block some CGNs use internally, Fig. 7b)
        // and 1/8 for the foreign announcer.
        if first == 0
            || first == 1
            || first == 10
            || first == 25
            || first == 100
            || first == 127
            || first >= 224
        {
            return false;
        }
        let p16 = Prefix::new(base, 16);
        let special: [Prefix; 5] = [
            "172.16.0.0/12".parse().unwrap(),
            "192.168.0.0/16".parse().unwrap(),
            "169.254.0.0/16".parse().unwrap(),
            "198.18.0.0/15".parse().unwrap(),
            "192.0.0.0/16".parse().unwrap(),
        ];
        !special
            .iter()
            .any(|s| s.covers(&p16) || p16.covers(s) || s.contains(base))
    }

    /// The next free public /16.
    pub fn next_slash16(&mut self) -> Prefix {
        loop {
            let base = Ipv4Addr::from(self.next << 16);
            self.next += 1;
            assert!(self.next < (223 << 8), "public space exhausted");
            if Self::is_usable(base) {
                return Prefix::new(base, 16);
            }
        }
    }
}

/// What address space a CGN uses internally (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InternalRangeChoice {
    /// One of the reserved ranges of Table 1.
    Reserved(ReservedRange),
    /// Nominally public space that is not announced anywhere
    /// (e.g. 25.0.0.0/8, allocated to the UK MoD — Fig. 7b).
    RoutableUnrouted,
    /// Public space that *other* ASes actually announce (the 1.0.0.0/8
    /// case of Fig. 7b) — colliding with real destinations.
    RoutableRouted,
}

impl InternalRangeChoice {
    /// A human-readable label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            InternalRangeChoice::Reserved(r) => r.shorthand(),
            InternalRangeChoice::RoutableUnrouted => "routable (unrouted)",
            InternalRangeChoice::RoutableRouted => "routable (routed)",
        }
    }

    /// The base prefix this choice draws subnets from.
    pub fn base_prefix(self) -> Prefix {
        match self {
            InternalRangeChoice::Reserved(r) => r.prefix(),
            InternalRangeChoice::RoutableUnrouted => "25.0.0.0/8".parse().unwrap(),
            InternalRangeChoice::RoutableRouted => "1.0.0.0/8".parse().unwrap(),
        }
    }
}

/// Hands out disjoint subnets of the internal ranges. One allocator per
/// AS — different ASes may reuse the same internal space (that is the
/// point of reserved ranges), but realms inside one AS must not collide.
#[derive(Debug, Default)]
pub struct InternalSpaceAllocator {
    /// Next subnet index per base range.
    counters: std::collections::HashMap<Prefix, u64>,
}

impl InternalSpaceAllocator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate the next `/len` subnet of `choice`'s base range.
    pub fn next_subnet(&mut self, choice: InternalRangeChoice, len: u8) -> Prefix {
        let base = choice.base_prefix();
        assert!(
            len >= base.len(),
            "subnet length {len} shorter than base {base}"
        );
        let idx = self.counters.entry(base).or_insert(0);
        let count = 1u64 << (len - base.len());
        assert!(*idx < count, "internal space of {base} exhausted");
        let step = 1u64 << (32 - len as u32);
        let net = Ipv4Addr::from(u32::from(base.network()) + (*idx * step) as u32);
        *idx += 1;
        Prefix::new(net, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::{classify_reserved, ip};

    #[test]
    fn public_allocator_skips_reserved() {
        let mut a = PublicSpaceAllocator::new();
        for _ in 0..500 {
            let p = a.next_slash16();
            assert!(
                classify_reserved(p.network()).is_none(),
                "{p} overlaps reserved space"
            );
            let first = p.network().octets()[0];
            assert!(
                first != 127 && first != 100 && first < 224,
                "{p} is special"
            );
        }
    }

    #[test]
    fn public_allocator_is_disjoint() {
        let mut a = PublicSpaceAllocator::new();
        let blocks: Vec<Prefix> = (0..200).map(|_| a.next_slash16()).collect();
        for (i, x) in blocks.iter().enumerate() {
            for y in &blocks[i + 1..] {
                assert!(!x.covers(y) && !y.covers(x), "{x} and {y} overlap");
            }
        }
    }

    #[test]
    fn internal_allocator_disjoint_within_range() {
        let mut a = InternalSpaceAllocator::new();
        let r = InternalRangeChoice::Reserved(ReservedRange::R100);
        let p1 = a.next_subnet(r, 16);
        let p2 = a.next_subnet(r, 16);
        assert_ne!(p1, p2);
        assert!(r.base_prefix().covers(&p1));
        assert!(r.base_prefix().covers(&p2));
        assert!(!p1.contains(p2.network()));
    }

    #[test]
    fn internal_allocator_tracks_ranges_independently() {
        let mut a = InternalSpaceAllocator::new();
        let p10 = a.next_subnet(InternalRangeChoice::Reserved(ReservedRange::R10), 16);
        let p100 = a.next_subnet(InternalRangeChoice::Reserved(ReservedRange::R100), 16);
        assert_eq!(p10.network(), ip(10, 0, 0, 0));
        assert_eq!(p100.network(), ip(100, 64, 0, 0));
    }

    #[test]
    fn routable_choices_have_public_bases() {
        assert!(classify_reserved(
            InternalRangeChoice::RoutableUnrouted
                .base_prefix()
                .network()
        )
        .is_none());
        assert!(
            classify_reserved(InternalRangeChoice::RoutableRouted.base_prefix().network())
                .is_none()
        );
        assert_eq!(
            InternalRangeChoice::Reserved(ReservedRange::R10).label(),
            "10X"
        );
        assert_eq!(
            InternalRangeChoice::RoutableUnrouted.label(),
            "routable (unrouted)"
        );
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn internal_exhaustion_detected() {
        let mut a = InternalSpaceAllocator::new();
        let r = InternalRangeChoice::Reserved(ReservedRange::R192); // /16 base
        a.next_subnet(r, 16);
        a.next_subnet(r, 16); // only one /16 fits in a /16
    }
}
