//! # topology — the synthetic Internet the study measures
//!
//! The paper measures the real Internet from BitTorrent and Netalyzr
//! vantage points. This crate builds the equivalent *world with known
//! ground truth*: autonomous systems across the five RIR regions, public
//! address space and a global routing table, subscribers in the three
//! deployment scenarios of Fig. 2 (public + CPE, CGN-only, NAT444),
//! CPE models and carrier-grade NAT deployments whose behaviour
//! distributions are calibrated to the paper's findings (§6), plus the
//! operator survey of §2.
//!
//! Everything is generated deterministically from a seed, so detection
//! results are exactly reproducible and can be scored against the ground
//! truth.

pub mod alloc;
pub mod build;
pub mod config;
pub mod models;
pub mod survey;

pub use alloc::{InternalRangeChoice, PublicSpaceAllocator};
pub use build::{AsDeployment, CgnInstance, CpeInfo, Scenario, Subscriber, World};
pub use config::{CgnBehaviorProfile, CgnPolicyOverride, TopologyConfig};
pub use models::{CpeModel, OsKind};
pub use survey::{Survey, SurveyConfig};
