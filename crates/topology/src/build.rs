//! Building the world: ASes, routing, NAT deployments, subscribers.

use crate::alloc::{InternalRangeChoice, InternalSpaceAllocator, PublicSpaceAllocator};
use crate::config::{CgnBehaviorProfile, CgnPolicyOverride, TopologyConfig};
use crate::models::{CpeModel, OsKind};
use nat_engine::{
    FilteringBehavior, MappingBehavior, NatConfig, Pooling, PortAllocation, StunNatType,
};
use netcore::{
    AsId, AsInfo, AsKind, AsRegistry, Prefix, ReservedRange, Rir, RoutingTable, SimDuration,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::{Network, NodeId, RealmId};
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// The three deployment scenarios of Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Public address; at most a subscriber-side NAT44 (CPE).
    A,
    /// Carrier-side NAT44 only: the device holds an ISP-internal address.
    B,
    /// NAT444: home NAT behind a carrier NAT.
    C,
}

/// A subscriber's CPE router, if any.
#[derive(Debug, Clone)]
pub struct CpeInfo {
    pub nat_node: NodeId,
    pub home_realm: RealmId,
    pub model_idx: usize,
    pub model_name: String,
    pub upnp: bool,
    pub preserves_ports: bool,
    /// The CPE's WAN address (public in scenario A, ISP-internal in C).
    pub external_ip: Ipv4Addr,
}

/// One subscriber line.
#[derive(Debug, Clone)]
pub struct Subscriber {
    pub id: usize,
    pub as_id: AsId,
    pub scenario: Scenario,
    pub device_node: NodeId,
    pub device_addr: Ipv4Addr,
    pub os: OsKind,
    pub cpe: Option<CpeInfo>,
    /// Index into the AS deployment's `cgn_instances`.
    pub cgn_instance: Option<usize>,
    pub runs_bittorrent: bool,
    /// Additional BitTorrent devices in the same home (same realm).
    pub extra_bt_devices: Vec<(NodeId, Ipv4Addr)>,
}

/// Ground truth about one deployed CGN middlebox.
#[derive(Debug, Clone)]
pub struct CgnInstance {
    pub nat_node: NodeId,
    pub realm: RealmId,
    pub internal_prefix: Prefix,
    pub internal_choice: InternalRangeChoice,
    pub pool: Vec<Ipv4Addr>,
    pub port_alloc: PortAllocation,
    pub stun_type: StunNatType,
    pub udp_timeout_secs: u64,
    pub pooling: Pooling,
    pub multicast: bool,
    /// Aggregation hops drawn for subscribers of this instance.
    pub agg_hops: (usize, usize),
    /// State shards of the deployed `ShardedNat` engine.
    pub shards: u16,
}

/// Ground truth for one instrumented (eyeball) AS.
#[derive(Debug, Clone)]
pub struct AsDeployment {
    pub info: AsInfo,
    pub public_prefix: Prefix,
    pub cgn_instances: Vec<CgnInstance>,
    /// The internal ranges this AS's CGNs draw from (Fig. 7).
    pub internal_choices: Vec<InternalRangeChoice>,
    /// Fraction of subscribers behind CGN (partial deployments).
    pub partial_fraction: f64,
    pub subscriber_ids: Vec<usize>,
}

impl AsDeployment {
    pub fn has_cgn(&self) -> bool {
        !self.cgn_instances.is_empty()
    }
}

/// The generated world.
#[derive(Debug)]
pub struct World {
    pub config: TopologyConfig,
    pub net: Network,
    pub registry: AsRegistry,
    pub routing: RoutingTable,
    /// Instrumented eyeball ASes, in creation order.
    pub deployments: Vec<AsDeployment>,
    pub subscribers: Vec<Subscriber>,
    pub cpe_models: Vec<CpeModel>,
    /// Synthesized eyeball AS lists (Table 5's PBL and APNIC columns).
    pub pbl: BTreeSet<AsId>,
    pub apnic_list: BTreeSet<AsId>,
    /// Public block reserved for measurement infrastructure (servers,
    /// crawler).
    pub service_prefix: Prefix,
    service_hosts_used: u64,
}

/// Allocates router-label addresses from the benchmark range 198.18/15.
#[derive(Debug)]
struct RouterIpGen {
    counter: u32,
}

impl RouterIpGen {
    fn new() -> Self {
        RouterIpGen { counter: 0 }
    }

    fn next(&mut self) -> Ipv4Addr {
        // Labels are hop identifiers, never realm addresses, so the
        // 198.18/15 space may wrap at ISP scale: reuse across distant
        // chains is harmless (chains are ≤ a handful of hops long).
        let c = self.counter % (1 << 17);
        self.counter = self.counter.wrapping_add(1);
        Ipv4Addr::from(u32::from(netcore::ip(198, 18, 0, 0)) + c)
    }

    fn chain(&mut self, len: usize) -> Vec<Ipv4Addr> {
        (0..len).map(|_| self.next()).collect()
    }
}

/// Per-prefix host-address allocator.
///
/// Sequential mode packs hosts densely (public blocks, home LANs);
/// scattered mode spreads hosts across the whole prefix with a stride
/// walk, the way real CGNs spread subscribers over their internal space —
/// which is exactly the /24 diversity that Fig. 5's detector keys on.
#[derive(Debug)]
struct HostAddrGen {
    prefix: Prefix,
    next: u64,
    stride: u64,
}

impl HostAddrGen {
    fn new(prefix: Prefix, start: u64) -> Self {
        HostAddrGen {
            prefix,
            next: start,
            stride: 1,
        }
    }

    /// Scattered variant: a stride coprime to the usable size walks the
    /// whole space without repeats. The stride is ≈10×256+1 so successive
    /// hosts land in different /24s (the diversity Fig. 5 keys on), not
    /// in a handful of aliased blocks.
    fn scattered(prefix: Prefix, start: u64) -> Self {
        HostAddrGen {
            prefix,
            next: start,
            stride: 2561,
        }
    }

    fn next(&mut self) -> Ipv4Addr {
        // Keep clear of .0/.1 style infrastructure offsets.
        let usable = self.prefix.size() - 10;
        let a = self.prefix.addr(10 + (self.next * self.stride) % usable);
        self.next += 1;
        a
    }

    fn take(&mut self, n: usize) -> Vec<Ipv4Addr> {
        (0..n).map(|_| self.next()).collect()
    }
}

impl World {
    /// Build the world from a configuration. Deterministic in
    /// `config.seed`.
    pub fn build(config: TopologyConfig) -> World {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut net = Network::new();
        let mut routing = RoutingTable::new();
        let mut registry = AsRegistry::new();
        let mut pub_alloc = PublicSpaceAllocator::new();
        let mut routers = RouterIpGen::new();
        let cpe_models = CpeModel::generate_market(&mut rng, config.cpe_models);

        let mut next_asn: u32 = 100;
        let mut asn = || {
            let a = next_asn;
            next_asn += 1;
            AsId(a)
        };

        // Measurement/content AS: hosts the servers and the crawler.
        let service_as = asn();
        let service_prefix = pub_alloc.next_slash16();
        routing.announce(service_prefix, service_as);
        registry.insert(AsInfo {
            id: service_as,
            name: "MeasurementContent".into(),
            rir: Rir::Arin,
            kind: AsKind::Content,
            subscribers: 0,
        });

        // The foreign announcer of 1.0.0.0/8 — the space some cellular
        // ISPs use internally although it is routed elsewhere (Fig. 7b).
        let foreign_as = asn();
        routing.announce("1.0.0.0/8".parse().expect("static"), foreign_as);
        registry.insert(AsInfo {
            id: foreign_as,
            name: "ForeignTelecom".into(),
            rir: Rir::Apnic,
            kind: AsKind::Transit,
            subscribers: 0,
        });

        let mut deployments = Vec::new();
        let mut subscribers: Vec<Subscriber> = Vec::new();

        // Eyeball ASes per RIR, residential then cellular.
        for (cellular, counts) in [
            (false, config.residential_per_rir),
            (true, config.cellular_per_rir),
        ] {
            for rir in Rir::ALL {
                let idx = TopologyConfig::rir_index(rir);
                for _ in 0..counts[idx] {
                    let id = asn();
                    let dep = build_as(
                        BuildAsArgs {
                            id,
                            rir,
                            cellular,
                            config: &config,
                            cpe_models: &cpe_models,
                        },
                        &mut rng,
                        &mut net,
                        &mut routing,
                        &mut registry,
                        &mut pub_alloc,
                        &mut routers,
                        &mut subscribers,
                    );
                    deployments.push(dep);
                }
            }
        }

        // Silent ASes: routed but without instrumented hosts — they pad
        // the "all routed ASes" denominator of Table 5.
        let silent = deployments.len() * config.silent_as_ratio;
        for i in 0..silent {
            let id = asn();
            let p = pub_alloc.next_slash16();
            routing.announce(p, id);
            let rir = Rir::ALL[rng.gen_range(0..5usize)];
            let kind = if rng.gen_bool(0.3) {
                AsKind::Transit
            } else {
                AsKind::Content
            };
            registry.insert(AsInfo {
                id,
                name: format!("Silent-{i}"),
                rir,
                kind,
                subscribers: 0,
            });
        }

        // Eyeball lists: independent high-coverage samples of the true
        // eyeball population.
        let mut pbl = BTreeSet::new();
        let mut apnic_list = BTreeSet::new();
        for d in &deployments {
            if rng.gen_bool(config.pbl_coverage) {
                pbl.insert(d.info.id);
            }
            if rng.gen_bool(config.apnic_coverage) {
                apnic_list.insert(d.info.id);
            }
        }

        World {
            config,
            net,
            registry,
            routing,
            deployments,
            subscribers,
            cpe_models,
            pbl,
            apnic_list,
            service_prefix,
            service_hosts_used: 10,
        }
    }

    /// Allocate an address for a measurement-infrastructure host.
    pub fn next_service_addr(&mut self) -> Ipv4Addr {
        let a = self.service_prefix.addr(self.service_hosts_used);
        self.service_hosts_used += 1;
        a
    }

    /// Ground truth: does this AS deploy CGN?
    pub fn has_cgn(&self, as_id: AsId) -> bool {
        self.deployments
            .iter()
            .find(|d| d.info.id == as_id)
            .map(|d| d.has_cgn())
            .unwrap_or(false)
    }

    /// The AS announcing `ip`, per the global routing table.
    pub fn as_of_public_ip(&self, ip: Ipv4Addr) -> Option<AsId> {
        self.routing.origin_of(ip)
    }

    /// The deployment record of an AS, if instrumented.
    pub fn deployment(&self, as_id: AsId) -> Option<&AsDeployment> {
        self.deployments.iter().find(|d| d.info.id == as_id)
    }

    /// All subscriber indices of an AS.
    pub fn subscribers_of(&self, as_id: AsId) -> Vec<usize> {
        self.deployment(as_id)
            .map(|d| d.subscriber_ids.clone())
            .unwrap_or_default()
    }
}

struct BuildAsArgs<'a> {
    id: AsId,
    rir: Rir,
    cellular: bool,
    config: &'a TopologyConfig,
    cpe_models: &'a [CpeModel],
}

/// Draw a CGN's internal-range choice (Fig. 7a/7b distributions).
fn draw_internal_choice(rng: &mut StdRng, cellular: bool, p_routable: f64) -> InternalRangeChoice {
    if cellular && rng.gen_bool(p_routable) {
        return if rng.gen_bool(0.35) {
            InternalRangeChoice::RoutableRouted
        } else {
            InternalRangeChoice::RoutableUnrouted
        };
    }
    let x: f64 = rng.gen();
    let r = if cellular {
        // Table 4 column 2: 10X dominates cellular deployments.
        if x < 0.62 {
            ReservedRange::R10
        } else if x < 0.92 {
            ReservedRange::R100
        } else if x < 0.98 {
            ReservedRange::R172
        } else {
            ReservedRange::R192
        }
    } else if x < 0.50 {
        ReservedRange::R10
    } else if x < 0.80 {
        ReservedRange::R100
    } else if x < 0.92 {
        ReservedRange::R172
    } else {
        ReservedRange::R192
    };
    InternalRangeChoice::Reserved(r)
}

/// Draw a behaviour from the profile and assemble the NAT config plus the
/// ground-truth summary fields.
fn draw_cgn_behavior(
    rng: &mut StdRng,
    profile: &CgnBehaviorProfile,
) -> (NatConfig, PortAllocation, StunNatType, u64, Pooling) {
    let (mapping, filtering) = if rng.gen_bool(profile.p_symmetric) {
        (
            MappingBehavior::AddressAndPortDependent,
            FilteringBehavior::AddressAndPortDependent,
        )
    } else if rng.gen_bool(profile.p_full_cone) {
        (
            MappingBehavior::EndpointIndependent,
            FilteringBehavior::EndpointIndependent,
        )
    } else if rng.gen_bool(profile.p_addr_restricted) {
        (
            MappingBehavior::EndpointIndependent,
            FilteringBehavior::AddressDependent,
        )
    } else {
        (
            MappingBehavior::EndpointIndependent,
            FilteringBehavior::AddressAndPortDependent,
        )
    };

    let port_alloc = {
        let x: f64 = rng.gen();
        if x < profile.p_port_preserve {
            PortAllocation::Preserve
        } else if x < profile.p_port_preserve + profile.p_port_sequential {
            PortAllocation::Sequential
        } else if rng.gen_bool(profile.p_chunk_given_random) {
            // Chunk sizes per Table 6: ≤1K, 1–4K, 4–16K in similar shares.
            let sizes = [512u16, 1024, 2048, 4096, 8192, 16384];
            PortAllocation::RandomChunk {
                chunk_size: sizes[rng.gen_range(0..sizes.len())],
            }
        } else {
            PortAllocation::Random
        }
    };

    let udp_timeout_secs = if rng.gen_bool(profile.p_timeout_unmeasurable) {
        // Beyond the 200 s detection horizon.
        *[250u64, 300, 600]
            .get(rng.gen_range(0..3usize))
            .expect("static")
    } else {
        // Spread around the profile median on a coarse grid; the paper
        // observes 10–200 s with medians 35 s (fixed) / 65 s (cellular).
        let grid = [10u64, 20, 30, 35, 45, 60, 65, 90, 120, 150, 180, 200];
        let median = profile.udp_timeout_median_secs;
        // Biased pick: most of the mass near the median, the rest uniform.
        if rng.gen_bool(0.65) {
            let near: Vec<u64> = grid
                .iter()
                .copied()
                .filter(|v| v.abs_diff(median) <= 15)
                .collect();
            near[rng.gen_range(0..near.len())]
        } else {
            grid[rng.gen_range(0..grid.len())]
        }
    };

    let pooling = if rng.gen_bool(profile.p_arbitrary_pooling) {
        Pooling::Arbitrary
    } else {
        Pooling::Paired
    };

    let mut cfg = NatConfig::cgn_default();
    cfg.mapping = mapping;
    cfg.filtering = filtering;
    cfg.port_alloc = port_alloc;
    cfg.pooling = pooling;
    cfg.udp_timeout = SimDuration::from_secs(udp_timeout_secs);
    // TCP established timeouts also vary in deployments; some meet the
    // RFC 5382 floor (2 h 4 min), many trim it to shed state.
    let tcp_grid = [1800u64, 3600, 7200, 7440, 14_400];
    cfg.tcp_established_timeout =
        SimDuration::from_secs(tcp_grid[rng.gen_range(0..tcp_grid.len())]);
    let stun_type = cfg.stun_type();
    (cfg, port_alloc, stun_type, udp_timeout_secs, pooling)
}

/// Pin drawn CGN behaviour fields to a scenario-controlled policy.
fn apply_cgn_override(
    cfg: &mut NatConfig,
    ov: &CgnPolicyOverride,
    pool_clamp: &mut (usize, usize),
) {
    if let Some(pa) = ov.port_alloc {
        cfg.port_alloc = pa;
    }
    if let Some(m) = ov.mapping {
        cfg.mapping = m;
    }
    if let Some(f) = ov.filtering {
        cfg.filtering = f;
    }
    if let Some(t) = ov.udp_timeout_secs {
        cfg.udp_timeout = SimDuration::from_secs(t);
    }
    if let Some(p) = ov.pooling {
        cfg.pooling = p;
    }
    if let Some(clamp) = ov.pool_size {
        *pool_clamp = clamp;
    }
}

#[allow(clippy::too_many_arguments)]
fn build_as(
    args: BuildAsArgs<'_>,
    rng: &mut StdRng,
    net: &mut Network,
    routing: &mut RoutingTable,
    registry: &mut AsRegistry,
    pub_alloc: &mut PublicSpaceAllocator,
    routers: &mut RouterIpGen,
    subscribers: &mut Vec<Subscriber>,
) -> AsDeployment {
    let BuildAsArgs {
        id,
        rir,
        cellular,
        config,
        cpe_models,
    } = args;
    let public_prefix = pub_alloc.next_slash16();
    routing.announce(public_prefix, id);

    let n_subs = rng.gen_range(config.subscribers_per_as.0..=config.subscribers_per_as.1);
    registry.insert(AsInfo {
        id,
        name: format!(
            "{}-{}-{}",
            if cellular { "Cell" } else { "ISP" },
            rir.name(),
            id.0
        ),
        rir,
        kind: if cellular {
            AsKind::EyeballCellular
        } else {
            AsKind::EyeballResidential
        },
        subscribers: n_subs as u32,
    });

    let mut pub_hosts = HostAddrGen::new(public_prefix, 10);

    // --- CGN deployment decision and instances. ---
    let rir_idx = TopologyConfig::rir_index(rir);
    let p_cgn = if cellular {
        config.p_cgn_cellular_per_rir[rir_idx]
    } else {
        config.p_cgn_residential_per_rir[rir_idx]
    };
    let deploys_cgn = rng.gen_bool(p_cgn);
    let profile = if cellular {
        CgnBehaviorProfile::cellular()
    } else {
        CgnBehaviorProfile::non_cellular()
    };

    let mut internal_alloc = InternalSpaceAllocator::new();
    let mut cgn_instances: Vec<CgnInstance> = Vec::new();
    let mut internal_choices: Vec<InternalRangeChoice> = Vec::new();
    // Pooling is an ISP-wide configuration policy (§6.2 measures it per
    // AS), so it is drawn once per AS, not per middlebox.
    let as_pooling = if rng.gen_bool(profile.p_arbitrary_pooling) {
        Pooling::Arbitrary
    } else {
        Pooling::Paired
    };
    if deploys_cgn {
        // ~20% of CGN ASes use several reserved ranges (§6.1); distributed
        // deployments run several instances (the Fig. 9 strategy mixes).
        // Only larger subscriber bases warrant distributed deployments.
        let n_instances = if n_subs >= 40 && rng.gen_bool(config.p_distributed_cgn) {
            2
        } else {
            1
        };
        let primary_choice =
            draw_internal_choice(rng, cellular, config.p_routable_internal_cellular);
        internal_choices.push(primary_choice);
        if rng.gen_bool(0.20) {
            let second = draw_internal_choice(rng, cellular, config.p_routable_internal_cellular);
            if second != primary_choice {
                internal_choices.push(second);
            }
        }
        for inst in 0..n_instances {
            let choice = internal_choices[inst % internal_choices.len()];
            let internal_prefix = internal_alloc.next_subnet(choice, 18);
            let (cfg, _, _, _, _pooling) = draw_cgn_behavior(rng, &profile);
            let mut cfg = cfg;
            cfg.pooling = as_pooling;
            // Scenario-controlled worlds pin the drawn behaviour. The
            // override lands *before* the dependent hairpin draw (so
            // the vendor correlation below reflects the deployed
            // filtering class, not the discarded draw) yet changes no
            // RNG draw count — the stream, and hence the rest of the
            // world, is identical with and without a pinned policy.
            let mut pool_clamp = (8usize, 32usize);
            if let Some(ov) = &config.cgn_policy {
                apply_cgn_override(&mut cfg, ov, &mut pool_clamp);
            }
            cfg.hairpinning = rng.gen_bool(config.p_cgn_hairpin);
            // Vendors that hairpin without rewriting the source tend to be
            // the permissive ones; correlate with the filtering class.
            let p_keep_src = match cfg.filtering {
                FilteringBehavior::EndpointIndependent => {
                    (config.p_hairpin_internal_src + 0.2).min(1.0)
                }
                FilteringBehavior::AddressDependent => config.p_hairpin_internal_src,
                FilteringBehavior::AddressAndPortDependent => {
                    (config.p_hairpin_internal_src - 0.2).max(0.0)
                }
            };
            cfg.hairpin_internal_source = cfg.hairpinning && rng.gen_bool(p_keep_src);
            let multicast = rng.gen_bool(config.p_cgn_multicast);
            let shards = config.cgn_shards.max(1);
            // Pool sized so clusters can span the ≥5-address detection
            // boundary for realistic subscriber counts (operators
            // provision pools well above peak concurrency) — and so
            // every state shard owns at least one address.
            let pool_size = (n_subs / 3)
                .clamp(pool_clamp.0, pool_clamp.1)
                .max(shards as usize);
            // RFC 7422 auto-sizing: the largest power-of-two block that
            // still provisions a collision-free slot per subscriber.
            // Deliberately conservative for distributed deployments:
            // subscribers are split across instances only after the
            // instances exist, so each instance is sized as if it had
            // to hold the whole AS (smaller blocks, never collisions).
            if let PortAllocation::Deterministic { ports_per_host: 0 } = cfg.port_alloc {
                let capacity = (cfg.port_range.1 - cfg.port_range.0) as u64 + 1;
                let mut pph: u64 = 4;
                while pph * 2 <= 16_384
                    && pool_size as u64 * (capacity / (pph * 2)) >= n_subs as u64
                {
                    pph *= 2;
                }
                cfg.port_alloc = PortAllocation::Deterministic {
                    ports_per_host: pph as u16,
                };
            }
            // Ground truth reflects the deployed configuration.
            let port_alloc = cfg.port_alloc;
            let stun_type = cfg.stun_type();
            let udp_timeout_secs = cfg.udp_timeout.as_secs();
            let pooling = cfg.pooling;
            let pool = pub_hosts.take(pool_size);
            let gw = internal_prefix.addr(1);
            let ext_chain = routers.chain(rng.gen_range(1..=2));
            // Every carrier NAT deploys as a ShardedNat (shards == 1 is
            // a single-shard engine on the same code path) — the
            // ISP-scale shape the detection campaign drives load into.
            let (nat_node, realm) = net.add_nat_sharded(
                cfg,
                pool.clone(),
                shards,
                RealmId::PUBLIC,
                ext_chain,
                gw,
                multicast,
                rng.gen(),
            );
            cgn_instances.push(CgnInstance {
                nat_node,
                realm,
                internal_prefix,
                internal_choice: choice,
                pool,
                port_alloc,
                stun_type,
                udp_timeout_secs,
                pooling,
                multicast,
                agg_hops: profile.agg_hops,
                shards,
            });
        }
    }
    let partial_range = if cellular {
        config.partial_deployment_cellular
    } else {
        config.partial_deployment
    };
    let partial_fraction = rng.gen_range(partial_range.0..=partial_range.1);

    // Per-instance internal host allocators (skip .0, .1 = gateway).
    let mut internal_hosts: Vec<HostAddrGen> = cgn_instances
        .iter()
        .map(|ci| HostAddrGen::scattered(ci.internal_prefix, 0))
        .collect();

    // --- Subscribers. ---
    let as_has_bt = rng.gen_bool(config.p_as_bittorrent);
    // Bridged-modem ISPs hand devices ISP addresses directly (scenario B
    // even for fixed lines) — the FastWEB-like strong-cluster case. CGN
    // deployments correlate with bridged access (greenfield fibre with
    // bridged ONTs is where operators NAT first).
    let p_bridged = if deploys_cgn {
        (config.p_bridged_modem_isp * 2.2).min(0.9)
    } else {
        config.p_bridged_modem_isp * 0.7
    };
    let cpe_rate = if !cellular && rng.gen_bool(p_bridged) {
        0.10
    } else {
        config.p_cpe_residential
    };
    let mut subscriber_ids = Vec::with_capacity(n_subs);
    for _ in 0..n_subs {
        let sub_id = subscribers.len();
        let behind_cgn = deploys_cgn && rng.gen_bool(partial_fraction);
        let os = OsKind::draw(rng, cellular);
        let runs_bittorrent = !cellular && as_has_bt && rng.gen_bool(config.p_bittorrent);

        let sub = if behind_cgn {
            let inst_idx = rng.gen_range(0..cgn_instances.len());
            let inst = &cgn_instances[inst_idx];
            let agg = rng.gen_range(inst.agg_hops.0..=inst.agg_hops.1);
            let chain = routers.chain(agg);
            let has_cpe = !cellular && rng.gen_bool(cpe_rate);
            if has_cpe {
                // Scenario C: NAT444.
                let wan_ip = internal_hosts[inst_idx].next();
                let second_bt = runs_bittorrent && rng.gen_bool(config.p_second_bt_device);
                let (cpe, device, device_addr, extra) =
                    install_home(net, rng, cpe_models, inst.realm, wan_ip, chain, second_bt);
                Subscriber {
                    id: sub_id,
                    as_id: id,
                    scenario: Scenario::C,
                    device_node: device,
                    device_addr,
                    os,
                    cpe: Some(cpe),
                    cgn_instance: Some(inst_idx),
                    runs_bittorrent,
                    extra_bt_devices: extra,
                }
            } else {
                // Scenario B: naked device on ISP-internal space.
                let addr = internal_hosts[inst_idx].next();
                let device = net.add_host(inst.realm, addr, chain);
                Subscriber {
                    id: sub_id,
                    as_id: id,
                    scenario: Scenario::B,
                    device_node: device,
                    device_addr: addr,
                    os,
                    cpe: None,
                    cgn_instance: Some(inst_idx),
                    runs_bittorrent: runs_bittorrent
                        || (cellular && as_has_bt && rng.gen_bool(0.02)),
                    extra_bt_devices: Vec::new(),
                }
            }
        } else {
            // No CGN for this line.
            let has_cpe = !cellular && rng.gen_bool(cpe_rate);
            let chain = routers.chain(rng.gen_range(1..=3));
            if has_cpe {
                // Scenario A with a home NAT.
                let wan_ip = pub_hosts.next();
                let second_bt = runs_bittorrent && rng.gen_bool(config.p_second_bt_device);
                let (cpe, device, device_addr, extra) = install_home(
                    net,
                    rng,
                    cpe_models,
                    RealmId::PUBLIC,
                    wan_ip,
                    chain,
                    second_bt,
                );
                Subscriber {
                    id: sub_id,
                    as_id: id,
                    scenario: Scenario::A,
                    device_node: device,
                    device_addr,
                    os,
                    cpe: Some(cpe),
                    cgn_instance: None,
                    runs_bittorrent,
                    extra_bt_devices: extra,
                }
            } else {
                // Scenario A naked: a public device (cellular ISPs that
                // still assign public addresses — Table 4's routed match).
                // A small share sits behind a stateful firewall: per-flow
                // state without translation (Table 7's match+detected row).
                let addr = pub_hosts.next();
                let device = if rng.gen_bool(0.05) {
                    let (_, fw_realm) = net.add_nat(
                        NatConfig::stateful_firewall(),
                        vec![addr],
                        RealmId::PUBLIC,
                        chain,
                        netcore::ip(198, 19, 255, 254),
                        false,
                        rng.gen(),
                    );
                    net.add_host(fw_realm, addr, vec![])
                } else {
                    net.add_host(RealmId::PUBLIC, addr, chain)
                };
                Subscriber {
                    id: sub_id,
                    as_id: id,
                    scenario: Scenario::A,
                    device_node: device,
                    device_addr: addr,
                    os,
                    cpe: None,
                    cgn_instance: None,
                    runs_bittorrent: runs_bittorrent
                        || (cellular && as_has_bt && rng.gen_bool(0.02)),
                    extra_bt_devices: Vec::new(),
                }
            }
        };
        subscribers.push(sub);
        subscriber_ids.push(sub_id);
    }

    AsDeployment {
        info: registry.get(id).expect("just inserted").clone(),
        public_prefix,
        cgn_instances,
        internal_choices,
        partial_fraction,
        subscriber_ids,
    }
}

/// Install a home: CPE NAT + primary device (+ optional second BT device).
fn install_home(
    net: &mut Network,
    rng: &mut StdRng,
    cpe_models: &[CpeModel],
    wan_realm: RealmId,
    wan_ip: Ipv4Addr,
    chain: Vec<Ipv4Addr>,
    second_bt_device: bool,
) -> (CpeInfo, NodeId, Ipv4Addr, Vec<(NodeId, Ipv4Addr)>) {
    let model_idx = rng.gen_range(0..cpe_models.len());
    let model = &cpe_models[model_idx];
    let gw = model.lan_prefix.addr(1);
    let (nat_node, home_realm) = net.add_nat(
        model.nat_config(),
        vec![wan_ip],
        wan_realm,
        chain,
        gw,
        true, // home LANs deliver multicast
        rng.gen(),
    );
    let device_addr = model.lan_prefix.addr(100);
    let device = net.add_host(home_realm, device_addr, vec![]);
    let mut extra = Vec::new();
    if second_bt_device {
        let a2 = model.lan_prefix.addr(101);
        let d2 = net.add_host(home_realm, a2, vec![]);
        extra.push((d2, a2));
    }
    let cpe = CpeInfo {
        nat_node,
        home_realm,
        model_idx,
        model_name: model.name.clone(),
        upnp: model.upnp,
        preserves_ports: model.preserves_ports,
        external_ip: wan_ip,
    };
    (cpe, device, device_addr, extra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::classify_reserved;

    fn world() -> World {
        World::build(TopologyConfig::tiny(42))
    }

    #[test]
    fn build_is_deterministic() {
        let a = world();
        let b = world();
        assert_eq!(a.subscribers.len(), b.subscribers.len());
        assert_eq!(a.registry.len(), b.registry.len());
        let da: Vec<bool> = a.deployments.iter().map(|d| d.has_cgn()).collect();
        let db: Vec<bool> = b.deployments.iter().map(|d| d.has_cgn()).collect();
        assert_eq!(da, db);
        for (x, y) in a.subscribers.iter().zip(&b.subscribers) {
            assert_eq!(x.device_addr, y.device_addr);
            assert_eq!(x.scenario, y.scenario);
        }
    }

    #[test]
    fn registry_and_routing_consistent() {
        let w = world();
        // Every instrumented AS announces its prefix.
        for d in &w.deployments {
            assert_eq!(
                w.routing.origin_of(d.public_prefix.addr(100)),
                Some(d.info.id)
            );
        }
        // Silent ASes pad the denominator.
        let eyeballs = w.registry.eyeballs().count();
        assert_eq!(eyeballs, w.deployments.len());
        assert!(w.registry.len() > eyeballs * 2);
    }

    #[test]
    fn scenarios_respect_ground_truth() {
        let w = world();
        for s in &w.subscribers {
            let dep = w.deployment(s.as_id).expect("subscriber AS instrumented");
            match s.scenario {
                Scenario::A => {
                    assert!(s.cgn_instance.is_none());
                    // Device address public (naked) or home-reserved (CPE).
                    match &s.cpe {
                        Some(cpe) => {
                            assert!(classify_reserved(s.device_addr).is_some());
                            assert!(classify_reserved(cpe.external_ip).is_none());
                        }
                        None => assert!(classify_reserved(s.device_addr).is_none()),
                    }
                }
                Scenario::B => {
                    let inst = &dep.cgn_instances[s.cgn_instance.expect("B has CGN")];
                    assert!(inst.internal_prefix.contains(s.device_addr));
                    assert!(s.cpe.is_none());
                }
                Scenario::C => {
                    let inst = &dep.cgn_instances[s.cgn_instance.expect("C has CGN")];
                    let cpe = s.cpe.as_ref().expect("C has CPE");
                    assert!(inst.internal_prefix.contains(cpe.external_ip));
                    assert!(classify_reserved(s.device_addr).is_some());
                }
            }
        }
    }

    #[test]
    fn cellular_ases_have_no_cpe() {
        let w = world();
        for s in &w.subscribers {
            let dep = w.deployment(s.as_id).unwrap();
            if dep.info.kind.is_cellular() {
                assert!(s.cpe.is_none(), "cellular subscribers have no CPE");
            }
        }
    }

    #[test]
    fn traffic_flows_end_to_end() {
        use netcore::{Endpoint, Packet};
        let mut w = world();
        let svc = w.next_service_addr();
        let server = w.net.add_host(RealmId::PUBLIC, svc, vec![]);
        let mut delivered = 0;
        let subs: Vec<(NodeId, Ipv4Addr)> = w
            .subscribers
            .iter()
            .map(|s| (s.device_node, s.device_addr))
            .collect();
        let total = subs.len();
        for (node, addr) in subs {
            let pkt = Packet::udp(
                Endpoint::new(addr, 40_000),
                Endpoint::new(svc, 8000),
                vec![1],
            );
            let ds = w.net.send(node, pkt);
            if ds.iter().any(|d| d.node == server) {
                delivered += 1;
            }
        }
        assert_eq!(
            delivered, total,
            "every subscriber must reach a public server"
        );
    }

    #[test]
    fn cgn_instances_have_detectable_shape() {
        let w = World::build(TopologyConfig::default_with_seed(7));
        let with_cgn: Vec<&AsDeployment> = w.deployments.iter().filter(|d| d.has_cgn()).collect();
        assert!(!with_cgn.is_empty(), "default world must deploy CGNs");
        for d in with_cgn {
            for ci in &d.cgn_instances {
                assert!(
                    ci.pool.len() >= 5,
                    "pool must allow the ≥5-IP cluster boundary"
                );
                for ip in &ci.pool {
                    assert_eq!(w.routing.origin_of(*ip), Some(d.info.id));
                }
            }
        }
        // Cellular CGN rate should be high, residential moderate.
        let cell_cgn = w
            .deployments
            .iter()
            .filter(|d| d.info.kind.is_cellular() && d.has_cgn())
            .count() as f64;
        let cell_total = w
            .deployments
            .iter()
            .filter(|d| d.info.kind.is_cellular())
            .count() as f64;
        assert!(
            cell_cgn / cell_total > 0.75,
            "cellular CGN rate {}",
            cell_cgn / cell_total
        );
    }

    #[test]
    fn eyeball_lists_are_subsets() {
        let w = world();
        for id in &w.pbl {
            assert!(w.deployment(*id).is_some());
        }
        for id in &w.apnic_list {
            assert!(w.deployment(*id).is_some());
        }
    }

    #[test]
    fn service_addrs_unique_and_public() {
        let mut w = world();
        let a = w.next_service_addr();
        let b = w.next_service_addr();
        assert_ne!(a, b);
        assert!(w.service_prefix.contains(a));
        assert!(classify_reserved(a).is_none());
    }
}
