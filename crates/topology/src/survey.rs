//! The operator survey of §2 (75 ISPs) and Fig. 1.
//!
//! The paper's published aggregates are encoded as a response-probability
//! model; a synthetic respondent pool drawn from it reproduces Fig. 1 and
//! the §2 headline numbers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Answer to "do you deploy Carrier-Grade NAT?" (Fig. 1a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CgnAnswer {
    /// 38% — "yes, already deployed".
    AlreadyDeployed,
    /// 12% — "considering deployment".
    Considering,
    /// 50% — "no plans to deploy".
    NoPlans,
}

/// Answer to "do you deploy IPv6?" (Fig. 1b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ipv6Answer {
    /// 32% — most/all subscribers.
    MostOrAll,
    /// 35% — some subscribers.
    Some,
    /// 11% — plans to deploy soon.
    PlansSoon,
    /// 22% — no plans.
    NoPlans,
}

/// One synthetic survey respondent.
#[derive(Debug, Clone)]
pub struct Respondent {
    pub cgn: CgnAnswer,
    pub ipv6: Ipv6Answer,
    /// Faces IPv4 scarcity today (>40% of respondents).
    pub faces_scarcity: bool,
    /// Expects scarcity soon (another ~10%).
    pub scarcity_looming: bool,
    /// Has bought (3 ISPs) or considered buying (15) IPv4 space.
    pub bought_space: bool,
    pub considered_buying: bool,
    /// Faces scarcity of *internal* address space (3 ISPs).
    pub internal_scarcity: bool,
    /// Subscriber-to-IPv4-address ratio (up to 20:1 reported).
    pub subs_per_address: f64,
}

/// Survey generation parameters (the paper's percentages).
#[derive(Debug, Clone)]
pub struct SurveyConfig {
    pub respondents: usize,
    pub seed: u64,
    pub p_cgn_deployed: f64,
    pub p_cgn_considering: f64,
    pub p_ipv6_most: f64,
    pub p_ipv6_some: f64,
    pub p_ipv6_soon: f64,
    pub p_scarcity: f64,
    pub p_scarcity_looming: f64,
}

impl Default for SurveyConfig {
    fn default() -> Self {
        SurveyConfig {
            respondents: 75,
            seed: 0x4u64,
            p_cgn_deployed: 0.38,
            p_cgn_considering: 0.12,
            p_ipv6_most: 0.32,
            p_ipv6_some: 0.35,
            p_ipv6_soon: 0.11,
            p_scarcity: 0.42,
            p_scarcity_looming: 0.10,
        }
    }
}

/// The survey dataset plus its aggregations.
#[derive(Debug, Clone)]
pub struct Survey {
    pub respondents: Vec<Respondent>,
}

impl Survey {
    /// Draw a synthetic respondent pool.
    pub fn generate(config: &SurveyConfig) -> Survey {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let respondents = (0..config.respondents)
            .map(|_| {
                let x: f64 = rng.gen();
                let cgn = if x < config.p_cgn_deployed {
                    CgnAnswer::AlreadyDeployed
                } else if x < config.p_cgn_deployed + config.p_cgn_considering {
                    CgnAnswer::Considering
                } else {
                    CgnAnswer::NoPlans
                };
                let y: f64 = rng.gen();
                let ipv6 = if y < config.p_ipv6_most {
                    Ipv6Answer::MostOrAll
                } else if y < config.p_ipv6_most + config.p_ipv6_some {
                    Ipv6Answer::Some
                } else if y < config.p_ipv6_most + config.p_ipv6_some + config.p_ipv6_soon {
                    Ipv6Answer::PlansSoon
                } else {
                    Ipv6Answer::NoPlans
                };
                let faces_scarcity = rng.gen_bool(config.p_scarcity);
                let scarcity_looming = !faces_scarcity && rng.gen_bool(config.p_scarcity_looming);
                let bought_space = rng.gen_bool(3.0 / 75.0);
                let considered_buying = !bought_space && rng.gen_bool(15.0 / 75.0);
                let internal_scarcity = rng.gen_bool(3.0 / 75.0);
                let subs_per_address = if faces_scarcity {
                    // Heavy NATers report up to 20:1.
                    1.0 + rng.gen::<f64>().powi(2) * 19.0
                } else {
                    1.0
                };
                Respondent {
                    cgn,
                    ipv6,
                    faces_scarcity,
                    scarcity_looming,
                    bought_space,
                    considered_buying,
                    internal_scarcity,
                    subs_per_address,
                }
            })
            .collect();
        Survey { respondents }
    }

    pub fn len(&self) -> usize {
        self.respondents.len()
    }

    pub fn is_empty(&self) -> bool {
        self.respondents.is_empty()
    }

    fn share<F: Fn(&Respondent) -> bool>(&self, f: F) -> f64 {
        self.respondents.iter().filter(|r| f(r)).count() as f64 / self.len().max(1) as f64
    }

    /// Fig. 1a shares: (deployed, considering, no plans).
    pub fn cgn_shares(&self) -> (f64, f64, f64) {
        (
            self.share(|r| r.cgn == CgnAnswer::AlreadyDeployed),
            self.share(|r| r.cgn == CgnAnswer::Considering),
            self.share(|r| r.cgn == CgnAnswer::NoPlans),
        )
    }

    /// Fig. 1b shares: (most/all, some, plans soon, no plans).
    pub fn ipv6_shares(&self) -> (f64, f64, f64, f64) {
        (
            self.share(|r| r.ipv6 == Ipv6Answer::MostOrAll),
            self.share(|r| r.ipv6 == Ipv6Answer::Some),
            self.share(|r| r.ipv6 == Ipv6Answer::PlansSoon),
            self.share(|r| r.ipv6 == Ipv6Answer::NoPlans),
        )
    }

    /// §2 scarcity headline: share facing scarcity now.
    pub fn scarcity_share(&self) -> f64 {
        self.share(|r| r.faces_scarcity)
    }

    /// Highest reported subscriber-to-address ratio.
    pub fn max_subs_per_address(&self) -> f64 {
        self.respondents
            .iter()
            .map(|r| r.subs_per_address)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_survey_matches_fig1_within_tolerance() {
        // 75 respondents is a small sample; allow a loose band.
        let s = Survey::generate(&SurveyConfig::default());
        assert_eq!(s.len(), 75);
        let (dep, cons, none) = s.cgn_shares();
        assert!((0.28..=0.48).contains(&dep), "deployed {dep}");
        assert!((0.04..=0.20).contains(&cons), "considering {cons}");
        assert!((0.40..=0.60).contains(&none), "no plans {none}");
        assert!((dep + cons + none - 1.0).abs() < 1e-9);
        let (most, some, soon, nop) = s.ipv6_shares();
        assert!((most + some + soon + nop - 1.0).abs() < 1e-9);
        assert!((0.22..=0.42).contains(&most));
    }

    #[test]
    fn larger_samples_converge() {
        let s = Survey::generate(&SurveyConfig {
            respondents: 20_000,
            ..SurveyConfig::default()
        });
        let (dep, cons, _) = s.cgn_shares();
        assert!((dep - 0.38).abs() < 0.02, "deployed {dep}");
        assert!((cons - 0.12).abs() < 0.02, "considering {cons}");
        assert!((s.scarcity_share() - 0.42).abs() < 0.02);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Survey::generate(&SurveyConfig::default());
        let b = Survey::generate(&SurveyConfig::default());
        assert_eq!(a.cgn_shares(), b.cgn_shares());
    }

    #[test]
    fn heavy_nat_ratios_reported() {
        let s = Survey::generate(&SurveyConfig {
            respondents: 5_000,
            ..SurveyConfig::default()
        });
        assert!(s.max_subs_per_address() > 15.0, "someone reports near 20:1");
    }
}
