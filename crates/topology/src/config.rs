//! Generator configuration: how much world to build and with which
//! behaviour distributions.

use nat_engine::{FilteringBehavior, MappingBehavior, Pooling, PortAllocation};
use netcore::Rir;

/// A CGN instance's behavioural profile drawn per deployment. The
/// distributions below are calibrated to §6 of the paper; see each field's
/// sampling site in [`crate::build`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgnBehaviorProfile {
    /// P(symmetric mapping) — Fig. 13b: ~11% of non-cellular CGN ASes,
    /// ~40% of cellular ones.
    pub p_symmetric: f64,
    /// P(full-cone filtering | not symmetric).
    pub p_full_cone: f64,
    /// P(address-restricted | not symmetric, not full cone).
    pub p_addr_restricted: f64,
    /// Port allocation mix (preservation, sequential, random) — Table 6.
    pub p_port_preserve: f64,
    pub p_port_sequential: f64,
    /// P(chunked allocation | random) — Table 6 finds 17 chunked ASes.
    pub p_chunk_given_random: f64,
    /// P(arbitrary pooling) — §6.2 finds 21%.
    pub p_arbitrary_pooling: f64,
    /// UDP timeout median (seconds); drawn log-normal-ish around this.
    pub udp_timeout_median_secs: u64,
    /// P(timeout beyond the 200 s detection horizon).
    pub p_timeout_unmeasurable: f64,
    /// Aggregation hop range between subscriber and CGN (inclusive),
    /// before the CGN itself: distance = hops + 1 (+1 more behind a CPE).
    pub agg_hops: (usize, usize),
}

impl CgnBehaviorProfile {
    /// Non-cellular eyeball CGNs (§6: Figs 12/13, Table 6).
    pub fn non_cellular() -> Self {
        CgnBehaviorProfile {
            p_symmetric: 0.11,
            p_full_cone: 0.30,
            p_addr_restricted: 0.30,
            p_port_preserve: 0.41,
            p_port_sequential: 0.22,
            p_chunk_given_random: 0.13,
            p_arbitrary_pooling: 0.21,
            udp_timeout_median_secs: 35,
            p_timeout_unmeasurable: 0.28,
            agg_hops: (1, 4),
        }
    }

    /// Cellular CGNs: bimodal mapping types (40% symmetric / 20% full
    /// cone), longer timeouts (median 65 s), CGN up to 12 hops deep.
    pub fn cellular() -> Self {
        CgnBehaviorProfile {
            p_symmetric: 0.40,
            p_full_cone: 0.33,
            p_addr_restricted: 0.25,
            p_port_preserve: 0.28,
            p_port_sequential: 0.26,
            p_chunk_given_random: 0.08,
            p_arbitrary_pooling: 0.21,
            udp_timeout_median_secs: 65,
            p_timeout_unmeasurable: 0.30,
            agg_hops: (0, 11),
        }
    }
}

/// Pin parts of the per-instance CGN behaviour draw to fixed values —
/// the scenario-library control knob of the detection campaign. Every
/// `None` keeps the [`CgnBehaviorProfile`] draw; `Some` overrides it
/// in ground truth and deployed configuration alike.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CgnPolicyOverride {
    /// Port-allocation policy. `Deterministic { ports_per_host: 0 }`
    /// asks the builder to auto-size the block: the largest power of
    /// two that still provisions a slot for every subscriber of the AS
    /// (RFC 7422 deployments are sized exactly this way).
    pub port_alloc: Option<PortAllocation>,
    pub mapping: Option<MappingBehavior>,
    pub filtering: Option<FilteringBehavior>,
    pub udp_timeout_secs: Option<u64>,
    pub pooling: Option<Pooling>,
    /// Clamp range `(min, max)` for the per-instance external pool
    /// size (the builder's default is `(n_subs / 3).clamp(8, 32)`).
    pub pool_size: Option<(usize, usize)>,
}

/// Full generator configuration.
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    pub seed: u64,
    /// Residential (non-cellular) eyeball AS count per RIR
    /// [AFRINIC, APNIC, ARIN, LACNIC, RIPE].
    pub residential_per_rir: [usize; 5],
    /// Cellular eyeball AS count per RIR.
    pub cellular_per_rir: [usize; 5],
    /// Non-eyeball (transit/stub) ASes per eyeball AS — registry/routing
    /// entries only, no hosts (the Table 5 "routed ASes" denominator).
    pub silent_as_ratio: usize,
    /// Subscribers per eyeball AS (uniform range).
    pub subscribers_per_as: (usize, usize),
    /// Ground-truth CGN deployment probability for residential ASes per
    /// RIR. Calibrated so *detected* rates match Fig. 6b (APNIC/RIPE more
    /// than twice the others).
    pub p_cgn_residential_per_rir: [f64; 5],
    /// Ground-truth CGN deployment probability for cellular ASes per RIR
    /// (AFRINIC lower — Fig. 6c).
    pub p_cgn_cellular_per_rir: [f64; 5],
    /// Fraction of subscribers behind the CGN when one is deployed
    /// (partial deployments, §2) — residential ASes.
    pub partial_deployment: (f64, f64),
    /// Same for cellular ASes (mostly full deployments; Table 4 shows
    /// only 5.7% of cellular sessions with public device addresses).
    pub partial_deployment_cellular: (f64, f64),
    /// P(a residential ISP hands out bridged modems instead of routing
    /// CPEs) — FastWEB-style ASes whose subscribers sit directly in the
    /// CGN realm (the strong-cluster case of Fig. 3b).
    pub p_bridged_modem_isp: f64,
    /// P(a residential subscriber has a CPE router).
    pub p_cpe_residential: f64,
    /// P(an AS has a BitTorrent user community at all) — ASes without
    /// one are invisible to the DHT crawl (part of Table 5's coverage
    /// story).
    pub p_as_bittorrent: f64,
    /// P(a subscriber device runs BitTorrent | the AS has a community).
    pub p_bittorrent: f64,
    /// P(a BitTorrent home has a second active BitTorrent device).
    pub p_second_bt_device: f64,
    /// P(CGN internal realm allows multicast) — one of the two §4.1
    /// internal-endpoint learning channels.
    pub p_cgn_multicast: f64,
    /// P(CGN hairpins) and P(hairpin keeps internal source | hairpins).
    pub p_cgn_hairpin: f64,
    pub p_hairpin_internal_src: f64,
    /// Number of distinct CPE models on the market.
    pub cpe_models: usize,
    /// P(an AS with CGN runs several distinct CGN instances) — the source
    /// of the mixed per-AS port-allocation strategies in Fig. 9.
    pub p_distributed_cgn: f64,
    /// Eyeball-list synthesis: coverage of the PBL- and APNIC-style lists.
    pub pbl_coverage: f64,
    pub apnic_coverage: f64,
    /// P(a cellular CGN uses routable space internally) — Fig. 7b.
    pub p_routable_internal_cellular: f64,
    /// State shards per CGN instance: every carrier NAT is deployed as
    /// a [`nat_engine::ShardedNat`] partitioned across this many
    /// external-IP shards (1 = a single-shard engine on the same code
    /// path). CPE routers stay monolithic.
    pub cgn_shards: u16,
    /// Optional pinned CGN policy for scenario-controlled worlds.
    pub cgn_policy: Option<CgnPolicyOverride>,
}

impl TopologyConfig {
    /// A small world for unit tests (a handful of ASes).
    pub fn tiny(seed: u64) -> Self {
        TopologyConfig {
            seed,
            residential_per_rir: [1, 2, 1, 1, 2],
            cellular_per_rir: [0, 1, 1, 0, 1],
            silent_as_ratio: 3,
            subscribers_per_as: (6, 10),
            ..Self::default_with_seed(seed)
        }
    }

    /// The default study scale: ~170 instrumented eyeball ASes.
    pub fn default_with_seed(seed: u64) -> Self {
        TopologyConfig {
            seed,
            residential_per_rir: [12, 30, 24, 16, 38],
            cellular_per_rir: [5, 9, 7, 5, 9],
            silent_as_ratio: 15,
            subscribers_per_as: (40, 80),
            p_cgn_residential_per_rir: [0.12, 0.40, 0.18, 0.20, 0.38],
            p_cgn_cellular_per_rir: [0.70, 0.97, 0.95, 0.93, 0.96],
            partial_deployment: (0.35, 1.0),
            partial_deployment_cellular: (0.80, 1.0),
            p_bridged_modem_isp: 0.18,
            p_cpe_residential: 0.95,
            p_as_bittorrent: 0.85,
            p_bittorrent: 0.62,
            p_second_bt_device: 0.25,
            p_cgn_multicast: 0.50,
            p_cgn_hairpin: 0.65,
            p_hairpin_internal_src: 0.75,
            cpe_models: 40,
            p_distributed_cgn: 0.55,
            pbl_coverage: 0.93,
            apnic_coverage: 0.95,
            p_routable_internal_cellular: 0.08,
            cgn_shards: 1,
            cgn_policy: None,
        }
    }

    /// Index of a RIR in the per-RIR arrays.
    pub fn rir_index(rir: Rir) -> usize {
        match rir {
            Rir::Afrinic => 0,
            Rir::Apnic => 1,
            Rir::Arin => 2,
            Rir::Lacnic => 3,
            Rir::Ripe => 4,
        }
    }

    /// Total eyeball ASes this config will build.
    pub fn eyeball_count(&self) -> usize {
        self.residential_per_rir.iter().sum::<usize>() + self.cellular_per_rir.iter().sum::<usize>()
    }
}

impl Default for TopologyConfig {
    fn default() -> Self {
        Self::default_with_seed(0xC6_1516)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rir_indexing_covers_all() {
        let mut seen = [false; 5];
        for r in Rir::ALL {
            seen[TopologyConfig::rir_index(r)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn default_scale_counts() {
        let c = TopologyConfig::default();
        assert_eq!(
            c.eyeball_count(),
            12 + 30 + 24 + 16 + 38 + 5 + 9 + 7 + 5 + 9
        );
        assert!(c.p_cgn_residential_per_rir[1] > 2.0 * c.p_cgn_residential_per_rir[0]);
    }

    #[test]
    fn tiny_is_small() {
        let c = TopologyConfig::tiny(1);
        assert!(c.eyeball_count() <= 12);
    }

    #[test]
    fn profiles_match_paper_shapes() {
        let nc = CgnBehaviorProfile::non_cellular();
        let cell = CgnBehaviorProfile::cellular();
        assert!(cell.p_symmetric > 3.0 * nc.p_symmetric);
        assert!(cell.udp_timeout_median_secs > nc.udp_timeout_median_secs);
        assert!(cell.agg_hops.1 > nc.agg_hops.1);
    }
}
