//! Machine-readable perf harness for the CGN dimensioning sweep.
//!
//! This is the BENCH-trajectory instrument for the sharded engine: it
//! runs the dimensioning sweep at 1×/4×/16× subscriber scale, times
//! every workload mix, and emits a [`PerfReport`] that serializes to
//! `BENCH_dimensioning.json` — the artifact the CI `perf` job uploads
//! and diffs against the committed `bench/baseline.json`
//! ([`check_against_baseline`]).
//!
//! Two cross-cutting measurements ride along:
//!
//! * **speedup** — the middle scale is run twice, sequentially
//!   (`threads = 1`) and with worker threads, and the flows/sec ratio
//!   is reported (`parallel_speedup`);
//! * **determinism** — the two passes must produce bit-identical
//!   [`cgn_traffic::RunSummary`] digests per mix; the harness panics
//!   otherwise, so every perf run doubles as a sequential-vs-sharded
//!   cross-check.

use cgn_study::dimensioning::{probe_latency_histogram, DimensioningConfig};
use cgn_study::DimensioningReport;
use cgn_telemetry::Record;
use cgn_traffic::{MetricsSummary, WorkloadMix};
use nat_engine::telemetry::TelemetryMode;
use nat_engine::PortAllocation;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Schema tag stamped into every report, for forward compatibility of
/// the committed baseline. `/2` added per-shard imbalance metrics and
/// the machine-relative `scaling_ratio`; `/3` added the median-of-N
/// per-scale envelope (`flows_per_sec_min`/`_max`) and the batch
/// (burst-pipeline) section; `/4` added the per-window
/// [`MetricsWindow::arena_chunks`](cgn_traffic::MetricsWindow)
/// level embedded in metrics sections and switched the scale sweep
/// to an untimed warm-up run plus pass-major interleaving across
/// scales (clock drift no longer biases the scaling ratio).
pub const SCHEMA: &str = "cgn-dimensioning-perf/4";

/// Default regression tolerance: fail when a machine-relative ratio
/// (scaling ratio, parallel speedup) drops by more than 20% against
/// the baseline.
pub const DEFAULT_TOLERANCE: f64 = 0.20;

/// Knobs of one harness run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfSettings {
    pub seed: u64,
    /// Subscribers at scale 1×.
    pub base_subscribers: u32,
    /// Scale multipliers to sweep (the middle one also measures the
    /// sequential-vs-parallel speedup).
    pub scales: Vec<u32>,
    /// Simulated seconds per mix.
    pub duration_secs: u64,
    /// NAT state shards (the parallelism axis).
    pub shards: u16,
    /// Worker threads: `0` = one per available core.
    pub threads: usize,
    /// Also measure the telemetry-sink overhead at the middle scale
    /// (sink off vs per-connection vs per-block) and attach a
    /// [`LoggingSection`] to the report. Costs two extra middle-scale
    /// sweeps, so it is opt-in (the CI logging leg turns it on).
    pub sink_overhead: bool,
    /// Also measure the runtime-metrics overhead at the middle scale
    /// (registries off vs windowed registries) and attach a
    /// [`MetricsSection`] to the report. Includes the cross-thread
    /// determinism check — the metrics-on pass is re-run sequentially
    /// and its snapshots must be bit-identical — plus a wall-clock
    /// [`TraceIndex`](cgn_telemetry::TraceIndex) probe-latency
    /// measurement. Costs up to three extra middle-scale passes, so it
    /// is opt-in (the CI `metrics` job turns it on).
    pub metrics_overhead: bool,
    /// Timed passes per scale: each scale is measured `passes` times,
    /// the median pass (by flows/sec) becomes the reported number and
    /// the min/max land in the artifact
    /// ([`ScalePerf::flows_per_sec_min`]/[`ScalePerf::flows_per_sec_max`]),
    /// so a gate trip is
    /// diagnosable from the JSON alone. Every pass must produce a
    /// bit-identical digest — the repeat doubles as a determinism
    /// check. `0` behaves like `1`.
    pub passes: usize,
    /// Also measure the burst-pipeline throughput at the middle scale
    /// ([`Nat::process_burst`](nat_engine::Nat::process_burst) at the
    /// [`BATCH_BURSTS`] sizes, digest-checked against the burst=1
    /// scalar-equivalent pass) and attach a [`BatchSection`]. Costs
    /// one extra middle-scale sweep per burst size, so it is opt-in
    /// (the CI `batch` job turns it on).
    pub batch_overhead: bool,
    /// Also measure the flow-tracing overhead at the middle scale
    /// (tracer off vs the flight recorder sampling 1-in-N flows with
    /// the phase profiler armed) and attach a [`TraceSection`] to the
    /// report. The traced pass must reproduce the untraced sweep's
    /// digest bit-for-bit — the leg doubles as the
    /// tracing-is-observation-only check. Costs one extra middle-scale
    /// sweep, so it is opt-in (the CI `trace` job turns it on).
    pub trace_overhead: bool,
}

impl PerfSettings {
    /// The configuration behind the committed baseline.
    pub fn standard() -> PerfSettings {
        PerfSettings {
            seed: 2016,
            base_subscribers: 1_000,
            scales: vec![1, 4, 16],
            duration_secs: 240,
            shards: 4,
            threads: 0,
            sink_overhead: false,
            metrics_overhead: false,
            passes: 3,
            batch_overhead: false,
            trace_overhead: false,
        }
    }

    /// A seconds-scale smoke configuration (CI sanity, unit tests).
    pub fn quick() -> PerfSettings {
        PerfSettings {
            seed: 2016,
            base_subscribers: 150,
            scales: vec![1, 4],
            duration_secs: 90,
            shards: 4,
            threads: 0,
            sink_overhead: false,
            metrics_overhead: false,
            passes: 1,
            batch_overhead: false,
            trace_overhead: false,
        }
    }

    fn dimensioning(&self, subscribers: u32, threads: usize) -> DimensioningConfig {
        let mut c = DimensioningConfig::small(self.seed);
        c.subscribers = subscribers;
        c.shards = self.shards;
        c.external_ips_per_shard = 2;
        c.threads = threads;
        c.duration_secs = self.duration_secs;
        c.sample_secs = 30;
        c.sweep_secs = 20;
        c.mixes = WorkloadMix::all();
        c
    }
}

/// Timing of one workload mix at one scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixPerf {
    pub mix: String,
    pub flows: u64,
    pub packets: u64,
    pub peak_mappings: u64,
    pub wall_secs: f64,
    pub flows_per_sec: f64,
    /// Per-shard flow skew (`max/mean`, 1.0 = balanced).
    pub flow_imbalance: f64,
    /// Per-shard peak-mapping skew (`max/mean`, 1.0 = balanced).
    pub mapping_imbalance: f64,
}

/// One scale step of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalePerf {
    pub scale: u32,
    pub subscribers: u32,
    pub flows: u64,
    pub peak_mappings: u64,
    pub wall_secs: f64,
    /// Flows/sec of the **median** pass (by throughput) out of
    /// [`PerfSettings::passes`] timed passes of this scale.
    pub flows_per_sec: f64,
    /// Slowest pass of the envelope (equals `flows_per_sec` on
    /// single-pass runs). A gate trip with a wide `[min, max]` spread
    /// is noise; a narrow spread below the floor is a real regression
    /// — diagnosable from the artifact alone.
    pub flows_per_sec_min: f64,
    /// Fastest pass of the envelope.
    pub flows_per_sec_max: f64,
    /// Worst per-shard flow skew across the mixes of this scale.
    pub flow_imbalance: f64,
    /// Worst per-shard peak-mapping skew across the mixes.
    pub mapping_imbalance: f64,
    pub mixes: Vec<MixPerf>,
}

/// One telemetry configuration's throughput at the middle scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SinkOverheadPerf {
    /// `off`, `per-connection` or `per-block`.
    pub mode: String,
    /// Allocation policy the leg ran (label).
    pub port_alloc: String,
    pub flows: u64,
    pub wall_secs: f64,
    pub flows_per_sec: f64,
    pub log_records: u64,
    pub log_bytes: u64,
    /// Flows/s relative to the sink-off pass of the same run
    /// (`1.0` = no overhead; self-relative, so machine-independent).
    pub relative_throughput: f64,
}

/// The sink-overhead section attached by [`PerfSettings::sink_overhead`]
/// runs: the zero-cost-when-disabled claim, measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoggingSection {
    /// Scale the overhead was measured at.
    pub scale: u32,
    pub subscribers: u32,
    pub rows: Vec<SinkOverheadPerf>,
}

/// Standalone machine-readable logging-leg artifact
/// (`BENCH_logging.json`): the sink-overhead rows plus enough
/// metadata to interpret them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoggingReport {
    pub schema: String,
    pub seed: u64,
    pub shards: u16,
    pub threads: usize,
    pub duration_secs: u64,
    pub logging: LoggingSection,
}

/// Schema tag of [`LoggingReport`].
pub const LOGGING_SCHEMA: &str = "cgn-logging-perf/1";

/// One metrics configuration's throughput at the middle scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsOverheadPerf {
    /// `off` (no registries installed), `windowed` (per-shard
    /// registries plus the sample-barrier window aggregator), or
    /// `windowed+scrape` (windowed registries behind a live
    /// `cgn_opsd::OpsServer` republished at every closed window while
    /// a client scrapes `/metrics` in a tight loop).
    pub mode: String,
    pub flows: u64,
    pub wall_secs: f64,
    pub flows_per_sec: f64,
    /// Flows/s relative to the metrics-off pass of the same run
    /// (`1.0` = no overhead; self-relative, so machine-independent).
    pub relative_throughput: f64,
}

/// The windowed metrics of one workload mix from the metrics-on pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsMixPerf {
    pub mix: String,
    pub metrics: MetricsSummary,
}

/// Wall-clock traceability-query latency: up to 512 evenly-sampled
/// `TraceIndex` probes over the reference mix's decoded log, bucketed
/// by [`probe_latency_histogram`]. Wall-clock numbers live only in
/// this artifact layer — never in [`cgn_traffic::RunSummary`], which
/// is compared bit-for-bit across machines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeLatency {
    pub probes: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub mean_ns: f64,
}

impl ProbeLatency {
    pub fn from_histogram(h: &cgn_metrics::Histogram) -> ProbeLatency {
        // Interpolated quantiles: a log2 bucket upper bound overstates
        // the latency by up to 2x; interpolating within the bucket
        // keeps the reported nanoseconds comparable across runs whose
        // distributions straddle a bucket edge differently.
        ProbeLatency {
            probes: h.count,
            p50_ns: h.quantile_interpolated(0.50).round() as u64,
            p95_ns: h.quantile_interpolated(0.95).round() as u64,
            p99_ns: h.quantile_interpolated(0.99).round() as u64,
            mean_ns: h.mean(),
        }
    }
}

/// The metrics-overhead section attached by
/// [`PerfSettings::metrics_overhead`] runs: the
/// disabled-registry-is-free claim measured, the cross-thread
/// snapshot-determinism check passed, and the full per-mix window
/// series for the standalone [`MetricsReport`] artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSection {
    /// Scale the overhead was measured at.
    pub scale: u32,
    pub subscribers: u32,
    /// Aggregation window of the metrics-on pass (simulated seconds).
    pub window_secs: u64,
    /// `off` vs `windowed` vs `windowed+scrape` throughput rows.
    pub rows: Vec<MetricsOverheadPerf>,
    /// Folded FNV digest of every mix's final metric snapshot. The
    /// harness asserts the same digest from a sequential re-run, so a
    /// report carrying this field has passed the cross-thread
    /// bit-identical check.
    pub snapshot_digest: String,
    /// Worst per-window shard-flow skew across the mixes (`max/mean`).
    pub worst_window_flow_imbalance: f64,
    /// Start of that worst window (simulated seconds).
    pub worst_window_start_secs: u64,
    /// Per-mix windowed metrics from the metrics-on pass.
    pub mixes: Vec<MetricsMixPerf>,
    /// Wall-clock `TraceIndex` probe latency over the reference mix.
    pub probe_latency: Option<ProbeLatency>,
}

impl MetricsSection {
    /// Prometheus text-format exposition of every mix's final
    /// snapshot, one `# mix` stanza per workload mix.
    pub fn exposition(&self) -> String {
        let mut out = String::new();
        for m in &self.mixes {
            out.push_str(&format!("# mix {}\n", m.mix));
            out.push_str(&cgn_metrics::expo::render(&m.metrics.last));
        }
        out
    }
}

/// Standalone machine-readable metrics artifact
/// (`BENCH_metrics.json`): the windowed aggregates and overhead rows
/// plus enough metadata to interpret them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    pub schema: String,
    pub seed: u64,
    pub shards: u16,
    pub threads: usize,
    pub duration_secs: u64,
    pub metrics: MetricsSection,
}

/// Schema tag of [`MetricsReport`].
pub const METRICS_SCHEMA: &str = "cgn-metrics/1";

impl MetricsReport {
    /// Build the artifact from a metrics-enabled dimensioning run (the
    /// `repro -- dimensioning --metrics` path): window aggregates,
    /// snapshot digest and worst-window skew, but no overhead rows —
    /// those need the timed off/on passes only [`run_perf`] does.
    /// `None` unless the run had `metrics_window_secs` set.
    pub fn from_dimensioning(report: &DimensioningReport) -> Option<MetricsReport> {
        let window_secs = report.config.metrics_window_secs?;
        let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
        let mut worst = 0.0f64;
        let mut worst_start = 0u64;
        let mut mixes = Vec::new();
        for run in &report.runs {
            let m = run.metrics.as_ref()?;
            digest ^= m.last.digest();
            digest = digest.wrapping_mul(0x1000_0000_01b3);
            if m.worst_window_flow_imbalance > worst {
                worst = m.worst_window_flow_imbalance;
                worst_start = m.worst_window_start_secs;
            }
            mixes.push(MetricsMixPerf {
                mix: run.mix_name.clone(),
                metrics: m.clone(),
            });
        }
        Some(MetricsReport {
            schema: METRICS_SCHEMA.to_string(),
            seed: report.config.seed,
            shards: report.config.shards,
            threads: report.config.threads,
            duration_secs: report.config.duration_secs,
            metrics: MetricsSection {
                scale: 1,
                subscribers: report.config.subscribers,
                window_secs,
                rows: Vec::new(),
                snapshot_digest: format!("{digest:016x}"),
                worst_window_flow_imbalance: worst,
                worst_window_start_secs: worst_start,
                mixes,
                probe_latency: None,
            },
        })
    }
}

/// Burst sizes the batch leg sweeps. The first entry (`1`) is the
/// scalar-equivalent reference every `relative_throughput` is measured
/// against, and the last (`128`) is the one the CI `batch` gate pins
/// to ≥ 1.0× scalar.
pub const BATCH_BURSTS: [usize; 4] = [1, 8, 32, 128];

/// One burst size's throughput at the middle scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BurstPerf {
    /// Packets per [`Nat::process_burst`](nat_engine::Nat::process_burst)
    /// call the driver drained per shard.
    pub burst: usize,
    pub flows: u64,
    pub wall_secs: f64,
    pub flows_per_sec: f64,
    /// Flows/s relative to the burst=1 pass of the same run (`1.0` =
    /// parity with the scalar path; self-relative, so
    /// machine-independent).
    pub relative_throughput: f64,
}

/// The burst-pipeline section attached by
/// [`PerfSettings::batch_overhead`] runs: throughput per burst size,
/// with every row's [`cgn_traffic::RunSummary`] digest asserted
/// bit-identical to the burst=1 reference — a report carrying this
/// section has passed the scalar-vs-batched equivalence check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchSection {
    /// Scale the leg was measured at.
    pub scale: u32,
    pub subscribers: u32,
    /// Prefetch lookahead of the burst pipeline (packets).
    pub prefetch_distance: usize,
    pub rows: Vec<BurstPerf>,
    /// Folded per-mix digest, identical across every burst size by
    /// construction (the leg panics otherwise).
    pub digest: String,
    /// Inbound-reply sweep + arena occupancy (schema `/2`; `None` in
    /// `/1` artifacts, which keeps them parseable).
    pub inbound: Option<InboundBatchSection>,
}

/// The inbound leg of the batch section (schema `/2`): the same burst
/// sizes re-swept with [`INBOUND_REPLY_PERMILLE`] of forwarded flows
/// answered in-batch, so every millisecond batch also drains a reply
/// burst through
/// [`Nat::process_inbound_burst`](nat_engine::Nat::process_inbound_burst).
/// Rows are relative to the leg's own burst=1 pass (inbound path
/// taken packet-at-a-time), and every row's folded digest must match
/// that reference bit-for-bit — the sweep doubles as the
/// inbound scalar-vs-burst equivalence check. The CI `batch` gate
/// pins the burst-128 row to ≥ 1.0× scalar.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InboundBatchSection {
    /// Permille of forwarded flows receiving an in-batch reply.
    pub reply_permille: u32,
    pub rows: Vec<BurstPerf>,
    /// Folded per-mix digest of the inbound-enabled runs, identical
    /// across burst sizes (differs from the outbound section's digest
    /// because the reply leg changes engine stats).
    pub digest: String,
    /// Arena occupancy at the largest (LLC-stress) scale.
    pub arena: ArenaPerf,
}

/// Before/after slab-arena occupancy from a full run at the largest
/// scale, reduced from the per-window
/// [`arena_chunks`](cgn_traffic::MetricsWindow::arena_chunks) series.
/// `chunks_grown_after_warmup` is the CI-gated number: `0` means the
/// chunked arena stopped allocating after warm-up, i.e. the steady
/// state that used to ride through `Vec` doubling copy-storms now
/// runs on stable 2 MiB chunks with zero slab reallocation copies
/// (arena growth appends a chunk and never moves a slot).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArenaPerf {
    pub scale: u32,
    pub subscribers: u32,
    /// Sim-seconds treated as warm-up (half the run).
    pub warmup_secs: u64,
    /// Chunks mapped across shards at the last window inside warm-up.
    pub chunks_warm: u64,
    /// Chunks mapped at run end.
    pub chunks_final: u64,
    /// `chunks_final - chunks_warm`; gated to `0`.
    pub chunks_grown_after_warmup: u64,
    /// Free (expired, reusable) slots at run end — churn headroom the
    /// address-ordered free list packs toward the arena front.
    pub slots_free_final: u64,
}

/// Standalone machine-readable batch artifact (`BENCH_batch.json`):
/// the burst-sweep rows plus enough metadata to interpret them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchReport {
    pub schema: String,
    pub seed: u64,
    pub shards: u16,
    pub threads: usize,
    pub duration_secs: u64,
    pub batch: BatchSection,
}

/// Schema tag of [`BatchReport`]. `/2` added the inbound-reply sweep
/// and arena occupancy ([`BatchSection::inbound`]).
pub const BATCH_SCHEMA: &str = "cgn-batch-perf/2";

/// Permille of forwarded flows the inbound batch leg answers in-batch
/// — heavy enough that the reply path is a first-order cost, light
/// enough that the sweep still predominantly measures the outbound
/// pipeline it rides on.
pub const INBOUND_REPLY_PERMILLE: u32 = 250;

/// Measure the wall-clock [`TraceIndex`](cgn_telemetry::TraceIndex)
/// probe-latency histogram for a dimensioning configuration: run its
/// reference mix with per-connection logging, decode the shard logs,
/// and time evenly-sampled attribution queries. `None` when the
/// configuration has no mixes.
pub fn measure_probe_latency(config: &DimensioningConfig) -> Option<ProbeLatency> {
    let mix = config.mixes.first()?.clone();
    let mut config = config.clone();
    config.telemetry = TelemetryMode::PerConnection;
    let (_, logs) = cgn_traffic::run_with_logs(&config.driver_config(mix));
    let records: Vec<Record> = logs
        .iter()
        .flat_map(|l| l.decode().expect("self-produced log decodes"))
        .collect();
    Some(ProbeLatency::from_histogram(&probe_latency_histogram(
        &records,
    )))
}

/// Flow-sampling rate of the perf trace leg: 1-in-N flows land in
/// the flight recorder — dense enough that every phase and span kind
/// shows up at the quick scale, sparse enough that the sampled pass
/// still predominantly measures the pipeline it observes.
pub const TRACE_SAMPLE_ONE_IN: u32 = 64;

/// One tracer configuration's throughput at the middle scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceOverheadPerf {
    /// `off` (no tracer installed — the sweep's own pass) or
    /// `sampled` (flight recorder at 1-in-[`TRACE_SAMPLE_ONE_IN`]
    /// plus the wall-clock phase profiler).
    pub mode: String,
    pub flows: u64,
    pub wall_secs: f64,
    pub flows_per_sec: f64,
    /// Flows/s relative to the tracer-off pass of the same run
    /// (`1.0` = no overhead; self-relative, so machine-independent).
    pub relative_throughput: f64,
}

/// Interpolated wall-clock latency quantiles of one pipeline phase,
/// merged across every mix of the traced pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasePerf {
    /// [`Phase::name`](cgn_trace::Phase::name) of the region.
    pub phase: String,
    pub count: u64,
    pub p50_ns: f64,
    pub p95_ns: f64,
    pub p99_ns: f64,
}

/// The tracing-overhead section attached by
/// [`PerfSettings::trace_overhead`] runs: the
/// tracer-absent-costs-one-branch claim priced, the traced pass
/// digest-checked against the untraced sweep (tracing is observation
/// only), the merged phase-latency table, and the reference mix's
/// flight recorder as Chrome-trace JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSection {
    /// Scale the overhead was measured at.
    pub scale: u32,
    pub subscribers: u32,
    /// Flow-sampling rate of the traced pass (1-in-N).
    pub sample_one_in: u32,
    /// Per-shard flight-recorder ring capacity (events).
    pub ring_capacity: usize,
    /// `off` vs `sampled` throughput rows.
    pub rows: Vec<TraceOverheadPerf>,
    /// Folded per-mix digest of the traced runs. [`measure_trace_leg`]
    /// asserts it equals the untraced sweep's digest, so a report
    /// carrying this section has passed the observation-only check.
    pub digest: String,
    /// Flight-recorder events retained across all mixes.
    pub events: u64,
    /// Flows that fell into the 1-in-N sample across all mixes.
    pub sampled_flows: u64,
    /// Events overwritten by the bounded rings across all mixes.
    pub evicted: u64,
    /// Per-phase latency quantiles, merged across mixes and shards.
    pub phases: Vec<PhasePerf>,
    /// Chrome-trace JSON of the reference (first) mix's dump — the
    /// uploadable Perfetto artifact (`perf -- trace-chrome=PATH`).
    pub chrome: String,
}

/// Standalone machine-readable trace artifact (`BENCH_trace.json`):
/// the tracing rows plus enough metadata to interpret them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceReport {
    pub schema: String,
    pub seed: u64,
    pub shards: u16,
    pub threads: usize,
    pub duration_secs: u64,
    pub trace: TraceSection,
}

/// Schema tag of [`TraceReport`].
pub const TRACE_SCHEMA: &str = "cgn-trace/1";

/// Time the dimensioning sweep at one scale with the flight recorder
/// sampling 1-in-[`TRACE_SAMPLE_ONE_IN`] flows and the phase profiler
/// armed. `off` is the tracer-free pass the sweep already timed;
/// `expected_digest` (when given) pins the traced pass to it — the
/// leg panics if installing the tracer changes any run digest.
pub fn measure_trace_leg(
    settings: &PerfSettings,
    scale: u32,
    threads: usize,
    off: &ScalePerf,
    expected_digest: Option<&str>,
) -> TraceSection {
    let subscribers = settings.base_subscribers * scale;
    let config = settings.dimensioning(subscribers, threads);
    let trace = cgn_traffic::TraceConfig::sampled(TRACE_SAMPLE_ONE_IN);
    let mut flows = 0u64;
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let mut profile = cgn_trace::PhaseProfiler::new();
    let mut events = 0u64;
    let mut sampled_flows = 0u64;
    let mut evicted = 0u64;
    let mut chrome = None;
    let t0 = Instant::now();
    for mix in &config.mixes {
        let mut d = config.driver_config(mix.clone());
        d.trace = trace;
        let mut session = cgn_traffic::DriverSession::new(&d);
        while session.step().is_some() {}
        if let Some(p) = session.phase_profile() {
            profile.merge(&p);
        }
        let dump = session
            .trace_dump()
            .expect("tracer installed for the traced pass");
        events += dump.events.len() as u64;
        sampled_flows += dump.sampled_flows;
        evicted += dump.evicted;
        if chrome.is_none() {
            chrome = Some(cgn_trace::chrome_trace_json(&dump));
        }
        let (summary, _) = session.finish();
        flows += summary.flows_started;
        digest ^= summary.digest();
        digest = digest.wrapping_mul(0x1000_0000_01b3);
    }
    let wall_secs = t0.elapsed().as_secs_f64();
    let digest = format!("{digest:016x}");
    if let Some(expected) = expected_digest {
        assert_eq!(
            digest, expected,
            "installing the tracer must not change any run digest              (tracing is observation only)"
        );
    }
    let fps = flows as f64 / wall_secs.max(1e-9);
    TraceSection {
        scale,
        subscribers,
        sample_one_in: trace.sample_one_in,
        ring_capacity: trace.ring_capacity,
        rows: vec![
            TraceOverheadPerf {
                mode: "off".to_string(),
                flows: off.flows,
                wall_secs: off.wall_secs,
                flows_per_sec: off.flows_per_sec,
                relative_throughput: 1.0,
            },
            TraceOverheadPerf {
                mode: "sampled".to_string(),
                flows,
                wall_secs,
                flows_per_sec: fps,
                relative_throughput: fps / off.flows_per_sec.max(1e-9),
            },
        ],
        digest,
        events,
        sampled_flows,
        evicted,
        phases: profile
            .percentile_rows()
            .into_iter()
            .map(|(phase, p50, p95, p99, count)| PhasePerf {
                phase: phase.name().to_string(),
                count,
                p50_ns: p50,
                p95_ns: p95,
                p99_ns: p99,
            })
            .collect(),
        chrome: chrome.expect("at least one mix ran"),
    }
}

/// The full machine-readable report (`BENCH_dimensioning.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    pub schema: String,
    pub seed: u64,
    pub shards: u16,
    /// Resolved worker-thread count used for the scale sweep.
    pub threads: usize,
    pub available_cores: usize,
    pub duration_secs: u64,
    pub scales: Vec<ScalePerf>,
    /// Flows/sec of the middle scale run with `threads = 1`.
    pub sequential_flows_per_sec: f64,
    /// Flows/sec of the middle scale run with worker threads.
    pub parallel_flows_per_sec: f64,
    /// `parallel / sequential`; 1.0 when only one core is available.
    pub parallel_speedup: f64,
    /// Flows/sec of the largest scale over the smallest — the
    /// state-table-growth degradation the slab store exists to fight.
    /// Self-measured per run, so it compares across machines.
    pub scaling_ratio: f64,
    /// Folded per-mix digest of the speedup scale — equal between the
    /// sequential and parallel pass by construction (the harness
    /// asserts it), and useful to diff across machines.
    pub digest: String,
    /// Sink-overhead measurement (only on [`PerfSettings::sink_overhead`]
    /// runs; absent from older baselines — `Option` keeps the
    /// committed `bench/baseline.json` parseable unchanged).
    pub logging: Option<LoggingSection>,
    /// Metrics-overhead measurement (only on
    /// [`PerfSettings::metrics_overhead`] runs; `Option` for the same
    /// baseline-compatibility reason as `logging`).
    pub metrics: Option<MetricsSection>,
    /// Burst-pipeline measurement (only on
    /// [`PerfSettings::batch_overhead`] runs; `Option` for the same
    /// baseline-compatibility reason as `logging`).
    pub batch: Option<BatchSection>,
    /// Tracing-overhead measurement (only on
    /// [`PerfSettings::trace_overhead`] runs; `Option` for the same
    /// baseline-compatibility reason as `logging`).
    pub trace: Option<TraceSection>,
}

impl PerfReport {
    /// The standalone `BENCH_logging.json` artifact, when this run
    /// measured sink overhead.
    pub fn logging_report(&self) -> Option<LoggingReport> {
        self.logging.as_ref().map(|section| LoggingReport {
            schema: LOGGING_SCHEMA.to_string(),
            seed: self.seed,
            shards: self.shards,
            threads: self.threads,
            duration_secs: self.duration_secs,
            logging: section.clone(),
        })
    }

    /// The standalone `BENCH_metrics.json` artifact, when this run
    /// measured metrics overhead.
    pub fn metrics_report(&self) -> Option<MetricsReport> {
        self.metrics.as_ref().map(|section| MetricsReport {
            schema: METRICS_SCHEMA.to_string(),
            seed: self.seed,
            shards: self.shards,
            threads: self.threads,
            duration_secs: self.duration_secs,
            metrics: section.clone(),
        })
    }

    /// The standalone `BENCH_batch.json` artifact, when this run
    /// measured the burst-pipeline sweep.
    pub fn batch_report(&self) -> Option<BatchReport> {
        self.batch.as_ref().map(|section| BatchReport {
            schema: BATCH_SCHEMA.to_string(),
            seed: self.seed,
            shards: self.shards,
            threads: self.threads,
            duration_secs: self.duration_secs,
            batch: section.clone(),
        })
    }

    /// The standalone `BENCH_trace.json` artifact, when this run
    /// measured the tracing overhead.
    pub fn trace_report(&self) -> Option<TraceReport> {
        self.trace.as_ref().map(|section| TraceReport {
            schema: TRACE_SCHEMA.to_string(),
            seed: self.seed,
            shards: self.shards,
            threads: self.threads,
            duration_secs: self.duration_secs,
            trace: section.clone(),
        })
    }
}

/// Measure one scale: [`PerfSettings::passes`] timed passes back to
/// back, folded by [`fold_passes`]. The scale sweep in [`run_perf`]
/// interleaves its passes across scales instead and folds the same
/// way; this consecutive variant serves the sequential speedup leg.
fn measure_scale(settings: &PerfSettings, scale: u32, threads: usize) -> (ScalePerf, u64) {
    let passes = settings.passes.max(1);
    fold_passes(
        scale,
        (0..passes)
            .map(|_| measure_scale_once(settings, scale, threads))
            .collect(),
    )
}

/// Fold repeated passes of one scale: median by flows/sec reported,
/// min/max recorded as the envelope, digests asserted bit-identical
/// across passes (the repeat is also a determinism check).
fn fold_passes(scale: u32, mut runs: Vec<(ScalePerf, u64)>) -> (ScalePerf, u64) {
    let digest = runs[0].1;
    assert!(
        runs.iter().all(|(_, d)| *d == digest),
        "every pass of scale {scale}x must produce a bit-identical digest"
    );
    runs.sort_by(|a, b| a.0.flows_per_sec.total_cmp(&b.0.flows_per_sec));
    let min = runs.first().map(|(p, _)| p.flows_per_sec).unwrap_or(0.0);
    let max = runs.last().map(|(p, _)| p.flows_per_sec).unwrap_or(0.0);
    let mut median = runs.swap_remove(runs.len() / 2).0;
    median.flows_per_sec_min = min;
    median.flows_per_sec_max = max;
    (median, digest)
}

/// One timed pass of the dimensioning sweep at one scale.
fn measure_scale_once(settings: &PerfSettings, scale: u32, threads: usize) -> (ScalePerf, u64) {
    let subscribers = settings.base_subscribers * scale;
    let config = settings.dimensioning(subscribers, threads);
    let mut mixes = Vec::new();
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let t0 = Instant::now();
    for mix in &config.mixes {
        let m0 = Instant::now();
        let summary = cgn_traffic::run(&config.driver_config(mix.clone()));
        let wall = m0.elapsed().as_secs_f64();
        digest ^= summary.digest();
        digest = digest.wrapping_mul(0x1000_0000_01b3);
        mixes.push(MixPerf {
            mix: summary.mix_name.clone(),
            flows: summary.flows_started,
            packets: summary.packets_sent,
            peak_mappings: summary.report.peak_mappings,
            wall_secs: wall,
            flows_per_sec: summary.flows_started as f64 / wall.max(1e-9),
            flow_imbalance: summary.shard_load.flow_imbalance,
            mapping_imbalance: summary.shard_load.mapping_imbalance,
        });
    }
    let wall = t0.elapsed().as_secs_f64();
    let flows: u64 = mixes.iter().map(|m| m.flows).sum();
    let fps = flows as f64 / wall.max(1e-9);
    (
        ScalePerf {
            scale,
            subscribers,
            flows,
            peak_mappings: mixes.iter().map(|m| m.peak_mappings).max().unwrap_or(0),
            wall_secs: wall,
            flows_per_sec: fps,
            flows_per_sec_min: fps,
            flows_per_sec_max: fps,
            flow_imbalance: mixes.iter().map(|m| m.flow_imbalance).fold(0.0, f64::max),
            mapping_imbalance: mixes
                .iter()
                .map(|m| m.mapping_imbalance)
                .fold(0.0, f64::max),
            mixes,
        },
        digest,
    )
}

/// Run the harness: the scale sweep with worker threads, plus the
/// sequential pass of the middle scale for the speedup and determinism
/// cross-check.
pub fn run_perf(settings: &PerfSettings) -> PerfReport {
    assert!(!settings.scales.is_empty(), "need at least one scale");
    let available_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = match settings.threads {
        0 => available_cores,
        n => n,
    };

    // One untimed pass of the largest scale's first mix before any
    // timing: a fresh process gets its first seconds at boost clocks
    // on small containers, and whichever scale is measured first
    // pockets that turbo margin — the scaling ratio then tracks the
    // frequency governor, not the CGN. Burning the boost window up
    // front (and pre-faulting the largest working set) puts every
    // timed pass at sustained clocks.
    {
        let largest = *settings.scales.last().expect("scales non-empty");
        let config = settings.dimensioning(settings.base_subscribers * largest, threads);
        let mix = config.mixes.first().cloned().expect("mixes non-empty");
        let _ = cgn_traffic::run(&config.driver_config(mix));
    }

    // Pass-major, scale-minor: every scale is timed at every point of
    // any residual clock/thermal drift, so drift cancels out of the
    // scaling ratio instead of deflating whichever scale ran last.
    let passes = settings.passes.max(1);
    let mut per_scale: Vec<Vec<(ScalePerf, u64)>> =
        settings.scales.iter().map(|_| Vec::new()).collect();
    for _ in 0..passes {
        for (runs, &scale) in per_scale.iter_mut().zip(&settings.scales) {
            runs.push(measure_scale_once(settings, scale, threads));
        }
    }
    let mut scales = Vec::new();
    let mut digests = Vec::new();
    for (runs, &scale) in per_scale.into_iter().zip(&settings.scales) {
        let (perf, digest) = fold_passes(scale, runs);
        scales.push(perf);
        digests.push(digest);
    }

    // Speedup + determinism cross-check on the middle scale.
    let mid = settings.scales.len() / 2;
    let parallel_flows_per_sec = scales[mid].flows_per_sec;
    let (sequential_flows_per_sec, digest) = if threads <= 1 {
        (parallel_flows_per_sec, digests[mid])
    } else {
        let (seq, seq_digest) = measure_scale(settings, settings.scales[mid], 1);
        assert_eq!(
            seq_digest, digests[mid],
            "sequential and parallel runs must be bit-identical"
        );
        (seq.flows_per_sec, seq_digest)
    };

    let scaling_ratio = match (scales.first(), scales.last()) {
        (Some(first), Some(last)) if first.flows_per_sec > 0.0 => {
            last.flows_per_sec / first.flows_per_sec
        }
        _ => 1.0,
    };

    // Sink-overhead legs: the middle scale re-run with per-connection
    // and per-block logging, compared against the sink-off pass the
    // sweep already timed (self-relative, so machine-independent).
    let logging = settings.sink_overhead.then(|| {
        let mid_scale = settings.scales[mid];
        let off = &scales[mid];
        let mut rows = vec![SinkOverheadPerf {
            mode: "off".to_string(),
            port_alloc: "random (sink disabled)".to_string(),
            flows: off.flows,
            wall_secs: off.wall_secs,
            flows_per_sec: off.flows_per_sec,
            log_records: 0,
            log_bytes: 0,
            relative_throughput: 1.0,
        }];
        let legs: [(&str, &str, TelemetryMode, Option<PortAllocation>); 2] = [
            (
                "per-connection",
                "random",
                TelemetryMode::PerConnection,
                None,
            ),
            (
                "per-block",
                "port-block/1024",
                TelemetryMode::PerBlock,
                Some(PortAllocation::PortBlock { block_size: 1024 }),
            ),
        ];
        for (mode_name, alloc_name, mode, alloc) in legs {
            let (flows, wall, records, bytes) =
                measure_sink_leg(settings, mid_scale, threads, mode, alloc);
            let fps = flows as f64 / wall.max(1e-9);
            rows.push(SinkOverheadPerf {
                mode: mode_name.to_string(),
                port_alloc: alloc_name.to_string(),
                flows,
                wall_secs: wall,
                flows_per_sec: fps,
                log_records: records,
                log_bytes: bytes,
                relative_throughput: fps / off.flows_per_sec.max(1e-9),
            });
        }
        LoggingSection {
            scale: mid_scale,
            subscribers: settings.base_subscribers * mid_scale,
            rows,
        }
    });

    // Metrics-overhead legs: the middle scale re-run with windowed
    // registries (timed against the registry-free pass the sweep
    // already produced), then re-run sequentially to assert the
    // snapshots are bit-identical across thread counts.
    let metrics = settings.metrics_overhead.then(|| {
        let mid_scale = settings.scales[mid];
        let off = &scales[mid];
        let leg = measure_metrics_leg(settings, mid_scale, threads);
        if threads > 1 {
            let seq = measure_metrics_leg(settings, mid_scale, 1);
            assert_eq!(
                seq.mixes, leg.mixes,
                "metric snapshots must be bit-identical across thread counts"
            );
            assert_eq!(seq.digest, leg.digest);
        }
        let fps = leg.flows as f64 / leg.wall_secs.max(1e-9);
        let scrape = measure_scrape_leg(settings, mid_scale, threads);
        assert!(
            scrape.scrapes > 0,
            "the scrape client must complete pulls while the leg runs"
        );
        let scrape_fps = scrape.flows as f64 / scrape.wall_secs.max(1e-9);
        let probe_config = settings.dimensioning(settings.base_subscribers * mid_scale, threads);
        MetricsSection {
            scale: mid_scale,
            subscribers: settings.base_subscribers * mid_scale,
            window_secs: leg.window_secs,
            rows: vec![
                MetricsOverheadPerf {
                    mode: "off".to_string(),
                    flows: off.flows,
                    wall_secs: off.wall_secs,
                    flows_per_sec: off.flows_per_sec,
                    relative_throughput: 1.0,
                },
                MetricsOverheadPerf {
                    mode: "windowed".to_string(),
                    flows: leg.flows,
                    wall_secs: leg.wall_secs,
                    flows_per_sec: fps,
                    relative_throughput: fps / off.flows_per_sec.max(1e-9),
                },
                MetricsOverheadPerf {
                    mode: "windowed+scrape".to_string(),
                    flows: scrape.flows,
                    wall_secs: scrape.wall_secs,
                    flows_per_sec: scrape_fps,
                    relative_throughput: scrape_fps / off.flows_per_sec.max(1e-9),
                },
            ],
            snapshot_digest: format!("{:016x}", leg.digest),
            worst_window_flow_imbalance: leg.worst_window_flow_imbalance,
            worst_window_start_secs: leg.worst_window_start_secs,
            mixes: leg.mixes,
            probe_latency: measure_probe_latency(&probe_config),
        }
    });

    // Burst-pipeline leg: the middle scale swept across burst sizes,
    // digest-checked against the burst=1 scalar-equivalent pass.
    let batch = settings
        .batch_overhead
        .then(|| measure_batch_leg(settings, settings.scales[mid], threads));

    // Tracing leg: the middle scale re-run with the flight recorder
    // and phase profiler on, digest-pinned to the untraced sweep.
    let trace = settings.trace_overhead.then(|| {
        measure_trace_leg(
            settings,
            settings.scales[mid],
            threads,
            &scales[mid],
            Some(&format!("{digest:016x}")),
        )
    });

    PerfReport {
        schema: SCHEMA.to_string(),
        seed: settings.seed,
        shards: settings.shards,
        threads,
        available_cores,
        duration_secs: settings.duration_secs,
        scales,
        sequential_flows_per_sec,
        parallel_flows_per_sec,
        parallel_speedup: parallel_flows_per_sec / sequential_flows_per_sec.max(1e-9),
        scaling_ratio,
        digest: format!("{digest:016x}"),
        logging,
        metrics,
        batch,
        trace,
    }
}

/// Re-measure the registry-disabled scale sweep once and fold it into
/// `report` as an envelope: each scale keeps its fastest pass, and the
/// self-measured scaling ratio is recomputed from the envelope.
///
/// Exists for gates tighter than single-pass noise (the 2% metrics
/// gate): on shared hardware one pass carries several percent of
/// interference jitter, which only ever *subtracts* throughput, so the
/// best-of-N envelope converges on the machine's actual capability —
/// while a real code regression depresses every pass alike and still
/// trips the gate.
pub fn fold_best_scales(report: &mut PerfReport, settings: &PerfSettings) {
    for (i, &scale) in settings.scales.iter().enumerate() {
        // One fresh pass per scale (not a full median-of-N): the fold
        // only ever widens the envelope, so a single pass per retry is
        // enough and keeps gate retries cheap.
        let (perf, _) = measure_scale_once(settings, scale, report.threads);
        let cur = &mut report.scales[i];
        let min = cur.flows_per_sec_min.min(perf.flows_per_sec);
        let max = cur.flows_per_sec_max.max(perf.flows_per_sec);
        if perf.flows_per_sec > cur.flows_per_sec {
            *cur = perf;
        }
        cur.flows_per_sec_min = min;
        cur.flows_per_sec_max = max;
    }
    if let (Some(first), Some(last)) = (report.scales.first(), report.scales.last()) {
        if first.flows_per_sec > 0.0 {
            report.scaling_ratio = last.flows_per_sec / first.flows_per_sec;
        }
    }
}

/// Outcome of one timed metrics-on pass of the dimensioning sweep.
struct MetricsLeg {
    flows: u64,
    wall_secs: f64,
    window_secs: u64,
    /// Folded FNV digest of every mix's final snapshot.
    digest: u64,
    worst_window_flow_imbalance: f64,
    worst_window_start_secs: u64,
    mixes: Vec<MetricsMixPerf>,
}

/// Time the dimensioning sweep at one scale with windowed metric
/// registries installed (window = the sweep's sample interval).
fn measure_metrics_leg(settings: &PerfSettings, scale: u32, threads: usize) -> MetricsLeg {
    let subscribers = settings.base_subscribers * scale;
    let mut config = settings.dimensioning(subscribers, threads);
    config.metrics_window_secs = Some(config.sample_secs);
    let window_secs = config.sample_secs;
    let mut flows = 0u64;
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let mut worst = 0.0f64;
    let mut worst_start = 0u64;
    let mut mixes = Vec::new();
    let t0 = Instant::now();
    for mix in &config.mixes {
        let summary = cgn_traffic::run(&config.driver_config(mix.clone()));
        flows += summary.flows_started;
        let m = summary
            .metrics
            .expect("metrics summary present when window is configured");
        digest ^= m.last.digest();
        digest = digest.wrapping_mul(0x1000_0000_01b3);
        if m.worst_window_flow_imbalance > worst {
            worst = m.worst_window_flow_imbalance;
            worst_start = m.worst_window_start_secs;
        }
        mixes.push(MetricsMixPerf {
            mix: summary.mix_name,
            metrics: m,
        });
    }
    MetricsLeg {
        flows,
        wall_secs: t0.elapsed().as_secs_f64(),
        window_secs,
        digest,
        worst_window_flow_imbalance: worst,
        worst_window_start_secs: worst_start,
        mixes,
    }
}

/// Outcome of the scrape-under-load pass: the metrics-on sweep with a
/// live operator endpoint being pulled throughout.
struct ScrapeLeg {
    flows: u64,
    wall_secs: f64,
    /// Successful `/metrics` pulls the client completed during the
    /// timed window (not asserted — load, not coverage).
    scrapes: u64,
}

/// Time the dimensioning sweep at one scale with windowed registries
/// *and* a live [`cgn_opsd::OpsServer`]: each mix runs through a
/// stepped [`cgn_traffic::DriverSession`] that drains its closed
/// windows and republishes the merged snapshot at every sample
/// barrier, while a background client scrapes `/metrics` in a tight
/// loop. The delta against the plain `windowed` row prices the whole
/// operator path — rendering, publishing, socket serving — under
/// constant pull pressure.
fn measure_scrape_leg(settings: &PerfSettings, scale: u32, threads: usize) -> ScrapeLeg {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let subscribers = settings.base_subscribers * scale;
    let mut config = settings.dimensioning(subscribers, threads);
    config.metrics_window_secs = Some(config.sample_secs);
    let server = cgn_opsd::OpsServer::bind("127.0.0.1:0").expect("bind scrape endpoint");
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut ok = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if cgn_opsd::scrape(addr, "/metrics").is_ok() {
                    ok += 1;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            ok
        })
    };
    let mut flows = 0u64;
    let t0 = Instant::now();
    for mix in &config.mixes {
        let mut session = cgn_traffic::DriverSession::new(&config.driver_config(mix.clone()));
        while session.step().is_some() {
            let _ = session.drain_closed_windows();
            if let Some(snap) = session.latest_snapshot() {
                server.publish(snap, &session.health());
            }
        }
        let (summary, _) = session.finish();
        flows += summary.flows_started;
    }
    let wall_secs = t0.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let scrapes = scraper.join().unwrap_or(0);
    drop(server);
    ScrapeLeg {
        flows,
        wall_secs,
        scrapes,
    }
}

/// Time one telemetry configuration of the dimensioning sweep at one
/// scale; returns `(flows, wall seconds, log records, log bytes)`.
fn measure_sink_leg(
    settings: &PerfSettings,
    scale: u32,
    threads: usize,
    mode: TelemetryMode,
    alloc: Option<PortAllocation>,
) -> (u64, f64, u64, u64) {
    let subscribers = settings.base_subscribers * scale;
    let mut config = settings.dimensioning(subscribers, threads);
    config.telemetry = mode;
    if let Some(a) = alloc {
        config.nat.port_alloc = a;
    }
    let mut flows = 0u64;
    let mut records = 0u64;
    let mut bytes = 0u64;
    let t0 = Instant::now();
    for mix in &config.mixes {
        let summary = cgn_traffic::run(&config.driver_config(mix.clone()));
        flows += summary.flows_started;
        records += summary.telemetry.records;
        bytes += summary.telemetry.bytes;
    }
    (flows, t0.elapsed().as_secs_f64(), records, bytes)
}

/// Time the dimensioning sweep at one scale across the
/// [`BATCH_BURSTS`] burst sizes. The burst=1 pass drains the wheel one
/// packet per [`Nat::process_burst`](nat_engine::Nat::process_burst)
/// call — the scalar-equivalent reference — and every other burst size
/// must reproduce its folded digest bit-for-bit (the leg panics
/// otherwise), so the timing sweep doubles as the scalar-vs-batched
/// equivalence check.
pub fn measure_batch_leg(settings: &PerfSettings, scale: u32, threads: usize) -> BatchSection {
    let subscribers = settings.base_subscribers * scale;
    let (rows, digest) = sweep_bursts(settings, subscribers, threads, 0);
    let (in_rows, in_digest) = sweep_bursts(settings, subscribers, threads, INBOUND_REPLY_PERMILLE);
    BatchSection {
        scale,
        subscribers,
        prefetch_distance: nat_engine::PREFETCH_DISTANCE,
        rows,
        digest: format!("{digest:016x}"),
        inbound: Some(InboundBatchSection {
            reply_permille: INBOUND_REPLY_PERMILLE,
            rows: in_rows,
            digest: format!("{in_digest:016x}"),
            arena: measure_arena_leg(settings, threads),
        }),
    }
}

/// Time the dimensioning sweep across the [`BATCH_BURSTS`] sizes at a
/// fixed reply ratio; returns the rows (relative to the burst=1 pass)
/// and the folded digest every burst size reproduced.
fn sweep_bursts(
    settings: &PerfSettings,
    subscribers: u32,
    threads: usize,
    reply_permille: u32,
) -> (Vec<BurstPerf>, u64) {
    let mut rows = Vec::new();
    let mut ref_digest: Option<u64> = None;
    for &burst in &BATCH_BURSTS {
        let mut config = settings.dimensioning(subscribers, threads);
        config.burst = burst;
        config.inbound_reply_permille = reply_permille;
        let mut flows = 0u64;
        let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
        let t0 = Instant::now();
        for mix in &config.mixes {
            let summary = cgn_traffic::run(&config.driver_config(mix.clone()));
            flows += summary.flows_started;
            digest ^= summary.digest();
            digest = digest.wrapping_mul(0x1000_0000_01b3);
        }
        let wall = t0.elapsed().as_secs_f64();
        match ref_digest {
            None => ref_digest = Some(digest),
            Some(reference) => assert_eq!(
                digest, reference,
                "burst={burst} (reply_permille={reply_permille}) diverged \
                 from the scalar-equivalent burst=1 pass"
            ),
        }
        rows.push(BurstPerf {
            burst,
            flows,
            wall_secs: wall,
            flows_per_sec: flows as f64 / wall.max(1e-9),
            relative_throughput: 0.0,
        });
    }
    let reference = rows[0].flows_per_sec.max(1e-9);
    for row in &mut rows {
        row.relative_throughput = row.flows_per_sec / reference;
    }
    (rows, ref_digest.expect("BATCH_BURSTS is non-empty"))
}

/// One full run of the first mix at the **largest** scale — the
/// LLC-stress point the arena exists for — with windowed metrics on,
/// reduced to the before/after chunk counts of [`ArenaPerf`]. The
/// inbound-reply leg is enabled so the measurement covers the same
/// hot paths the batch gate times.
pub fn measure_arena_leg(settings: &PerfSettings, threads: usize) -> ArenaPerf {
    let scale = *settings.scales.last().expect("scales non-empty");
    let subscribers = settings.base_subscribers * scale;
    let mut config = settings.dimensioning(subscribers, threads);
    config.metrics_window_secs = Some(config.sample_secs);
    config.inbound_reply_permille = INBOUND_REPLY_PERMILLE;
    // Measuring slab reuse needs a workload whose mapping population
    // actually plateaus inside the run. Two things stop that at the
    // sweep's own horizon: the paper's CGN keeps established TCP
    // state for hours (idle mappings never expire), and the
    // streaming/P2P/gaming classes hold keepalive-refreshed flows
    // with mean durations of 120–300 s (the live population ramps for
    // minutes). The arena leg therefore clamps every idle timeout to
    // 60 s and runs a 20-minute horizon with the warm-up barrier at
    // three quarters: by then every class sits within a fraction of a
    // chunk of its steady state, so any chunk mapped after warm-up is
    // a genuine reuse failure (freed slots not recycled), not ramp.
    config.duration_secs = config.duration_secs.max(1_200);
    let timeout = netcore::SimDuration::from_secs(60.min(config.duration_secs / 4).max(1));
    config.nat.udp_timeout = timeout;
    config.nat.tcp_established_timeout = timeout;
    config.nat.tcp_transitory_timeout = timeout;
    let mix = config.mixes.first().cloned().expect("mixes non-empty");
    let summary = cgn_traffic::run(&config.driver_config(mix));
    let m = summary
        .metrics
        .expect("metrics summary present when a window is configured");
    let warmup_secs = (config.duration_secs * 3 / 4).max(config.sample_secs);
    // Sample barriers land exactly on window starts, so the window
    // starting at `warmup_secs` carries the chunk count at that
    // instant.
    let chunks_warm = m
        .windows
        .iter()
        .take_while(|w| w.start_secs <= warmup_secs)
        .last()
        .map(|w| w.arena_chunks)
        .unwrap_or(0);
    let chunks_final = m.last.scalar("cgn_arena_chunks");
    ArenaPerf {
        scale,
        subscribers,
        warmup_secs,
        chunks_warm,
        chunks_final,
        chunks_grown_after_warmup: chunks_final.saturating_sub(chunks_warm),
        slots_free_final: m.last.scalar("cgn_arena_slots_free"),
    }
}

/// Re-measure the batch leg once and fold it into `section` as an
/// envelope: each burst size keeps its fastest pass and the relative
/// throughputs are recomputed. Same rationale as [`fold_best_scales`]:
/// interference jitter only subtracts throughput, so best-of-N
/// converges on the machine's capability while a real regression
/// depresses every pass alike.
pub fn fold_best_batch(section: &mut BatchSection, settings: &PerfSettings, threads: usize) {
    let fold = |rows: &mut Vec<BurstPerf>, fresh: Vec<BurstPerf>| {
        for (row, new) in rows.iter_mut().zip(fresh) {
            if new.flows_per_sec > row.flows_per_sec {
                *row = new;
            }
        }
        let reference = rows[0].flows_per_sec.max(1e-9);
        for row in rows.iter_mut() {
            row.relative_throughput = row.flows_per_sec / reference;
        }
    };
    // Re-sweep only the timed rows; the digests and the arena row are
    // deterministic and keep their original values.
    let (fresh_out, _) = sweep_bursts(settings, section.subscribers, threads, 0);
    fold(&mut section.rows, fresh_out);
    if let Some(inbound) = &mut section.inbound {
        let (fresh_in, _) = sweep_bursts(
            settings,
            section.subscribers,
            threads,
            inbound.reply_permille,
        );
        fold(&mut inbound.rows, fresh_in);
    }
}

/// Compare a fresh report against the committed baseline using
/// **machine-relative** ratios, so that a CI-runner hardware change
/// cannot trip the gate (the ROADMAP follow-up to the absolute
/// flows/sec compare):
///
/// * **scaling ratio** — each scale's flows/sec relative to the
///   smallest scale of the *same* run, compared to the baseline's
///   ratio for the same scale. Catches state-table-growth slowdowns
///   regardless of how fast the machine is in absolute terms.
/// * **parallel speedup** — compared only when both the baseline and
///   the current machine had more than one core (a single-core run
///   measures 1.0 by construction and carries no signal).
///
/// Absolute flows/sec are reported as informational notes but never
/// fail the check. Returns `Ok(notes)` when every ratio holds within
/// `tolerance` (fractional allowed drop), `Err(failures)` otherwise.
/// Faster-than-baseline runs always pass.
pub fn check_against_baseline(
    current: &PerfReport,
    baseline: &PerfReport,
    tolerance: f64,
) -> Result<Vec<String>, Vec<String>> {
    let mut notes = Vec::new();
    let mut failures = Vec::new();
    if baseline.schema != current.schema {
        failures.push(format!(
            "schema mismatch: baseline {} vs current {}",
            baseline.schema, current.schema
        ));
        return Err(failures);
    }
    let Some(base_first) = baseline.scales.first() else {
        failures.push("baseline has no scales".to_string());
        return Err(failures);
    };
    // The ratio reference must be the *same* scale in both reports —
    // looked up by scale number, not position, so a current run with
    // extra leading scales cannot shift the denominator.
    let Some(cur_first) = current.scales.iter().find(|s| s.scale == base_first.scale) else {
        failures.push(format!(
            "reference scale {}x missing from current run",
            base_first.scale
        ));
        return Err(failures);
    };
    for base in &baseline.scales {
        let Some(cur) = current.scales.iter().find(|s| s.scale == base.scale) else {
            failures.push(format!("scale {}x missing from current run", base.scale));
            continue;
        };
        if cur.subscribers != base.subscribers {
            failures.push(format!(
                "scale {}x configuration mismatch: {} subscribers vs baseline {} \
                 (ratios are not comparable — e.g. a `quick` run against the standard baseline)",
                base.scale, cur.subscribers, base.subscribers
            ));
            continue;
        }
        notes.push(format!(
            "info scale {:>2}x: {:>10.0} flows/s (baseline machine: {:>10.0})",
            base.scale, cur.flows_per_sec, base.flows_per_sec
        ));
        if base.scale == base_first.scale {
            continue; // the reference point of every ratio
        }
        let cur_ratio = cur.flows_per_sec / cur_first.flows_per_sec.max(1e-9);
        let base_ratio = base.flows_per_sec / base_first.flows_per_sec.max(1e-9);
        let floor = base_ratio * (1.0 - tolerance);
        let line = format!(
            "scale {:>2}x/{}x throughput ratio: {:.3} vs baseline {:.3} (floor {:.3})",
            base.scale, base_first.scale, cur_ratio, base_ratio, floor
        );
        if cur_ratio < floor {
            failures.push(format!("REGRESSION {line}"));
        } else {
            notes.push(format!("ok {line}"));
        }
    }
    if current.available_cores > 1 {
        // Armed on any multi-core runner. Against a multi-core baseline
        // the floor is relative to its measured speedup; against a
        // single-core baseline (which records ~1.0 by construction and
        // carries no scaling signal) the floor degrades to break-even:
        // worker threads must at least not cost throughput.
        let reference = baseline.parallel_speedup.max(1.0);
        let floor = reference * (1.0 - tolerance);
        let line = format!(
            "parallel speedup: {:.2}x vs baseline {:.2}x (floor {:.2}x)",
            current.parallel_speedup, baseline.parallel_speedup, floor
        );
        if current.parallel_speedup < floor {
            failures.push(format!("REGRESSION {line}"));
        } else {
            notes.push(format!("ok {line}"));
        }
    } else {
        notes.push(format!(
            "info parallel speedup {:.2}x not gated (single core here, baseline speedup {:.2}x)",
            current.parallel_speedup, baseline.parallel_speedup
        ));
    }
    if failures.is_empty() {
        Ok(notes)
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PerfSettings {
        PerfSettings {
            seed: 7,
            base_subscribers: 60,
            scales: vec![1, 2],
            duration_secs: 60,
            shards: 2,
            threads: 2,
            sink_overhead: false,
            metrics_overhead: false,
            passes: 1,
            batch_overhead: false,
            trace_overhead: false,
        }
    }

    #[test]
    fn harness_reports_every_scale_and_mix() {
        let r = run_perf(&tiny());
        assert_eq!(r.schema, SCHEMA);
        assert_eq!(r.scales.len(), 2);
        for s in &r.scales {
            assert_eq!(s.mixes.len(), WorkloadMix::all().len());
            assert!(s.flows > 0);
            assert!(s.flows_per_sec > 0.0);
        }
        assert!(r.parallel_speedup > 0.0);
        assert!(r.scaling_ratio > 0.0);
        assert!(
            r.scales
                .iter()
                .all(|s| s.flow_imbalance >= 1.0 && s.mapping_imbalance >= 1.0),
            "imbalance is max/mean over shards with load"
        );
        assert_eq!(r.scales[1].subscribers, 120);
        // The sequential cross-check inside run_perf did not panic:
        // parallel and sequential digests agreed.
        assert_eq!(r.digest.len(), 16);
    }

    #[test]
    fn sink_overhead_section_measures_all_modes() {
        let mut settings = tiny();
        settings.sink_overhead = true;
        let r = run_perf(&settings);
        let section = r.logging.as_ref().expect("overhead section attached");
        assert_eq!(section.scale, settings.scales[1], "middle scale");
        let modes: Vec<&str> = section.rows.iter().map(|row| row.mode.as_str()).collect();
        assert_eq!(modes, ["off", "per-connection", "per-block"]);
        assert_eq!(section.rows[0].relative_throughput, 1.0);
        assert_eq!(section.rows[0].log_bytes, 0, "disabled sink writes nothing");
        assert!(section.rows[1].log_bytes > 0, "per-connection log measured");
        assert!(section.rows[2].log_records > 0, "per-block log measured");
        assert!(
            section.rows[2].log_bytes < section.rows[1].log_bytes,
            "block logging must be smaller"
        );
        assert!(section.rows.iter().all(|row| row.relative_throughput > 0.0));
        // The standalone artifact carries the same rows.
        let standalone = r.logging_report().expect("logging report");
        assert_eq!(standalone.schema, LOGGING_SCHEMA);
        assert_eq!(standalone.logging, *section);
        let json = serde_json::to_string_pretty(&standalone).expect("serializable");
        let back: LoggingReport = serde_json::from_str(&json).expect("parseable");
        assert_eq!(standalone, back);
    }

    #[test]
    fn committed_baseline_parses_with_optional_sections() {
        // The committed baseline carries the batch section but not the
        // logging/metrics ones; the Option fields must absorb both the
        // present and the missing keys.
        let text = include_str!("../../../bench/baseline.json");
        let baseline: PerfReport = serde_json::from_str(text).expect("baseline parses");
        assert!(baseline.logging.is_none());
        assert!(baseline.metrics.is_none());
        assert!(
            baseline.trace.is_none(),
            "trace section is newer than the committed baseline"
        );
        assert_eq!(baseline.schema, SCHEMA);
        let batch = baseline
            .batch
            .as_ref()
            .expect("baseline has a batch section");
        let bursts: Vec<usize> = batch.rows.iter().map(|r| r.burst).collect();
        assert_eq!(bursts, BATCH_BURSTS);
        let inbound = batch
            .inbound
            .as_ref()
            .expect("baseline has an inbound batch sweep");
        let in_bursts: Vec<usize> = inbound.rows.iter().map(|r| r.burst).collect();
        assert_eq!(in_bursts, BATCH_BURSTS);
        assert_eq!(inbound.reply_permille, INBOUND_REPLY_PERMILLE);
        assert_eq!(
            inbound.arena.chunks_grown_after_warmup, 0,
            "committed baseline records zero slab growth after warm-up"
        );
        assert!(
            baseline
                .scales
                .iter()
                .all(|s| s.flows_per_sec_min <= s.flows_per_sec
                    && s.flows_per_sec <= s.flows_per_sec_max),
            "median sits inside the recorded envelope"
        );
    }

    #[test]
    fn median_of_passes_records_envelope() {
        let settings = PerfSettings {
            passes: 3,
            scales: vec![1],
            ..tiny()
        };
        // measure_scale also asserts the three passes were
        // bit-identical, so this doubles as a determinism check.
        let (perf, digest) = measure_scale(&settings, 1, 2);
        assert!(perf.flows_per_sec_min <= perf.flows_per_sec);
        assert!(perf.flows_per_sec <= perf.flows_per_sec_max);
        assert_ne!(digest, 0);
    }

    #[test]
    fn batch_leg_sweeps_bursts_and_checks_digests() {
        let mut settings = tiny();
        settings.batch_overhead = true;
        let r = run_perf(&settings);
        let section = r.batch.as_ref().expect("batch section attached");
        assert_eq!(section.scale, settings.scales[1], "middle scale");
        assert_eq!(section.prefetch_distance, nat_engine::PREFETCH_DISTANCE);
        let bursts: Vec<usize> = section.rows.iter().map(|row| row.burst).collect();
        assert_eq!(bursts, BATCH_BURSTS);
        assert_eq!(section.rows[0].relative_throughput, 1.0);
        assert!(section.rows.iter().all(|row| row.flows > 0));
        assert!(section.rows.iter().all(|row| row.relative_throughput > 0.0));
        // measure_batch_leg panicked if any burst size diverged from
        // the scalar-equivalent digest, so reaching here means the
        // equivalence check passed — for the inbound sweep too.
        assert_eq!(section.digest.len(), 16);
        let inbound = section.inbound.as_ref().expect("inbound sweep attached");
        assert_eq!(inbound.reply_permille, INBOUND_REPLY_PERMILLE);
        let in_bursts: Vec<usize> = inbound.rows.iter().map(|row| row.burst).collect();
        assert_eq!(in_bursts, BATCH_BURSTS);
        assert_eq!(inbound.rows[0].relative_throughput, 1.0);
        assert!(inbound.rows.iter().all(|row| row.flows > 0));
        assert_eq!(inbound.digest.len(), 16);
        assert_ne!(
            inbound.digest, section.digest,
            "the reply leg must actually change the runs"
        );
        // Arena occupancy: measured at the largest scale, chunks only
        // ever grow, and the tiny config reaches steady state early.
        let arena = &inbound.arena;
        assert_eq!(arena.scale, *settings.scales.last().unwrap());
        assert!(arena.chunks_final >= arena.chunks_warm);
        assert!(arena.chunks_warm > 0, "warm run maps at least one chunk");
        assert_eq!(
            arena.chunks_grown_after_warmup,
            arena.chunks_final - arena.chunks_warm
        );
        // Folding keeps the burst axis and only ever speeds rows up.
        let mut folded = section.clone();
        fold_best_batch(&mut folded, &settings, r.threads);
        assert_eq!(folded.rows.len(), section.rows.len());
        for (new, old) in folded.rows.iter().zip(&section.rows) {
            assert_eq!(new.burst, old.burst);
            assert!(new.flows_per_sec >= old.flows_per_sec);
        }
        let folded_in = folded.inbound.as_ref().expect("inbound rows folded");
        for (new, old) in folded_in.rows.iter().zip(&inbound.rows) {
            assert_eq!(new.burst, old.burst);
            assert!(new.flows_per_sec >= old.flows_per_sec);
        }
        assert_eq!(
            folded_in.arena, inbound.arena,
            "arena row untouched by folds"
        );
        // The standalone artifact carries the same section and
        // round-trips through JSON.
        let standalone = r.batch_report().expect("batch report");
        assert_eq!(standalone.schema, BATCH_SCHEMA);
        assert_eq!(standalone.batch, *section);
        let json = serde_json::to_string_pretty(&standalone).expect("serializable");
        let back: BatchReport = serde_json::from_str(&json).expect("parseable");
        assert_eq!(standalone, back);
    }

    #[test]
    fn trace_leg_prices_overhead_and_pins_digests() {
        let mut settings = tiny();
        settings.trace_overhead = true;
        let r = run_perf(&settings);
        let section = r.trace.as_ref().expect("trace section attached");
        assert_eq!(section.scale, settings.scales[1], "middle scale");
        assert_eq!(section.sample_one_in, TRACE_SAMPLE_ONE_IN);
        let modes: Vec<&str> = section.rows.iter().map(|row| row.mode.as_str()).collect();
        assert_eq!(modes, ["off", "sampled"]);
        assert_eq!(section.rows[0].relative_throughput, 1.0);
        assert!(section.rows[1].relative_throughput > 0.0);
        // measure_trace_leg asserted the traced digest equals the
        // untraced sweep's: installing the tracer changed nothing.
        assert_eq!(section.digest, r.digest);
        assert!(section.sampled_flows > 0, "1-in-64 catches flows here");
        assert!(section.events > 0, "flight recorder retained events");
        assert!(!section.phases.is_empty(), "profiler armed during leg");
        for p in &section.phases {
            assert!(p.count > 0);
            assert!(p.p99_ns >= p.p50_ns, "{:?}", p);
        }
        // The embedded Chrome trace is structurally valid JSON.
        assert!(section.chrome.contains(cgn_trace::CHROME_SCHEMA));
        let parsed: serde_json::Value =
            serde_json::from_str(&section.chrome).expect("chrome JSON parses");
        drop(parsed);
        // The standalone artifact carries the same section and
        // round-trips through JSON (nested chrome string included).
        let standalone = r.trace_report().expect("trace report");
        assert_eq!(standalone.schema, TRACE_SCHEMA);
        assert_eq!(standalone.trace, *section);
        let json = serde_json::to_string_pretty(&standalone).expect("serializable");
        let back: TraceReport = serde_json::from_str(&json).expect("parseable");
        assert_eq!(standalone, back);
    }

    #[test]
    fn metrics_overhead_section_measures_and_cross_checks() {
        let mut settings = tiny();
        settings.metrics_overhead = true;
        // run_perf itself asserts the sequential re-run produces
        // bit-identical metric snapshots (threads = 2 here).
        let r = run_perf(&settings);
        let section = r.metrics.as_ref().expect("metrics section attached");
        assert_eq!(section.scale, settings.scales[1], "middle scale");
        let modes: Vec<&str> = section.rows.iter().map(|row| row.mode.as_str()).collect();
        assert_eq!(modes, ["off", "windowed", "windowed+scrape"]);
        assert_eq!(section.rows[0].relative_throughput, 1.0);
        assert!(section.rows[1].relative_throughput > 0.0);
        assert!(
            section.rows[2].relative_throughput > 0.0 && section.rows[2].flows > 0,
            "scrape-under-load row measured"
        );
        assert_eq!(section.snapshot_digest.len(), 16);
        assert_eq!(section.mixes.len(), WorkloadMix::all().len());
        for m in &section.mixes {
            assert!(!m.metrics.windows.is_empty(), "windows aggregated");
            assert!(m.metrics.last.scalar("cgn_mappings_created_total") > 0);
        }
        assert!(
            section.worst_window_flow_imbalance >= 1.0,
            "some window saw flows on both shards"
        );
        let probe = section.probe_latency.as_ref().expect("probes timed");
        assert!(probe.probes > 0);
        assert!(probe.p99_ns >= probe.p50_ns);
        // Exposition renders every mix stanza in Prometheus text format.
        let expo = section.exposition();
        assert!(expo.contains("# TYPE cgn_mappings_created_total counter"));
        for m in &section.mixes {
            assert!(expo.contains(&format!("# mix {}", m.mix)));
        }
        // The standalone artifact carries the same section and
        // round-trips through JSON.
        let standalone = r.metrics_report().expect("metrics report");
        assert_eq!(standalone.schema, METRICS_SCHEMA);
        assert_eq!(standalone.metrics, *section);
        let json = serde_json::to_string_pretty(&standalone).expect("serializable");
        let back: MetricsReport = serde_json::from_str(&json).expect("parseable");
        assert_eq!(standalone, back);
    }

    #[test]
    fn metrics_report_builds_from_dimensioning_run() {
        let mut config = DimensioningConfig::small(9);
        config.subscribers = 80;
        config.shards = 2;
        config.duration_secs = 60;
        config.mixes = vec![WorkloadMix::all()[0].clone()];
        assert!(
            MetricsReport::from_dimensioning(&cgn_study::run_dimensioning(&config)).is_none(),
            "no metrics window configured"
        );
        config.metrics_window_secs = Some(30);
        let report = cgn_study::run_dimensioning(&config);
        let artifact = MetricsReport::from_dimensioning(&report).expect("metrics attached");
        assert_eq!(artifact.schema, METRICS_SCHEMA);
        assert_eq!(artifact.metrics.window_secs, 30);
        assert!(artifact.metrics.rows.is_empty(), "no timed overhead legs");
        assert_eq!(artifact.metrics.mixes.len(), 1);
        assert!(artifact.metrics.exposition().contains("# mix"));
        let probe = measure_probe_latency(&config).expect("reference mix probed");
        assert!(probe.probes > 0);
    }

    #[test]
    fn report_json_round_trips() {
        let r = run_perf(&PerfSettings {
            scales: vec![1],
            ..tiny()
        });
        let json = serde_json::to_string_pretty(&r).expect("serializable");
        let back: PerfReport = serde_json::from_str(&json).expect("parseable");
        assert_eq!(r, back);
    }

    #[test]
    fn baseline_check_is_machine_relative() {
        let base = run_perf(&tiny());
        // Identical run: passes.
        assert!(check_against_baseline(&base, &base, 0.2).is_ok());
        // A uniformly faster machine changes no ratio: still passes.
        let mut faster_machine = base.clone();
        for s in &mut faster_machine.scales {
            s.flows_per_sec *= 10.0;
        }
        assert!(
            check_against_baseline(&faster_machine, &base, 0.2).is_ok(),
            "absolute throughput must not gate"
        );
        // Degraded scaling (large scale got relatively slower) fails.
        let mut degraded = base.clone();
        degraded.scales[1].flows_per_sec = base.scales[1].flows_per_sec * 0.5;
        let err = check_against_baseline(&degraded, &base, 0.2).unwrap_err();
        assert!(err.iter().any(|m| m.contains("REGRESSION")));
        assert!(err.iter().any(|m| m.contains("throughput ratio")));
        // Missing scale in the current run fails too.
        let mut extra = base.clone();
        extra.scales[1].scale = 99;
        assert!(check_against_baseline(&base, &extra, 0.2).is_err());
        // A differently-sized population is incomparable, not a pass.
        let mut resized = base.clone();
        resized.scales[1].subscribers += 1;
        let err = check_against_baseline(&resized, &base, 0.2).unwrap_err();
        assert!(err.iter().any(|m| m.contains("configuration mismatch")));
    }

    #[test]
    fn speedup_gate_only_bites_on_multicore() {
        let mut base = run_perf(&PerfSettings {
            scales: vec![1],
            ..tiny()
        });
        base.parallel_speedup = 3.0;
        let mut cur = base.clone();
        cur.parallel_speedup = 1.0;
        cur.available_cores = 1;
        assert!(
            check_against_baseline(&cur, &base, 0.2).is_ok(),
            "single-core runs measure 1.0 by construction: no signal"
        );
        cur.available_cores = 8;
        let err = check_against_baseline(&cur, &base, 0.2).unwrap_err();
        assert!(err.iter().any(|m| m.contains("parallel speedup")));
        cur.parallel_speedup = 2.9;
        assert!(
            check_against_baseline(&cur, &base, 0.2).is_ok(),
            "within tolerance"
        );
    }

    #[test]
    fn speedup_gate_arms_against_single_core_baseline() {
        // A baseline recorded on a 1-core runner measures speedup 1.0
        // by construction. A multi-core current run is still gated —
        // at break-even: threads must not cost more than the tolerance.
        let mut base = run_perf(&PerfSettings {
            scales: vec![1],
            ..tiny()
        });
        base.parallel_speedup = 1.0;
        base.available_cores = 1;
        let mut cur = base.clone();
        cur.available_cores = 8;
        cur.parallel_speedup = 0.7;
        let err = check_against_baseline(&cur, &base, 0.2).unwrap_err();
        assert!(
            err.iter()
                .any(|m| m.contains("REGRESSION") && m.contains("parallel speedup")),
            "threads costing 30% must trip the armed gate"
        );
        cur.parallel_speedup = 0.9;
        assert!(
            check_against_baseline(&cur, &base, 0.2).is_ok(),
            "break-even floor is 1.0 * (1 - tolerance)"
        );
    }
}
