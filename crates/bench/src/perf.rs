//! Machine-readable perf harness for the CGN dimensioning sweep.
//!
//! This is the BENCH-trajectory instrument for the sharded engine: it
//! runs the dimensioning sweep at 1×/4×/16× subscriber scale, times
//! every workload mix, and emits a [`PerfReport`] that serializes to
//! `BENCH_dimensioning.json` — the artifact the CI `perf` job uploads
//! and diffs against the committed `bench/baseline.json`
//! ([`check_against_baseline`]).
//!
//! Two cross-cutting measurements ride along:
//!
//! * **speedup** — the middle scale is run twice, sequentially
//!   (`threads = 1`) and with worker threads, and the flows/sec ratio
//!   is reported (`parallel_speedup`);
//! * **determinism** — the two passes must produce bit-identical
//!   [`cgn_traffic::RunSummary`] digests per mix; the harness panics
//!   otherwise, so every perf run doubles as a sequential-vs-sharded
//!   cross-check.

use cgn_study::dimensioning::DimensioningConfig;
use cgn_traffic::WorkloadMix;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Schema tag stamped into every report, for forward compatibility of
/// the committed baseline.
pub const SCHEMA: &str = "cgn-dimensioning-perf/1";

/// Default regression tolerance: fail when flows/sec drops by more
/// than 20% against the baseline.
pub const DEFAULT_TOLERANCE: f64 = 0.20;

/// Knobs of one harness run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfSettings {
    pub seed: u64,
    /// Subscribers at scale 1×.
    pub base_subscribers: u32,
    /// Scale multipliers to sweep (the middle one also measures the
    /// sequential-vs-parallel speedup).
    pub scales: Vec<u32>,
    /// Simulated seconds per mix.
    pub duration_secs: u64,
    /// NAT state shards (the parallelism axis).
    pub shards: u16,
    /// Worker threads: `0` = one per available core.
    pub threads: usize,
}

impl PerfSettings {
    /// The configuration behind the committed baseline.
    pub fn standard() -> PerfSettings {
        PerfSettings {
            seed: 2016,
            base_subscribers: 1_000,
            scales: vec![1, 4, 16],
            duration_secs: 240,
            shards: 4,
            threads: 0,
        }
    }

    /// A seconds-scale smoke configuration (CI sanity, unit tests).
    pub fn quick() -> PerfSettings {
        PerfSettings {
            seed: 2016,
            base_subscribers: 150,
            scales: vec![1, 4],
            duration_secs: 90,
            shards: 4,
            threads: 0,
        }
    }

    fn dimensioning(&self, subscribers: u32, threads: usize) -> DimensioningConfig {
        let mut c = DimensioningConfig::small(self.seed);
        c.subscribers = subscribers;
        c.shards = self.shards;
        c.external_ips_per_shard = 2;
        c.threads = threads;
        c.duration_secs = self.duration_secs;
        c.sample_secs = 30;
        c.sweep_secs = 20;
        c.mixes = WorkloadMix::all();
        c
    }
}

/// Timing of one workload mix at one scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixPerf {
    pub mix: String,
    pub flows: u64,
    pub packets: u64,
    pub peak_mappings: u64,
    pub wall_secs: f64,
    pub flows_per_sec: f64,
}

/// One scale step of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalePerf {
    pub scale: u32,
    pub subscribers: u32,
    pub flows: u64,
    pub peak_mappings: u64,
    pub wall_secs: f64,
    pub flows_per_sec: f64,
    pub mixes: Vec<MixPerf>,
}

/// The full machine-readable report (`BENCH_dimensioning.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    pub schema: String,
    pub seed: u64,
    pub shards: u16,
    /// Resolved worker-thread count used for the scale sweep.
    pub threads: usize,
    pub available_cores: usize,
    pub duration_secs: u64,
    pub scales: Vec<ScalePerf>,
    /// Flows/sec of the middle scale run with `threads = 1`.
    pub sequential_flows_per_sec: f64,
    /// Flows/sec of the middle scale run with worker threads.
    pub parallel_flows_per_sec: f64,
    /// `parallel / sequential`; 1.0 when only one core is available.
    pub parallel_speedup: f64,
    /// Folded per-mix digest of the speedup scale — equal between the
    /// sequential and parallel pass by construction (the harness
    /// asserts it), and useful to diff across machines.
    pub digest: String,
}

fn measure_scale(settings: &PerfSettings, scale: u32, threads: usize) -> (ScalePerf, u64) {
    let subscribers = settings.base_subscribers * scale;
    let config = settings.dimensioning(subscribers, threads);
    let mut mixes = Vec::new();
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let t0 = Instant::now();
    for mix in &config.mixes {
        let m0 = Instant::now();
        let summary = cgn_traffic::run(&config.driver_config(mix.clone()));
        let wall = m0.elapsed().as_secs_f64();
        digest ^= summary.digest();
        digest = digest.wrapping_mul(0x1000_0000_01b3);
        mixes.push(MixPerf {
            mix: summary.mix_name.clone(),
            flows: summary.flows_started,
            packets: summary.packets_sent,
            peak_mappings: summary.report.peak_mappings,
            wall_secs: wall,
            flows_per_sec: summary.flows_started as f64 / wall.max(1e-9),
        });
    }
    let wall = t0.elapsed().as_secs_f64();
    let flows: u64 = mixes.iter().map(|m| m.flows).sum();
    (
        ScalePerf {
            scale,
            subscribers,
            flows,
            peak_mappings: mixes.iter().map(|m| m.peak_mappings).max().unwrap_or(0),
            wall_secs: wall,
            flows_per_sec: flows as f64 / wall.max(1e-9),
            mixes,
        },
        digest,
    )
}

/// Run the harness: the scale sweep with worker threads, plus the
/// sequential pass of the middle scale for the speedup and determinism
/// cross-check.
pub fn run_perf(settings: &PerfSettings) -> PerfReport {
    assert!(!settings.scales.is_empty(), "need at least one scale");
    let available_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = match settings.threads {
        0 => available_cores,
        n => n,
    };

    let mut scales = Vec::new();
    let mut digests = Vec::new();
    for &scale in &settings.scales {
        let (perf, digest) = measure_scale(settings, scale, threads);
        scales.push(perf);
        digests.push(digest);
    }

    // Speedup + determinism cross-check on the middle scale.
    let mid = settings.scales.len() / 2;
    let parallel_flows_per_sec = scales[mid].flows_per_sec;
    let (sequential_flows_per_sec, digest) = if threads <= 1 {
        (parallel_flows_per_sec, digests[mid])
    } else {
        let (seq, seq_digest) = measure_scale(settings, settings.scales[mid], 1);
        assert_eq!(
            seq_digest, digests[mid],
            "sequential and parallel runs must be bit-identical"
        );
        (seq.flows_per_sec, seq_digest)
    };

    PerfReport {
        schema: SCHEMA.to_string(),
        seed: settings.seed,
        shards: settings.shards,
        threads,
        available_cores,
        duration_secs: settings.duration_secs,
        scales,
        sequential_flows_per_sec,
        parallel_flows_per_sec,
        parallel_speedup: parallel_flows_per_sec / sequential_flows_per_sec.max(1e-9),
        digest: format!("{digest:016x}"),
    }
}

/// Compare a fresh report against the committed baseline.
///
/// Returns `Ok(notes)` when every scale present in the baseline holds
/// within `tolerance` (fractional allowed drop in flows/sec), and
/// `Err(failures)` otherwise. Faster-than-baseline runs always pass.
pub fn check_against_baseline(
    current: &PerfReport,
    baseline: &PerfReport,
    tolerance: f64,
) -> Result<Vec<String>, Vec<String>> {
    let mut notes = Vec::new();
    let mut failures = Vec::new();
    if baseline.schema != current.schema {
        failures.push(format!(
            "schema mismatch: baseline {} vs current {}",
            baseline.schema, current.schema
        ));
        return Err(failures);
    }
    for base in &baseline.scales {
        let Some(cur) = current.scales.iter().find(|s| s.scale == base.scale) else {
            failures.push(format!("scale {}x missing from current run", base.scale));
            continue;
        };
        if cur.subscribers != base.subscribers {
            failures.push(format!(
                "scale {}x configuration mismatch: {} subscribers vs baseline {} \
                 (flows/sec are not comparable — e.g. a `quick` run against the standard baseline)",
                base.scale, cur.subscribers, base.subscribers
            ));
            continue;
        }
        let floor = base.flows_per_sec * (1.0 - tolerance);
        let line = format!(
            "scale {:>2}x: {:>10.0} flows/s vs baseline {:>10.0} (floor {:>10.0})",
            base.scale, cur.flows_per_sec, base.flows_per_sec, floor
        );
        if cur.flows_per_sec < floor {
            failures.push(format!("REGRESSION {line}"));
        } else {
            notes.push(format!("ok {line}"));
        }
    }
    if failures.is_empty() {
        Ok(notes)
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PerfSettings {
        PerfSettings {
            seed: 7,
            base_subscribers: 60,
            scales: vec![1, 2],
            duration_secs: 60,
            shards: 2,
            threads: 2,
        }
    }

    #[test]
    fn harness_reports_every_scale_and_mix() {
        let r = run_perf(&tiny());
        assert_eq!(r.schema, SCHEMA);
        assert_eq!(r.scales.len(), 2);
        for s in &r.scales {
            assert_eq!(s.mixes.len(), WorkloadMix::all().len());
            assert!(s.flows > 0);
            assert!(s.flows_per_sec > 0.0);
        }
        assert!(r.parallel_speedup > 0.0);
        assert_eq!(r.scales[1].subscribers, 120);
        // The sequential cross-check inside run_perf did not panic:
        // parallel and sequential digests agreed.
        assert_eq!(r.digest.len(), 16);
    }

    #[test]
    fn report_json_round_trips() {
        let r = run_perf(&PerfSettings {
            scales: vec![1],
            ..tiny()
        });
        let json = serde_json::to_string_pretty(&r).expect("serializable");
        let back: PerfReport = serde_json::from_str(&json).expect("parseable");
        assert_eq!(r, back);
    }

    #[test]
    fn baseline_check_flags_regressions_only() {
        let base = run_perf(&PerfSettings {
            scales: vec![1],
            ..tiny()
        });
        // Identical run: passes.
        assert!(check_against_baseline(&base, &base, 0.2).is_ok());
        // 10x faster baseline: current run is a regression.
        let mut fast = base.clone();
        for s in &mut fast.scales {
            s.flows_per_sec *= 10.0;
        }
        let err = check_against_baseline(&base, &fast, 0.2).unwrap_err();
        assert!(err.iter().all(|m| m.contains("REGRESSION")));
        // Missing scale in the current run fails too.
        let mut extra = base.clone();
        extra.scales[0].scale = 99;
        assert!(check_against_baseline(&base, &extra, 0.2).is_err());
        // A differently-sized population is incomparable, not a pass.
        let mut resized = base.clone();
        resized.scales[0].subscribers += 1;
        let err = check_against_baseline(&resized, &base, 0.2).unwrap_err();
        assert!(err.iter().any(|m| m.contains("configuration mismatch")));
    }
}
