//! # cgn-bench — benchmark harness and experiment regeneration
//!
//! * `src/bin/repro.rs` — regenerates every table and figure of the paper
//!   (`cargo run --release -p cgn-bench --bin repro`);
//! * `src/bin/perf.rs` — the [`perf`] harness: times the dimensioning
//!   sweep at 1×/4×/16× subscriber scale on the sharded engine and
//!   writes `BENCH_dimensioning.json` (the CI regression artifact);
//! * `benches/` — Criterion micro- and macro-benchmarks: NAT translation
//!   throughput, bencode/KRPC/STUN codecs, routing-table lookups, DHT
//!   crawl, detection pipelines, and the per-experiment regeneration
//!   benches (one per table/figure group) plus detector ablations.

pub mod perf;

/// Shared scale used by the experiment benches so their numbers are
/// comparable across runs.
pub fn bench_study_config(seed: u64) -> cgn_study::StudyConfig {
    cgn_study::StudyConfig::small(seed)
}
