//! # cgn-bench — benchmark harness and experiment regeneration
//!
//! * `src/bin/repro.rs` — regenerates every table and figure of the paper
//!   (`cargo run --release -p cgn-bench --bin repro`);
//! * `benches/` — Criterion micro- and macro-benchmarks: NAT translation
//!   throughput, bencode/KRPC/STUN codecs, routing-table lookups, DHT
//!   crawl, detection pipelines, and the per-experiment regeneration
//!   benches (one per table/figure group) plus detector ablations.

/// Shared scale used by the experiment benches so their numbers are
/// comparable across runs.
pub fn bench_study_config(seed: u64) -> cgn_study::StudyConfig {
    cgn_study::StudyConfig::small(seed)
}
