//! Regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p cgn-bench --bin repro            # full report
//! cargo run --release -p cgn-bench --bin repro -- small   # smaller world
//! cargo run --release -p cgn-bench --bin repro -- seed=7  # other seed
//! cargo run --release -p cgn-bench --bin repro -- export=plots/  # + TSV figure data
//! cargo run --release -p cgn-bench --bin repro -- dimensioning   # + CGN port-demand sweep
//! ```
//!
//! The output is the "measured" side of EXPERIMENTS.md: every section is
//! annotated with the paper's published numbers for comparison.

use cgn_study::{run_study, StudyConfig};

fn main() {
    let mut scale = "default".to_string();
    let mut seed: u64 = 2016;
    let mut export_dir: Option<std::path::PathBuf> = None;
    let mut dimensioning = false;
    for arg in std::env::args().skip(1) {
        if let Some(s) = arg.strip_prefix("seed=") {
            seed = s.parse().expect("seed must be an integer");
        } else if let Some(d) = arg.strip_prefix("export=") {
            export_dir = Some(d.into());
        } else if arg == "dimensioning" {
            dimensioning = true;
        } else {
            scale = arg;
        }
    }
    let mut config = match scale.as_str() {
        "tiny" => StudyConfig::tiny(seed),
        "small" => StudyConfig::small(seed),
        "default" => StudyConfig::default_with_seed(seed),
        other => {
            eprintln!("unknown scale '{other}' (use tiny|small|default)");
            std::process::exit(2);
        }
    };
    if dimensioning {
        config.dimensioning = Some(match scale.as_str() {
            "tiny" | "small" => cgn_study::DimensioningConfig::small(seed),
            _ => cgn_study::DimensioningConfig::release(seed),
        });
    }
    let t0 = std::time::Instant::now();
    let report = run_study(config);
    let elapsed = t0.elapsed();
    println!("{}", report.render());
    if let Some(dir) = export_dir {
        let written = cgn_study::write_to_dir(&report, &dir).expect("figure export");
        println!(
            "\nexported {} figure data files to {}",
            written.len(),
            dir.display()
        );
    }
    println!("\n(reproduced in {elapsed:.2?} at scale '{scale}', seed {seed})");
}
