//! Regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p cgn-bench --bin repro            # full report
//! cargo run --release -p cgn-bench --bin repro -- small   # smaller world
//! cargo run --release -p cgn-bench --bin repro -- seed=7  # other seed
//! cargo run --release -p cgn-bench --bin repro -- export=plots/  # + TSV figure data
//! cargo run --release -p cgn-bench --bin repro -- dimensioning   # + CGN port-demand sweep
//! cargo run --release -p cgn-bench --bin repro -- dimensioning --threads 4
//! cargo run --release -p cgn-bench --bin repro -- dimensioning --metrics  # + windowed metrics
//! cargo run --release -p cgn-bench --bin repro -- detection      # detection campaign
//! cargo run --release -p cgn-bench --bin repro -- small detection --threads 4
//! cargo run --release -p cgn-bench --bin repro -- soak           # 1M-subscriber soak + gates
//! cargo run --release -p cgn-bench --bin repro -- small soak --events-dir target/soak-events
//! cargo run --release -p cgn-bench --bin repro -- dimensioning --trace-out=trace.json
//! cargo run --release -p cgn-bench --bin repro -- top 127.0.0.1:9321  # live TUI on a soak
//! ```
//!
//! The output is the "measured" side of EXPERIMENTS.md: every section is
//! annotated with the paper's published numbers for comparison.
//!
//! `soak` runs the always-on operator mode instead of the study
//! pipeline: a [`cgn_opsd`] soak session (scale maps `default` → the
//! 1M-subscriber hour, `small` → CI scale, `tiny` → smoke scale) with
//! a live scrape endpoint, streamed JSONL window stats
//! (`BENCH_soak_windows.jsonl`), optional rotating event logs
//! (`--events-dir DIR`), and the leak gates. The report lands in
//! `BENCH_soak.json`; any failed gate (or unverifiable scrape) exits
//! nonzero.
//!
//! `--trace-out=PATH` (with `dimensioning`) re-runs the reference mix
//! with the flight recorder sampling 1-in-N flows (`--trace-sample=N`,
//! default 64) and writes the merged dump as Chrome-trace JSON — load
//! it in Perfetto / `chrome://tracing`.
//!
//! `top ADDR` is the `lqtop`-style live dashboard: it scrapes a
//! running soak's `/metrics` endpoint every `--interval` seconds
//! (default 2) and redraws per-shard flow rates, allocator fill,
//! wheel depth, arena growth and phase-latency sparklines with plain
//! ANSI. `--iterations=N` stops after N frames (0 = until ^C).
//!
//! `detection` runs the multi-perspective CGN detection campaign
//! instead of the study pipeline: the standard scenario library at
//! ≥100k subscribers (tiny/small scales run the quick library),
//! scored against topology ground truth, exported to
//! `BENCH_detection.json` (+ TSVs under `export=DIR`). The run exits
//! nonzero when an export fails or the committed precision/recall
//! gates are missed.

use cgn_study::{run_study, StudyConfig};

fn main() {
    let mut scale = "default".to_string();
    let mut seed: u64 = 2016;
    let mut export_dir: Option<std::path::PathBuf> = None;
    let mut dimensioning = false;
    let mut detection = false;
    let mut soak = false;
    let mut metrics = false;
    let mut seed_set = false;
    let mut events_dir: Option<std::path::PathBuf> = None;
    let mut threads: Option<usize> = None;
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut trace_sample: u32 = 64;
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("top") {
        args.next();
        run_top_mode(args.collect());
        return;
    }
    while let Some(arg) = args.next() {
        if let Some(s) = arg.strip_prefix("seed=") {
            seed = s.parse().expect("seed must be an integer");
            seed_set = true;
        } else if let Some(d) = arg.strip_prefix("export=") {
            export_dir = Some(d.into());
        } else if arg == "dimensioning" {
            dimensioning = true;
        } else if arg == "detection" {
            detection = true;
        } else if arg == "soak" {
            soak = true;
        } else if arg == "--metrics" {
            metrics = true;
        } else if arg == "--events-dir" {
            let v = args.next().unwrap_or_else(|| {
                eprintln!("--events-dir needs a directory for the rotating event-log generations");
                std::process::exit(2);
            });
            events_dir = Some(v.into());
        } else if let Some(v) = arg.strip_prefix("--events-dir=") {
            events_dir = Some(v.into());
        } else if arg == "--threads" {
            let v = args.next().unwrap_or_else(|| {
                eprintln!("--threads needs a value (worker count; 0 = one per core)");
                std::process::exit(2);
            });
            threads = Some(v.parse().expect("--threads must be an integer"));
        } else if let Some(v) = arg.strip_prefix("--threads=") {
            threads = Some(v.parse().expect("--threads must be an integer"));
        } else if arg == "--trace-out" {
            let v = args.next().unwrap_or_else(|| {
                eprintln!("--trace-out needs a destination for the Chrome-trace JSON");
                std::process::exit(2);
            });
            trace_out = Some(v.into());
        } else if let Some(v) = arg.strip_prefix("--trace-out=") {
            trace_out = Some(v.into());
        } else if let Some(v) = arg.strip_prefix("--trace-sample=") {
            trace_sample = v.parse().expect("--trace-sample must be an integer");
        } else {
            scale = arg;
        }
    }
    if soak {
        let seed = seed_set.then_some(seed);
        run_soak_mode(&scale, seed, threads, events_dir.as_deref());
        return;
    }
    if detection {
        run_detection_campaign(&scale, seed, threads, export_dir.as_deref());
        return;
    }
    let mut config = match scale.as_str() {
        "tiny" => StudyConfig::tiny(seed),
        "small" => StudyConfig::small(seed),
        "default" => StudyConfig::default_with_seed(seed),
        other => {
            eprintln!("unknown scale '{other}' (use tiny|small|default)");
            std::process::exit(2);
        }
    };
    if metrics && !dimensioning {
        eprintln!("--metrics needs the dimensioning subcommand (windowed metrics ride the sweep)");
        std::process::exit(2);
    }
    if trace_out.is_some() && !dimensioning {
        eprintln!("--trace-out needs the dimensioning subcommand (the traced leg rides the sweep)");
        std::process::exit(2);
    }
    if dimensioning {
        let mut dim = match scale.as_str() {
            "tiny" | "small" => cgn_study::DimensioningConfig::small(seed),
            _ => cgn_study::DimensioningConfig::release(seed),
        };
        if let Some(t) = threads {
            dim.threads = t;
        }
        if metrics {
            // One window per sample barrier: the live table in the
            // rendered report and the BENCH_metrics.json artifact.
            dim.metrics_window_secs = Some(dim.sample_secs);
        }
        config.dimensioning = Some(dim);
    }
    let t0 = std::time::Instant::now();
    let report = run_study(config);
    let elapsed = t0.elapsed();
    println!("{}", report.render());
    if metrics {
        write_metrics_artifacts(report.dimensioning.as_ref());
    }
    if let Some(path) = &trace_out {
        let dim = report
            .dimensioning
            .as_ref()
            .map(|d| d.config.clone())
            .unwrap_or_else(|| {
                eprintln!("--trace-out given but the study produced no dimensioning report");
                std::process::exit(1);
            });
        write_trace_artifact(&dim, path, trace_sample);
    }
    if dimensioning {
        print_perf_reference();
    }
    if let Some(dir) = export_dir {
        match cgn_study::write_to_dir(&report, &dir) {
            Ok(written) => println!(
                "\nexported {} figure data files to {}",
                written.len(),
                dir.display()
            ),
            Err(e) => {
                eprintln!("figure export to {} failed: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
    println!("\n(reproduced in {elapsed:.2?} at scale '{scale}', seed {seed})");
}

/// The `soak` mode: run the always-on operator session at the
/// requested scale, stream the window stats to
/// `BENCH_soak_windows.jsonl`, write the gated report to
/// `BENCH_soak.json`, and exit nonzero when any leak gate (or the
/// scrape verification) fails.
fn run_soak_mode(
    scale: &str,
    seed: Option<u64>,
    threads: Option<usize>,
    events_dir: Option<&std::path::Path>,
) {
    let mut config = match scale {
        "tiny" => cgn_opsd::SoakConfig::smoke(),
        "small" => cgn_opsd::SoakConfig::ci(),
        "default" => cgn_opsd::SoakConfig::full(),
        other => {
            eprintln!("unknown scale '{other}' (use tiny|small|default)");
            std::process::exit(2);
        }
    };
    if let Some(s) = seed {
        config.seed = s;
    }
    if let Some(t) = threads {
        config.threads = t;
    }
    config.stats_path = Some("BENCH_soak_windows.jsonl".into());
    if let Some(dir) = events_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("creating {} failed: {e}", dir.display());
            std::process::exit(1);
        }
        config.event_log_stem = Some(dir.join("events"));
    }
    println!(
        "soak '{}': {} subscribers x {} shards, {} simulated seconds (mix {}, seed {})",
        config.preset,
        config.subscribers,
        config.shards,
        config.duration_secs,
        config.mix.name,
        config.seed
    );
    let report = match cgn_opsd::run_soak(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("soak run failed: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "  {} flows ({} blocked), {} packets, {} mappings created / {} expired",
        report.flows_started,
        report.flows_blocked,
        report.packets_sent,
        report.mappings_created,
        report.mappings_expired
    );
    println!(
        "  {} windows streamed (digest {:016x}), ring never held more than {} windows",
        report.windows_streamed, report.window_stream_digest, report.max_windows_retained
    );
    println!(
        "  scrape endpoint answered {} requests; final scrape verified {} series: {}",
        report.scrapes_served,
        report.scrape_series_verified,
        if report.scrape_verified {
            "ok"
        } else {
            "FAILED"
        }
    );
    if let Some(v) = &report.event_log {
        println!(
            "  event logs: {} generations, {} records, {} bytes ({} modeled archived)",
            v.generations, v.records, v.bytes, v.compressed_bytes_modeled
        );
    }
    for g in &report.gates {
        println!(
            "  gate {:<22} {}  (observed {:.4}, limit {:.4}: {})",
            g.name,
            if g.passed { "pass" } else { "FAIL" },
            g.observed,
            g.limit,
            g.detail
        );
    }
    println!(
        "  wall {:.1}s ({:.0} simulated seconds per wall second)",
        report.wall_secs, report.sim_rate
    );

    let json = serde_json::to_string_pretty(&report).expect("soak report serializes");
    if let Err(e) = std::fs::write("BENCH_soak.json", json) {
        eprintln!("writing BENCH_soak.json failed: {e}");
        std::process::exit(1);
    }
    println!("wrote BENCH_soak.json (schema {})", report.schema);
    if !report.all_gates_passed {
        eprintln!("soak leak gates FAILED");
        std::process::exit(1);
    }
    println!("all soak gates passed");
}

/// The `detection` mode: run the multi-perspective campaign, print
/// the scored report, write `BENCH_detection.json` (and the TSV
/// exports when `export=DIR` is given), and hold the result against
/// the committed precision/recall gates. Export failures and missed
/// gates exit nonzero, mirroring the `dimensioning` subcommand.
fn run_detection_campaign(
    scale: &str,
    seed: u64,
    threads: Option<usize>,
    export_dir: Option<&std::path::Path>,
) {
    let mut cfg = match scale {
        "tiny" | "small" => cgn_detect::CampaignConfig::quick(seed),
        "default" => cgn_detect::CampaignConfig::standard(seed),
        other => {
            eprintln!("unknown scale '{other}' (use tiny|small|default)");
            std::process::exit(2);
        }
    };
    if let Some(t) = threads {
        cfg = cfg.with_threads(t);
    }
    let t0 = std::time::Instant::now();
    let report = cgn_detect::run_campaign(&cfg);
    let elapsed = t0.elapsed();
    println!("{}", report.render());

    let artifact = cgn_study::DetectionArtifact::new(report.clone());
    let json = serde_json::to_string_pretty(&artifact).expect("report serializes");
    if let Err(e) = std::fs::write("BENCH_detection.json", json) {
        eprintln!("writing BENCH_detection.json failed: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote BENCH_detection.json (digest {:016x})",
        report.digest()
    );

    if let Some(dir) = export_dir {
        match cgn_study::write_detection_to_dir(&report, dir) {
            Ok(written) => println!(
                "exported {} detection data files to {}",
                written.len(),
                dir.display()
            ),
            Err(e) => {
                eprintln!("detection export to {} failed: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }

    println!("\n(campaign ran in {elapsed:.2?} at scale '{scale}', seed {seed})");
    if let Err(msg) = cgn_study::check_gates(&report) {
        eprintln!("detection quality gate FAILED: {msg}");
        std::process::exit(1);
    }
    println!(
        "quality gates passed: CGN precision {:.3} ≥ {} | CGN recall {:.3} ≥ {}",
        report.cgn_precision,
        cgn_study::GATE_CGN_PRECISION,
        report.cgn_recall,
        cgn_study::GATE_CGN_RECALL
    );
}

/// The `--metrics` mode's artifacts: `BENCH_metrics.json` (windowed
/// aggregates + wall-clock trace-probe latency) and the Prometheus
/// text exposition `BENCH_metrics.prom`, built from the metrics-
/// enabled dimensioning run the study just performed. The live
/// per-window table is part of the rendered report already.
fn write_metrics_artifacts(dimensioning: Option<&cgn_study::DimensioningReport>) {
    let Some(dim) = dimensioning else {
        eprintln!("--metrics given but the study produced no dimensioning report");
        std::process::exit(1);
    };
    let Some(mut artifact) = cgn_bench::perf::MetricsReport::from_dimensioning(dim) else {
        eprintln!("--metrics given but the dimensioning runs carried no metrics");
        std::process::exit(1);
    };
    // Wall-clock probe latency lives only in this artifact, never in
    // the bit-compared report itself.
    artifact.metrics.probe_latency = cgn_bench::perf::measure_probe_latency(&dim.config);
    let json = serde_json::to_string_pretty(&artifact).expect("metrics serializes");
    if let Err(e) = std::fs::write("BENCH_metrics.json", json) {
        eprintln!("writing BENCH_metrics.json failed: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote BENCH_metrics.json (snapshot digest {})",
        artifact.metrics.snapshot_digest
    );
    if let Err(e) = std::fs::write("BENCH_metrics.prom", artifact.metrics.exposition()) {
        eprintln!("writing BENCH_metrics.prom failed: {e}");
        std::process::exit(1);
    }
    println!("wrote BENCH_metrics.prom");
}

/// Surface the perf harness's machine-readable trajectory next to the
/// dimensioning report, so a repro run shows the throughput the same
/// sweep achieved on the reference machine (`--bin perf` refreshes it).
fn print_perf_reference() {
    for path in ["BENCH_dimensioning.json", "bench/baseline.json"] {
        let Ok(text) = std::fs::read_to_string(path) else {
            continue;
        };
        let Ok(p) = serde_json::from_str::<cgn_bench::perf::PerfReport>(&text) else {
            continue;
        };
        println!("\nperf reference ({path}):");
        for s in &p.scales {
            println!(
                "  scale {:>2}x ({} subscribers): {:.0} flows/s, peak {} mappings",
                s.scale, s.subscribers, s.flows_per_sec, s.peak_mappings
            );
        }
        println!(
            "  {} worker thread(s); parallel speedup {:.2}x over sequential",
            p.threads, p.parallel_speedup
        );
        return;
    }
    println!(
        "\n(no BENCH_dimensioning.json yet — run `cargo run --release -p cgn-bench --bin perf`)"
    );
}

/// The `--trace-out` leg: re-run the dimensioning sweep's reference
/// mix with the flight recorder on (1-in-`sample` flow sampling) and
/// write the merged dump as Chrome-trace JSON. A separate run keeps
/// the sweep itself on the zero-cost path; the dump is sim-time
/// deterministic, so re-running changes nothing but wall time.
fn write_trace_artifact(dim: &cgn_study::DimensioningConfig, path: &std::path::Path, sample: u32) {
    let mix = dim.mixes.first().cloned().unwrap_or_else(|| {
        eprintln!("--trace-out needs at least one workload mix in the dimensioning config");
        std::process::exit(1);
    });
    let mut config = dim.driver_config(mix);
    config.trace = cgn_traffic::TraceConfig::sampled(sample.max(1));
    let t0 = std::time::Instant::now();
    let mut session = cgn_traffic::DriverSession::new(&config);
    while session.step().is_some() {}
    let dump = session
        .trace_dump()
        .expect("tracer installed for the traced leg");
    let json = cgn_trace::chrome_trace_json(&dump);
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("writing {} failed: {e}", path.display());
        std::process::exit(1);
    }
    println!(
        "wrote {} ({} events from {} sampled flows, 1-in-{} sampling, \
         {} evicted; traced leg took {:.2?})",
        path.display(),
        dump.events.len(),
        dump.sampled_flows,
        dump.sample_one_in,
        dump.evicted,
        t0.elapsed()
    );
}

/// The `top` mode: a live dashboard over a running soak's scrape
/// endpoint. Pure client — everything rendered comes from `/metrics`
/// and `/healthz`, so it attaches to any cgn-opsd session.
fn run_top_mode(args: Vec<String>) {
    let mut addr: Option<String> = None;
    let mut interval_secs: f64 = 2.0;
    let mut iterations: u64 = 0;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if let Some(v) = arg.strip_prefix("--interval=") {
            interval_secs = v.parse().expect("--interval must be seconds");
        } else if arg == "--interval" {
            let v = it.next().expect("--interval needs seconds");
            interval_secs = v.parse().expect("--interval must be seconds");
        } else if let Some(v) = arg.strip_prefix("--iterations=") {
            iterations = v.parse().expect("--iterations must be an integer");
        } else if arg == "--iterations" {
            let v = it.next().expect("--iterations needs a count");
            iterations = v.parse().expect("--iterations must be an integer");
        } else if addr.is_none() {
            addr = Some(arg);
        } else {
            eprintln!(
                "unexpected argument '{arg}' (usage: top ADDR [--interval=S] [--iterations=N])"
            );
            std::process::exit(2);
        }
    }
    let Some(addr) = addr else {
        eprintln!("top needs the scrape address of a running soak (e.g. 127.0.0.1:9321)");
        std::process::exit(2);
    };

    use std::io::Write as _;
    let mut prev = std::collections::BTreeMap::new();
    let mut frames = 0u64;
    loop {
        let body = match cgn_opsd::scrape(&addr, "/metrics") {
            Ok(b) => b,
            Err(e) => {
                eprintln!("scraping {addr}/metrics failed: {e}");
                std::process::exit(1);
            }
        };
        let cur = cgn_opsd::parse_scalars(&body);
        let header = match cgn_opsd::scrape(&addr, "/healthz")
            .ok()
            .and_then(|h| serde_json::from_str::<cgn_traffic::SessionHealth>(&h).ok())
        {
            Some(h) => format!(
                "cgn top \u{2014} {addr}  sim {}s/{}s  slots {} ({} free)",
                h.now_secs, h.horizon_secs, h.store.slots, h.store.free
            ),
            None => format!("cgn top \u{2014} {addr}"),
        };
        let text = cgn_trace::top::render_top(&header, &prev, &cur, interval_secs);
        print!("{}{}", cgn_trace::top::CLEAR, text);
        std::io::stdout().flush().ok();
        prev = cur;
        frames += 1;
        if iterations > 0 && frames >= iterations {
            return;
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(
            interval_secs.clamp(0.1, 3600.0),
        ));
    }
}
