//! Perf harness CLI: time the dimensioning sweep on the sharded engine
//! and write the machine-readable `BENCH_dimensioning.json`.
//!
//! ```text
//! cargo run --release -p cgn-bench --bin perf                    # 1x/4x/16x sweep
//! cargo run --release -p cgn-bench --bin perf -- quick           # seconds-scale smoke
//! cargo run --release -p cgn-bench --bin perf -- threads=4      # fixed worker count
//! cargo run --release -p cgn-bench --bin perf -- out=PATH       # report destination
//! cargo run --release -p cgn-bench --bin perf -- check=bench/baseline.json
//! cargo run --release -p cgn-bench --bin perf -- logging-out=BENCH_logging.json
//! cargo run --release -p cgn-bench --bin perf -- metrics-out=BENCH_metrics.json metrics-prom=BENCH_metrics.prom
//! ```
//!
//! With `check=`, the run exits nonzero when a **machine-relative**
//! ratio regresses more than 20% (override with `tolerance=0.3`)
//! against the committed baseline — the contract of the CI `perf`
//! job. Gated ratios: each scale's flows/sec relative to the smallest
//! scale of the same run (state-table scaling), and the parallel
//! speedup (only when both machines are multi-core). Absolute
//! flows/sec are informational, so a CI-runner hardware change cannot
//! trip the gate.
//!
//! `logging-out=` turns on the telemetry-logging leg: the middle
//! scale is re-run with per-connection and per-block sinks, the
//! overhead rows land in `BENCH_logging.json`, and — when `check=` is
//! also given — the **sink-disabled** sweep's ratios are re-gated at
//! the stricter `logging-tolerance` (default 5%), so threading the
//! `EventSink` through the hot path can never quietly tax the
//! disabled configuration.
//!
//! `metrics-out=` turns on the runtime-metrics leg the same way: the
//! middle scale is re-run with windowed metric registries (and once
//! more sequentially — the harness asserts the snapshots are
//! bit-identical across thread counts), the windowed aggregates land
//! in `BENCH_metrics.json` (plus a Prometheus text exposition at
//! `metrics-prom=`), and — when `check=` is also given — the
//! **metrics-disabled** sweep's ratios are re-gated at the strictest
//! `metrics-tolerance` (default 2%), pinning the
//! registries-absent-cost-one-branch contract against the committed
//! baseline. Because 2% sits inside single-pass scheduling noise, a
//! miss re-measures the sweep (up to best-of-3) before the gate
//! fails: noise only subtracts throughput, a regression never passes.
//!
//! `trace-out=` turns on the flow-tracing leg: the middle scale is
//! re-run with the flight recorder sampling 1-in-64 flows and the
//! wall-clock phase profiler armed, the traced pass is digest-pinned
//! to the untraced sweep (tracing is observation only), the rows and
//! the per-phase p50/p95/p99 table land in `BENCH_trace.json`
//! (schema `cgn-trace/1`, plus a Perfetto-loadable Chrome trace at
//! `trace-chrome=`), and — when `check=` is also given — the
//! **tracer-disabled** sweep's ratios are re-gated at
//! `trace-tolerance` (default 2%, the same best-of-3 re-measure
//! discipline as the metrics gate), pinning the untaken-branch cost
//! of the disabled fire sites against the committed baseline.
//!
//! `batch-out=` turns on the burst-pipeline leg: the middle scale is
//! swept across the [`BATCH_BURSTS`](cgn_bench::perf::BATCH_BURSTS)
//! burst sizes — once outbound-only and once with the inbound-reply
//! leg enabled — every burst size's digest is asserted bit-identical
//! to its burst=1 scalar-equivalent pass, the rows land in
//! `BENCH_batch.json` (schema `cgn-batch-perf/2`), and the run fails
//! unless burst-128 throughput is at least the scalar pass's on
//! **both** sweeps (re-measured up to best-of-3 first — the same
//! noise argument as the metrics gate). The leg also runs the largest
//! scale once with windowed metrics and gates the arena chunk series:
//! zero slab growth (hence zero reallocation copies) after warm-up.
//! The digest checks are unconditional; the throughput gates need no
//! `check=` because they are self-relative.

use cgn_bench::perf::{
    check_against_baseline, fold_best_batch, run_perf, PerfReport, PerfSettings, DEFAULT_TOLERANCE,
};
use std::path::PathBuf;
use std::process::exit;

/// Tolerance of the logging leg's disabled-sink ratio gate.
const LOGGING_TOLERANCE: f64 = 0.05;
/// Tolerance of the metrics leg's disabled-registry ratio gate.
const METRICS_TOLERANCE: f64 = 0.02;
/// Tolerance of the trace leg's disabled-tracer ratio gate.
const TRACE_TOLERANCE: f64 = 0.02;

fn main() {
    let mut settings = PerfSettings::standard();
    let mut out = PathBuf::from("BENCH_dimensioning.json");
    let mut check: Option<PathBuf> = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut logging_out: Option<PathBuf> = None;
    let mut logging_tolerance = LOGGING_TOLERANCE;
    let mut metrics_out: Option<PathBuf> = None;
    let mut metrics_prom: Option<PathBuf> = None;
    let mut metrics_tolerance = METRICS_TOLERANCE;
    let mut batch_out: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut trace_chrome: Option<PathBuf> = None;
    let mut trace_tolerance = TRACE_TOLERANCE;
    // Presets apply first so explicit settings win regardless of
    // argument order (`quick seed=7` and `seed=7 quick` agree).
    if std::env::args().skip(1).any(|a| a == "quick") {
        settings = PerfSettings::quick();
    }
    for arg in std::env::args().skip(1) {
        if arg == "quick" {
            // handled in the preset pass above
        } else if let Some(v) = arg.strip_prefix("seed=") {
            settings.seed = v.parse().expect("seed must be an integer");
        } else if let Some(v) = arg.strip_prefix("threads=") {
            settings.threads = v.parse().expect("threads must be an integer");
        } else if let Some(v) = arg.strip_prefix("out=") {
            out = v.into();
        } else if let Some(v) = arg.strip_prefix("check=") {
            check = Some(v.into());
        } else if let Some(v) = arg.strip_prefix("tolerance=") {
            tolerance = v.parse().expect("tolerance must be a float");
        } else if let Some(v) = arg.strip_prefix("logging-out=") {
            logging_out = Some(v.into());
        } else if let Some(v) = arg.strip_prefix("logging-tolerance=") {
            logging_tolerance = v.parse().expect("logging-tolerance must be a float");
        } else if let Some(v) = arg.strip_prefix("metrics-out=") {
            metrics_out = Some(v.into());
        } else if let Some(v) = arg.strip_prefix("metrics-prom=") {
            metrics_prom = Some(v.into());
        } else if let Some(v) = arg.strip_prefix("metrics-tolerance=") {
            metrics_tolerance = v.parse().expect("metrics-tolerance must be a float");
        } else if let Some(v) = arg.strip_prefix("batch-out=") {
            batch_out = Some(v.into());
        } else if let Some(v) = arg.strip_prefix("trace-out=") {
            trace_out = Some(v.into());
        } else if let Some(v) = arg.strip_prefix("trace-chrome=") {
            trace_chrome = Some(v.into());
        } else if let Some(v) = arg.strip_prefix("trace-tolerance=") {
            trace_tolerance = v.parse().expect("trace-tolerance must be a float");
        } else {
            eprintln!(
                "unknown argument '{arg}' \
                 (use quick, seed=N, threads=N, out=PATH, check=PATH, tolerance=F, \
                  logging-out=PATH, logging-tolerance=F, \
                  metrics-out=PATH, metrics-prom=PATH, metrics-tolerance=F, \
                  batch-out=PATH, trace-out=PATH, trace-chrome=PATH, trace-tolerance=F)"
            );
            exit(2);
        }
    }
    settings.sink_overhead = logging_out.is_some();
    settings.metrics_overhead = metrics_out.is_some() || metrics_prom.is_some();
    settings.batch_overhead = batch_out.is_some();
    settings.trace_overhead = trace_out.is_some() || trace_chrome.is_some();

    let mut report = run_perf(&settings);

    println!(
        "dimensioning perf — seed {} | {} shard(s), {} worker thread(s) of {} core(s), {} s per mix",
        report.seed, report.shards, report.threads, report.available_cores, report.duration_secs
    );
    for s in &report.scales {
        println!(
            "  scale {:>2}x: {:>7} subscribers | {:>9} flows | {:>7.2} s wall | {:>10.0} flows/s \
             (median; envelope {:.0}..{:.0}) | peak {} mappings",
            s.scale,
            s.subscribers,
            s.flows,
            s.wall_secs,
            s.flows_per_sec,
            s.flows_per_sec_min,
            s.flows_per_sec_max,
            s.peak_mappings
        );
    }
    println!(
        "  speedup: {:.2}x ({:.0} parallel vs {:.0} sequential flows/s; digest {})",
        report.parallel_speedup,
        report.parallel_flows_per_sec,
        report.sequential_flows_per_sec,
        report.digest
    );
    println!(
        "  scaling ratio (largest/smallest scale flows/s): {:.3} | worst shard imbalance: flows {:.3}, mappings {:.3}",
        report.scaling_ratio,
        report.scales.iter().map(|s| s.flow_imbalance).fold(0.0, f64::max),
        report.scales.iter().map(|s| s.mapping_imbalance).fold(0.0, f64::max),
    );

    if let Some(section) = &report.logging {
        println!(
            "  sink overhead at {}x ({} subscribers):",
            section.scale, section.subscribers
        );
        for row in &section.rows {
            println!(
                "    {:<15} {:>10.0} flows/s ({:>5.1}% of off) | {:>9} records | {:>10} log bytes",
                row.mode,
                row.flows_per_sec,
                100.0 * row.relative_throughput,
                row.log_records,
                row.log_bytes
            );
        }
    }

    if let Some(section) = &report.metrics {
        println!(
            "  metrics overhead at {}x ({} subscribers), {} s windows:",
            section.scale, section.subscribers, section.window_secs
        );
        for row in &section.rows {
            println!(
                "    {:<10} {:>10.0} flows/s ({:>5.1}% of off)",
                row.mode,
                row.flows_per_sec,
                100.0 * row.relative_throughput,
            );
        }
        println!(
            "    snapshot digest {} (bit-identical across thread counts) | \
             worst window imbalance {:.3} at t={} s",
            section.snapshot_digest,
            section.worst_window_flow_imbalance,
            section.worst_window_start_secs
        );
        if let Some(p) = &section.probe_latency {
            println!(
                "    trace probe latency: p50 {} ns | p95 {} ns | p99 {} ns ({} probes)",
                p.p50_ns, p.p95_ns, p.p99_ns, p.probes
            );
        }
    }

    if let Some(section) = &report.trace {
        println!(
            "  tracing overhead at {}x ({} subscribers), 1-in-{} flow sampling, ring {}:",
            section.scale, section.subscribers, section.sample_one_in, section.ring_capacity
        );
        for row in &section.rows {
            println!(
                "    {:<10} {:>10.0} flows/s ({:>5.1}% of off)",
                row.mode,
                row.flows_per_sec,
                100.0 * row.relative_throughput,
            );
        }
        println!(
            "    flight recorder: {} events | {} sampled flows | {} evicted | digest {} (bit-identical to the untraced sweep)",
            section.events, section.sampled_flows, section.evicted, section.digest
        );
        for p in &section.phases {
            println!(
                "    phase {:<16} p50 {:>10.0} ns | p95 {:>10.0} ns | p99 {:>10.0} ns ({} laps)",
                p.phase, p.p50_ns, p.p95_ns, p.p99_ns, p.count
            );
        }
    }

    // Burst-pipeline gate: burst-128 must at least match the burst=1
    // scalar-equivalent pass. Self-relative, so it needs no baseline;
    // a miss re-measures the leg (up to best-of-3) before failing —
    // scheduling noise only subtracts throughput, while a batched path
    // that is genuinely slower than scalar loses every pass. Runs
    // before the artifacts are written so the envelope lands in them.
    let mut batch_gate_failed = false;
    if settings.batch_overhead {
        let mut section = report.batch.take().expect("batch leg measured");
        let mut passes = 1;
        // Both sweeps must clear the bar: the last (largest) burst row
        // of the outbound sweep and of the inbound-reply sweep.
        let gate = |s: &cgn_bench::perf::BatchSection| {
            let worst = |rows: &[cgn_bench::perf::BurstPerf], leg: &str| {
                let last = rows.last().expect("burst rows present");
                (last.burst, last.relative_throughput, leg.to_string())
            };
            let out = worst(&s.rows, "outbound");
            match &s.inbound {
                Some(i) => {
                    let inb = worst(&i.rows, "inbound");
                    if inb.1 < out.1 {
                        inb
                    } else {
                        out
                    }
                }
                None => out,
            }
        };
        while gate(&section).1 < 1.0 && passes < 3 {
            let (burst, rel, leg) = gate(&section);
            passes += 1;
            println!(
                "batch gate: {leg} burst-{burst} at {:.1}% of scalar on pass {} — \
                 re-measuring burst sweeps (best-of-{passes} envelope)",
                100.0 * rel,
                passes - 1
            );
            fold_best_batch(&mut section, &settings, report.threads);
        }
        println!(
            "  burst sweep at {}x ({} subscribers), prefetch distance {}:",
            section.scale, section.subscribers, section.prefetch_distance
        );
        for row in &section.rows {
            println!(
                "    burst {:>4} {:>10.0} flows/s ({:>5.1}% of scalar)",
                row.burst,
                row.flows_per_sec,
                100.0 * row.relative_throughput
            );
        }
        if let Some(inbound) = &section.inbound {
            println!(
                "  inbound burst sweep ({} permille of flows answered in-batch):",
                inbound.reply_permille
            );
            for row in &inbound.rows {
                println!(
                    "    burst {:>4} {:>10.0} flows/s ({:>5.1}% of scalar)",
                    row.burst,
                    row.flows_per_sec,
                    100.0 * row.relative_throughput
                );
            }
            let a = &inbound.arena;
            println!(
                "  arena at {}x ({} subscribers): {} chunks at warm-up (t={} s) -> {} final \
                 | {} free slots | {} chunk(s) grown after warm-up",
                a.scale,
                a.subscribers,
                a.chunks_warm,
                a.warmup_secs,
                a.chunks_final,
                a.slots_free_final,
                a.chunks_grown_after_warmup
            );
            if a.chunks_grown_after_warmup > 0 {
                batch_gate_failed = true;
                eprintln!(
                    "arena gate FAILED: {} chunk(s) allocated after warm-up at {}x scale \
                     (the slab must reach steady state within half the run)",
                    a.chunks_grown_after_warmup, a.scale
                );
            } else {
                println!(
                    "arena gate passed: zero slab growth after warm-up at {}x scale \
                     (zero reallocation copies by construction)",
                    a.scale
                );
            }
        }
        let (burst, rel, leg) = gate(&section);
        if rel < 1.0 {
            batch_gate_failed = true;
            eprintln!(
                "batch gate FAILED: {leg} burst-{burst} at {:.1}% of scalar throughput on \
                 every one of {passes} pass(es)",
                100.0 * rel
            );
        } else {
            println!(
                "batch gate passed: worst leg ({leg}) burst-{burst} at {:.1}% of scalar \
                 (best of {passes} pass(es)); digests bit-identical across burst sizes \
                 (outbound {}, inbound {})",
                100.0 * rel,
                section.digest,
                section
                    .inbound
                    .as_ref()
                    .map(|i| i.digest.as_str())
                    .unwrap_or("-")
            );
        }
        report.batch = Some(section);
    }

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Err(e) = std::fs::write(&out, json.as_bytes()) {
        eprintln!("failed to write {}: {e}", out.display());
        exit(1);
    }
    println!("wrote {}", out.display());

    if let Some(path) = &logging_out {
        match report.logging_report() {
            Some(standalone) => {
                let json = serde_json::to_string_pretty(&standalone).expect("logging serializes");
                if let Err(e) = std::fs::write(path, json.as_bytes()) {
                    eprintln!("failed to write {}: {e}", path.display());
                    exit(1);
                }
                println!("wrote {}", path.display());
            }
            None => {
                eprintln!("logging-out given but no overhead section was measured");
                exit(1);
            }
        }
    }

    if metrics_out.is_some() || metrics_prom.is_some() {
        let Some(standalone) = report.metrics_report() else {
            eprintln!("metrics-out given but no metrics section was measured");
            exit(1);
        };
        if let Some(path) = &metrics_out {
            let json = serde_json::to_string_pretty(&standalone).expect("metrics serializes");
            if let Err(e) = std::fs::write(path, json.as_bytes()) {
                eprintln!("failed to write {}: {e}", path.display());
                exit(1);
            }
            println!("wrote {}", path.display());
        }
        if let Some(path) = &metrics_prom {
            if let Err(e) = std::fs::write(path, standalone.metrics.exposition().as_bytes()) {
                eprintln!("failed to write {}: {e}", path.display());
                exit(1);
            }
            println!("wrote {}", path.display());
        }
    }

    if let Some(path) = &batch_out {
        match report.batch_report() {
            Some(standalone) => {
                let json = serde_json::to_string_pretty(&standalone).expect("batch serializes");
                if let Err(e) = std::fs::write(path, json.as_bytes()) {
                    eprintln!("failed to write {}: {e}", path.display());
                    exit(1);
                }
                println!("wrote {}", path.display());
            }
            None => {
                eprintln!("batch-out given but no batch section was measured");
                exit(1);
            }
        }
    }
    if trace_out.is_some() || trace_chrome.is_some() {
        let Some(standalone) = report.trace_report() else {
            eprintln!("trace-out given but no trace section was measured");
            exit(1);
        };
        if let Some(path) = &trace_out {
            let json = serde_json::to_string_pretty(&standalone).expect("trace serializes");
            if let Err(e) = std::fs::write(path, json.as_bytes()) {
                eprintln!("failed to write {}: {e}", path.display());
                exit(1);
            }
            println!("wrote {}", path.display());
        }
        if let Some(path) = &trace_chrome {
            if let Err(e) = std::fs::write(path, standalone.trace.chrome.as_bytes()) {
                eprintln!("failed to write {}: {e}", path.display());
                exit(1);
            }
            println!("wrote {}", path.display());
        }
    }
    // Fail after the artifacts are on disk, so a gate trip is
    // diagnosable from the uploaded JSON alone.
    if batch_gate_failed {
        exit(1);
    }

    if let Some(path) = check {
        let baseline: PerfReport = match std::fs::read_to_string(&path) {
            Ok(text) => match serde_json::from_str(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("failed to parse baseline {}: {e:?}", path.display());
                    exit(2);
                }
            },
            Err(e) => {
                eprintln!("failed to read baseline {}: {e}", path.display());
                exit(2);
            }
        };
        match check_against_baseline(&report, &baseline, tolerance) {
            Ok(notes) => {
                for n in notes {
                    println!("{n}");
                }
                println!(
                    "baseline check passed (tolerance {:.0}%)",
                    tolerance * 100.0
                );
            }
            Err(failures) => {
                for f in failures {
                    eprintln!("{f}");
                }
                eprintln!(
                    "baseline check FAILED (tolerance {:.0}%)",
                    tolerance * 100.0
                );
                exit(1);
            }
        }

        // The logging leg's stricter gate: the scale sweep above ran
        // with the sink DISABLED, so re-checking its machine-relative
        // ratios at the logging tolerance pins the zero-cost-when-
        // disabled contract against the committed baseline.
        if logging_out.is_some() {
            match check_against_baseline(&report, &baseline, logging_tolerance) {
                Ok(_) => println!(
                    "logging gate passed: sink-disabled ratios within {:.0}% of baseline",
                    logging_tolerance * 100.0
                ),
                Err(failures) => {
                    for f in failures {
                        eprintln!("{f}");
                    }
                    eprintln!(
                        "logging gate FAILED: sink-disabled configuration regressed \
                         baseline throughput ratios by more than {:.0}%",
                        logging_tolerance * 100.0
                    );
                    exit(1);
                }
            }
        }

        // The metrics leg's strictest gate: the scale sweep above ran
        // with NO metric registries installed, so re-checking its
        // machine-relative ratios at the metrics tolerance pins the
        // one-untaken-branch cost of the disabled instrumentation
        // against the committed baseline. A 2% bar is tighter than
        // single-pass scheduling noise on shared runners, so on a miss
        // the sweep is re-measured (up to twice) and the gate holds
        // the best-of-N envelope: interference only ever subtracts
        // throughput, while a real regression depresses every pass.
        if settings.metrics_overhead {
            let mut envelope = report.clone();
            let mut outcome = check_against_baseline(&envelope, &baseline, metrics_tolerance);
            let mut passes = 1;
            while outcome.is_err() && passes < 3 {
                passes += 1;
                println!(
                    "metrics gate: ratios outside {:.0}% on pass {} — re-measuring \
                     registry-disabled sweep (best-of-{passes} envelope)",
                    metrics_tolerance * 100.0,
                    passes - 1
                );
                cgn_bench::perf::fold_best_scales(&mut envelope, &settings);
                outcome = check_against_baseline(&envelope, &baseline, metrics_tolerance);
            }
            match outcome {
                Ok(_) => println!(
                    "metrics gate passed: registry-disabled ratios within {:.0}% of baseline \
                     (best of {passes} pass(es))",
                    metrics_tolerance * 100.0
                ),
                Err(failures) => {
                    for f in failures {
                        eprintln!("{f}");
                    }
                    eprintln!(
                        "metrics gate FAILED: registry-disabled configuration regressed \
                         baseline throughput ratios by more than {:.0}% on every one of \
                         {passes} passes",
                        metrics_tolerance * 100.0
                    );
                    exit(1);
                }
            }
        }

        // The trace leg's gate, same discipline: the scale sweep above
        // ran with NO tracer installed, so re-checking its machine-
        // relative ratios at the trace tolerance pins the cost of the
        // disabled fire sites — one untaken branch per packet batch —
        // against the committed baseline, with best-of-3 re-measures
        // absorbing scheduling noise.
        if settings.trace_overhead {
            let mut envelope = report.clone();
            let mut outcome = check_against_baseline(&envelope, &baseline, trace_tolerance);
            let mut passes = 1;
            while outcome.is_err() && passes < 3 {
                passes += 1;
                println!(
                    "trace gate: ratios outside {:.0}% on pass {} — re-measuring \
                     tracer-disabled sweep (best-of-{passes} envelope)",
                    trace_tolerance * 100.0,
                    passes - 1
                );
                cgn_bench::perf::fold_best_scales(&mut envelope, &settings);
                outcome = check_against_baseline(&envelope, &baseline, trace_tolerance);
            }
            match outcome {
                Ok(_) => println!(
                    "trace gate passed: tracer-disabled ratios within {:.0}% of baseline \
                     (best of {passes} pass(es))",
                    trace_tolerance * 100.0
                ),
                Err(failures) => {
                    for f in failures {
                        eprintln!("{f}");
                    }
                    eprintln!(
                        "trace gate FAILED: tracer-disabled configuration regressed \
                         baseline throughput ratios by more than {:.0}% on every one of \
                         {passes} passes",
                        trace_tolerance * 100.0
                    );
                    exit(1);
                }
            }
        }
    }
}
