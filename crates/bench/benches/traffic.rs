//! NAT hot-path throughput under each workload mix (flows/second).
//!
//! Each benchmark replays the identical deterministic workload slice —
//! the same subscriber population, arrivals and destinations — through
//! a fresh CGN, so the reported `thrpt` is NAT-translation flows per
//! wall-clock second under that mix's packet pattern. This is the
//! BENCH-trajectory number for the `cgn-traffic` subsystem.

use cgn_traffic::{DriverConfig, WorkloadMix};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

/// A slice small enough to iterate but large enough to exercise the
/// sweep/timeout paths: a few thousand flows per iteration.
fn slice_config(mix: WorkloadMix) -> DriverConfig {
    DriverConfig {
        subscribers: 400,
        shards: 1,
        external_ips_per_shard: 4,
        duration_secs: 120,
        sample_secs: 60,
        sweep_secs: 30,
        ..DriverConfig::new(mix, 0xBE9C)
    }
}

/// The same slice across shard counts, sequential vs. worker threads —
/// the bench-visible view of the scaling axis this crate's perf
/// harness (`--bin perf`) measures end to end.
fn sharded_config(shards: u16, threads: usize) -> DriverConfig {
    DriverConfig {
        subscribers: 800,
        shards,
        external_ips_per_shard: 2,
        threads,
        duration_secs: 120,
        sample_secs: 60,
        sweep_secs: 30,
        ..DriverConfig::new(WorkloadMix::residential_evening(), 0xBE9C)
    }
}

fn bench_sharding(c: &mut Criterion) {
    let mut g = c.benchmark_group("traffic");
    for (name, cfg) in [
        ("sharded/1x1", sharded_config(1, 1)),
        ("sharded/4x1", sharded_config(4, 1)),
        ("sharded/4xN", sharded_config(4, 0)),
    ] {
        let flows = cgn_traffic::run(&cfg).flows_started;
        g.throughput(Throughput::Elements(flows));
        g.bench_function(name, |b| b.iter(|| black_box(cgn_traffic::run(&cfg))));
    }
    g.finish();
}

fn bench_workload_mixes(c: &mut Criterion) {
    let mut g = c.benchmark_group("traffic");
    for mix in WorkloadMix::all() {
        let cfg = slice_config(mix.clone());
        // The driver is deterministic: one calibration run tells us the
        // exact flow count every timed iteration will push.
        let flows = cgn_traffic::run(&cfg).flows_started;
        g.throughput(Throughput::Elements(flows));
        g.bench_function(&format!("flows/{}", mix.name), |b| {
            b.iter(|| black_box(cgn_traffic::run(&cfg)))
        });
    }
    g.finish();
}

fn bench_packet_hot_path(c: &mut Criterion) {
    // Packet-level view of the heaviest mix, for comparing against the
    // substrate benches (`nat/outbound_*`).
    let mut g = c.benchmark_group("traffic");
    let cfg = slice_config(WorkloadMix::p2p_heavy());
    let packets = cgn_traffic::run(&cfg).packets_sent;
    g.throughput(Throughput::Elements(packets));
    g.bench_function("packets/p2p-heavy", |b| {
        b.iter(|| black_box(cgn_traffic::run(&cfg)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_workload_mixes, bench_packet_hot_path, bench_sharding
}
criterion_main!(benches);
