//! Detector ablations: the paper's conservative detectors vs naive
//! baselines, scored against ground truth.
//!
//! Quantifies what each methodological ingredient buys:
//! * clustering + the 5×5 boundary (vs "any leakage means CGN"),
//! * the top-/24 filter and 0.4·N diversity rule (vs "any IPcpe≠IPpub
//!   session means CGN").

use analysis::baseline::{self, score};
use analysis::bt_detect::BtDetector;
use analysis::nz_detect::NzNonCellularDetector;
use cgn_study::pipeline::{measure, StudyArtifacts};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netcore::AsId;
use std::collections::BTreeSet;
use std::sync::OnceLock;

fn artifacts() -> &'static StudyArtifacts {
    static ART: OnceLock<StudyArtifacts> = OnceLock::new();
    ART.get_or_init(|| measure(cgn_bench::bench_study_config(2016)))
}

fn truth_set() -> BTreeSet<AsId> {
    artifacts()
        .world
        .deployments
        .iter()
        .filter(|d| d.has_cgn())
        .map(|d| d.info.id)
        .collect()
}

fn bench_bt_ablation(c: &mut Criterion) {
    let art = artifacts();
    let mut g = c.benchmark_group("bt_detector");
    g.bench_function("paper_5x5_clusters", |b| {
        b.iter(|| black_box(BtDetector::default().detect(&art.leaks)))
    });
    g.bench_function("baseline_any_leak", |b| {
        b.iter(|| black_box(baseline::bt_any_leak(&art.leaks)))
    });
    g.bench_function("baseline_2x2_clusters", |b| {
        b.iter(|| black_box(baseline::bt_low_threshold(&art.leaks)))
    });
    g.finish();

    let truth = truth_set();
    let covered: BTreeSet<AsId> = art.leaks.iter().filter_map(|l| l.leaker_as).collect();
    let paper = BtDetector::default().detect(&art.leaks).positive_ases();
    let any = baseline::bt_any_leak(&art.leaks);
    let low = baseline::bt_low_threshold(&art.leaks);
    for (name, det) in [("paper 5x5", &paper), ("any-leak", &any), ("2x2", &low)] {
        let s = score(det, &truth, &covered);
        println!(
            "[ablation/bt] {name:<10} precision {:.2} recall {:.2} f1 {:.2}",
            s.precision, s.recall, s.f1
        );
    }
}

fn bench_nz_ablation(c: &mut Criterion) {
    let art = artifacts();
    let mut g = c.benchmark_group("nz_detector");
    g.bench_function("paper_diversity_rule", |b| {
        b.iter(|| {
            black_box(NzNonCellularDetector::default().detect(&art.sessions, &art.world.routing))
        })
    });
    g.bench_function("baseline_any_mismatch", |b| {
        b.iter(|| black_box(baseline::nz_any_mismatch(&art.sessions)))
    });
    g.finish();

    let truth = truth_set();
    let nc = NzNonCellularDetector::default().detect(&art.sessions, &art.world.routing);
    let covered: BTreeSet<AsId> = nc.keys().copied().collect();
    let paper: BTreeSet<AsId> = nc
        .iter()
        .filter(|(_, r)| r.cgn_positive)
        .map(|(a, _)| *a)
        .collect();
    let any = baseline::nz_any_mismatch(&art.sessions);
    for (name, det) in [("paper", &paper), ("any-mismatch", &any)] {
        let s = score(det, &truth, &covered);
        println!(
            "[ablation/nz] {name:<12} precision {:.2} recall {:.2} f1 {:.2}",
            s.precision, s.recall, s.f1
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_bt_ablation, bench_nz_ablation
}
criterion_main!(benches);
