//! Slab store vs. the old HashMap storage layout, at CGN-scale
//! mapping populations.
//!
//! PR 2 measured the sequential engine losing ~35% of its flows/sec
//! between 1× and 16× subscriber scale, driven by cache pressure in
//! the four per-`Nat` `HashMap` indices. This bench isolates that
//! storage layer: the same insert / lookup / churn traffic is pushed
//! through `nat_engine::store::MappingStore` (slab arena + interned
//! packed keys) and through a faithful re-creation of the old layout
//! (`mappings` by id + `out_index` + `ext_index` + `keys_by_id`, all
//! `std::collections::HashMap` with SipHash), at populations of 100k
//! and 1M mappings — the §6.2 dimensioning regime.
//!
//! ```text
//! cargo bench -p cgn-bench --bench store
//! ```
//!
//! The CI perf job uploads the output as the `BENCH_store` artifact.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use nat_engine::store::{Mapping, MappingStore};
use nat_engine::MappingBehavior;
use netcore::{Endpoint, Protocol, SimTime};
use std::collections::HashMap;
use std::net::Ipv4Addr;

const POPULATIONS: [usize; 2] = [100_000, 1_000_000];
/// Operations per timed iteration for lookup/churn benches.
const OPS: usize = 1024;

fn internal(k: usize) -> Endpoint {
    // 64 flows per host: ~1.6k hosts at 100k mappings, ~15.6k at 1M.
    let host = Ipv4Addr::from(u32::from(Ipv4Addr::new(100, 64, 0, 0)) + (k / 64) as u32);
    Endpoint::new(host, 1024 + (k % 64) as u16)
}

fn external(k: usize) -> Endpoint {
    let ip = Ipv4Addr::from(u32::from(Ipv4Addr::new(198, 18, 0, 0)) + (k / 60_000) as u32);
    Endpoint::new(ip, 1000 + (k % 60_000) as u16)
}

fn dst() -> Endpoint {
    Endpoint::new(Ipv4Addr::new(203, 0, 113, 10), 443)
}

fn mapping(k: usize) -> Mapping {
    Mapping::new(
        Protocol::Udp,
        internal(k),
        external(k),
        SimTime::ZERO,
        SimTime::from_secs(60 + (k % 600) as u64),
    )
}

// ---------------------------------------------------------------------------
// The old storage layout, reproduced: four SipHash maps, u64 ids.
// ---------------------------------------------------------------------------

type OldKey = (Protocol, Endpoint);

#[derive(Default)]
struct OldHashStore {
    mappings: HashMap<u64, Mapping>,
    out_index: HashMap<OldKey, u64>,
    ext_index: HashMap<(Protocol, Endpoint), u64>,
    keys_by_id: HashMap<u64, OldKey>,
    next_id: u64,
}

impl OldHashStore {
    fn insert(&mut self, m: Mapping) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let key = (m.proto, m.internal);
        self.ext_index.insert((m.proto, m.external), id);
        self.out_index.insert(key, id);
        self.keys_by_id.insert(id, key);
        self.mappings.insert(id, m);
        id
    }

    fn lookup(&self, proto: Protocol, internal: Endpoint) -> Option<&Mapping> {
        let id = self.out_index.get(&(proto, internal))?;
        self.mappings.get(id)
    }

    fn remove(&mut self, proto: Protocol, internal: Endpoint) -> Option<Mapping> {
        let id = self.out_index.remove(&(proto, internal))?;
        let m = self.mappings.remove(&id)?;
        self.ext_index.remove(&(m.proto, m.external));
        self.keys_by_id.remove(&id);
        Some(m)
    }
}

fn populate_slab(n: usize) -> MappingStore {
    let mut s = MappingStore::new();
    for k in 0..n {
        let key = s.out_key(
            MappingBehavior::EndpointIndependent,
            Protocol::Udp,
            internal(k),
            dst(),
        );
        s.insert(key, Protocol::Udp, mapping(k));
    }
    s
}

fn populate_old(n: usize) -> OldHashStore {
    let mut s = OldHashStore::default();
    for k in 0..n {
        s.insert(mapping(k));
    }
    s
}

fn bench_store(c: &mut Criterion) {
    for n in POPULATIONS {
        let label = if n >= 1_000_000 {
            format!("{}m", n / 1_000_000)
        } else {
            format!("{}k", n / 1_000)
        };

        {
            let mut g = c.benchmark_group(&format!("populate/{label}"));
            g.throughput(Throughput::Elements(n as u64));
            g.bench_function("slab", |b| b.iter(|| populate_slab(n).len()));
            g.bench_function("hashmap", |b| b.iter(|| populate_old(n).mappings.len()));
            g.finish();
        }

        {
            // Lookup pays the full per-packet key cost on both sides:
            // the slab derives the packed key (one interner hit) then
            // indexes the arena; the old layout hashes the tuple key
            // then chases the id through the second map.
            let mut slab = populate_slab(n);
            let old = populate_old(n);
            let mut g = c.benchmark_group(&format!("lookup_hit/{label}"));
            g.throughput(Throughput::Elements(OPS as u64));
            let mut probe = 0usize;
            g.bench_function("slab", |b| {
                b.iter(|| {
                    let mut alive = 0usize;
                    for _ in 0..OPS {
                        probe = (probe + 7919) % n;
                        let key = slab.out_key(
                            MappingBehavior::EndpointIndependent,
                            Protocol::Udp,
                            internal(probe),
                            dst(),
                        );
                        if let Some(slot) = slab.lookup_out(key) {
                            black_box(slab.get(slot).external);
                            alive += 1;
                        }
                    }
                    alive
                })
            });
            let mut probe2 = 0usize;
            g.bench_function("hashmap", |b| {
                b.iter(|| {
                    let mut alive = 0usize;
                    for _ in 0..OPS {
                        probe2 = (probe2 + 7919) % n;
                        if let Some(m) = old.lookup(Protocol::Udp, internal(probe2)) {
                            black_box(m.external);
                            alive += 1;
                        }
                    }
                    alive
                })
            });
            g.finish();
        }

        {
            let mut slab = populate_slab(n);
            let mut old = populate_old(n);
            let mut g = c.benchmark_group(&format!("churn/{label}"));
            g.throughput(Throughput::Elements(OPS as u64));
            let mut k = 0usize;
            g.bench_function("slab", |b| {
                b.iter(|| {
                    for _ in 0..OPS {
                        k = (k + 104_729) % n;
                        let key = slab.out_key(
                            MappingBehavior::EndpointIndependent,
                            Protocol::Udp,
                            internal(k),
                            dst(),
                        );
                        if let Some(slot) = slab.lookup_out(key) {
                            slab.remove(slot);
                        }
                        slab.insert(key, Protocol::Udp, mapping(k));
                    }
                    slab.len()
                })
            });
            let mut k2 = 0usize;
            g.bench_function("hashmap", |b| {
                b.iter(|| {
                    for _ in 0..OPS {
                        k2 = (k2 + 104_729) % n;
                        old.remove(Protocol::Udp, internal(k2));
                        old.insert(mapping(k2));
                    }
                    old.mappings.len()
                })
            });
            g.finish();
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(5);
    targets = bench_store
}
criterion_main!(benches);
