//! Per-experiment regeneration benches — one per table/figure group.
//!
//! Each bench measures the end-to-end cost of regenerating an experiment
//! and, once per run, prints the rows/series the paper reports so the
//! shape can be eyeballed directly from `cargo bench` output.
//!
//! The expensive phases (world build, DHT swarm + crawl, Netalyzr session
//! sweep) run once; the benches then measure the *analysis* passes, which
//! is what varies between detector designs.

use analysis::addr_class::table4;
use analysis::bt_detect::BtDetector;
use analysis::distance::{fig11, table7};
use analysis::nz_detect::{NzCellularDetector, NzNonCellularDetector};
use analysis::port_alloc::{
    fig8a_histograms, strategy_mix_per_as, table6, ChunkDetector, PortClassifier,
};
use analysis::stun_class::{fig13a_cpe_sessions, fig13b_most_permissive_per_as};
use analysis::timeouts::fig12;
use cgn_study::pipeline::{measure, StudyArtifacts};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::OnceLock;
use topology::{Survey, SurveyConfig};

fn artifacts() -> &'static StudyArtifacts {
    static ART: OnceLock<StudyArtifacts> = OnceLock::new();
    ART.get_or_init(|| measure(cgn_bench::bench_study_config(2016)))
}

fn truth(a: netcore::AsId) -> bool {
    artifacts().world.has_cgn(a)
}

fn bench_fig1_survey(c: &mut Criterion) {
    c.bench_function("fig1_survey", |b| {
        b.iter(|| {
            let s = Survey::generate(&SurveyConfig::default());
            black_box((s.cgn_shares(), s.ipv6_shares()))
        })
    });
    let s = Survey::generate(&SurveyConfig::default());
    let (d, co, n) = s.cgn_shares();
    println!(
        "[fig1] CGN deployed/considering/none = {:.0}/{:.0}/{:.0}% (paper 38/12/50)",
        100.0 * d,
        100.0 * co,
        100.0 * n
    );
}

fn bench_tables23_fig34_bt(c: &mut Criterion) {
    let art = artifacts();
    c.bench_function("tab2_tab3_fig4_bt_detection", |b| {
        b.iter(|| black_box(BtDetector::default().detect(&art.leaks)))
    });
    let det = BtDetector::default().detect(&art.leaks);
    println!(
        "[tab2] queried {} learned {} responded {}",
        art.crawl.queried.len(),
        art.crawl.learned.len(),
        art.crawl.ping_responders.len()
    );
    println!(
        "[fig4] {} leaking ASes, {} CGN-positive",
        det.per_as.len(),
        det.positive_ases().len()
    );
}

fn bench_table4(c: &mut Criterion) {
    let art = artifacts();
    c.bench_function("tab4_addr_classification", |b| {
        b.iter(|| black_box(table4(&art.sessions, &art.world.routing)))
    });
    let t = table4(&art.sessions, &art.world.routing);
    println!(
        "[tab4] cellular N={} noncell N={} cpe N={}",
        t.cellular_dev.n, t.noncellular_dev.n, t.noncellular_cpe.n
    );
}

fn bench_fig5_nz(c: &mut Criterion) {
    let art = artifacts();
    c.bench_function("fig5_nz_detection", |b| {
        b.iter(|| {
            let cell = NzCellularDetector::default().detect(&art.sessions, &art.world.routing);
            let nc = NzNonCellularDetector::default().detect(&art.sessions, &art.world.routing);
            black_box((cell, nc))
        })
    });
    let nc = NzNonCellularDetector::default().detect(&art.sessions, &art.world.routing);
    let pos = nc.values().filter(|r| r.cgn_positive).count();
    println!("[fig5] {} candidate ASes, {} positive", nc.len(), pos);
}

fn bench_fig89_table6_ports(c: &mut Criterion) {
    let art = artifacts();
    let classifier = PortClassifier::default();
    c.bench_function("fig8_fig9_tab6_port_analysis", |b| {
        b.iter(|| {
            let h = fig8a_histograms(&art.sessions, &classifier, 4096);
            let m = strategy_mix_per_as(&art.sessions, &classifier, truth);
            let ch = ChunkDetector::default().detect(&art.sessions, &classifier, truth);
            let t = table6(&m, &ch);
            black_box((h, t))
        })
    });
    let m = strategy_mix_per_as(&art.sessions, &classifier, truth);
    let ch = ChunkDetector::default().detect(&art.sessions, &classifier, truth);
    let t = table6(&m, &ch);
    println!(
        "[tab6] {} CGN ASes: preservation {:.0}% sequential {:.0}% random {:.0}%, {} chunked",
        t.ases,
        t.preservation_pct,
        t.sequential_pct,
        t.random_pct,
        t.chunked.len()
    );
}

fn bench_table7_fig11(c: &mut Criterion) {
    let art = artifacts();
    c.bench_function("tab7_fig11_ttl_analysis", |b| {
        b.iter(|| black_box((table7(&art.sessions), fig11(&art.sessions, truth))))
    });
    let t = table7(&art.sessions);
    println!(
        "[tab7] sessions {}: mismatch+found {} mismatch-only {} match+found {} neither {}",
        t.sessions,
        t.mismatch_detected,
        t.mismatch_not_detected,
        t.match_detected,
        t.match_not_detected
    );
}

fn bench_fig12_timeouts(c: &mut Criterion) {
    let art = artifacts();
    let cellular: std::collections::BTreeSet<netcore::AsId> = art
        .world
        .registry
        .iter()
        .filter(|a| a.kind.is_cellular())
        .map(|a| a.id)
        .collect();
    c.bench_function("fig12_timeout_analysis", |b| {
        b.iter(|| {
            black_box(fig12(
                &art.sessions,
                |a| cellular.contains(&a) && truth(a),
                |a| !cellular.contains(&a) && truth(a),
            ))
        })
    });
    let f = fig12(
        &art.sessions,
        |a| cellular.contains(&a) && truth(a),
        |a| !cellular.contains(&a) && truth(a),
    );
    println!(
        "[fig12] medians: cellular {:?} non-cellular {:?} cpe {:?}",
        f.cellular_cgn_per_as.map(|b| b.median),
        f.noncellular_cgn_per_as.map(|b| b.median),
        f.cpe_per_session.map(|b| b.median)
    );
}

fn bench_fig13_stun(c: &mut Criterion) {
    let art = artifacts();
    c.bench_function("fig13_stun_analysis", |b| {
        b.iter(|| {
            black_box((
                fig13a_cpe_sessions(&art.sessions, truth),
                fig13b_most_permissive_per_as(&art.sessions, truth),
            ))
        })
    });
    let a = fig13a_cpe_sessions(&art.sessions, truth);
    println!(
        "[fig13a] CPE sessions: sym {:.0}% par {:.0}% ar {:.0}% fc {:.0}%",
        100.0 * a.share_of(nat_engine::StunNatType::Symmetric),
        100.0 * a.share_of(nat_engine::StunNatType::PortAddressRestricted),
        100.0 * a.share_of(nat_engine::StunNatType::AddressRestricted),
        100.0 * a.share_of(nat_engine::StunNatType::FullCone),
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets =
        bench_fig1_survey,
        bench_tables23_fig34_bt,
        bench_table4,
        bench_fig5_nz,
        bench_fig89_table6_ports,
        bench_table7_fig11,
        bench_fig12_timeouts,
        bench_fig13_stun
}
criterion_main!(benches);
