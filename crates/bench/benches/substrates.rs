//! Substrate micro-benchmarks: the building blocks every experiment
//! exercises — NAT translation, wire codecs, routing lookups, forwarding.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use nat_engine::{Nat, NatConfig, NatVerdict};
use netcore::{ip, AsId, Endpoint, Packet, Prefix, RoutingTable, SimTime};

fn bench_nat_translation(c: &mut Criterion) {
    let mut g = c.benchmark_group("nat");
    g.throughput(Throughput::Elements(1));

    g.bench_function("outbound_new_mapping", |b| {
        let mut n = Nat::new(NatConfig::cgn_default(), vec![ip(198, 51, 100, 1)], 1);
        let mut port = 1000u16;
        let dst = Endpoint::new(ip(203, 0, 113, 10), 80);
        b.iter(|| {
            port = port.wrapping_add(1).max(1000);
            let src = Endpoint::new(ip(100, 64, 0, 1), port);
            black_box(n.process_outbound(Packet::udp(src, dst, vec![]), SimTime::ZERO))
        });
    });

    g.bench_function("outbound_reuse_mapping", |b| {
        let mut n = Nat::new(NatConfig::cgn_default(), vec![ip(198, 51, 100, 1)], 1);
        let src = Endpoint::new(ip(100, 64, 0, 1), 40_000);
        let dst = Endpoint::new(ip(203, 0, 113, 10), 80);
        let _ = n.process_outbound(Packet::udp(src, dst, vec![]), SimTime::ZERO);
        b.iter(|| black_box(n.process_outbound(Packet::udp(src, dst, vec![]), SimTime::ZERO)));
    });

    g.bench_function("inbound_established", |b| {
        let mut n = Nat::new(NatConfig::cgn_default(), vec![ip(198, 51, 100, 1)], 1);
        let src = Endpoint::new(ip(100, 64, 0, 1), 40_000);
        let dst = Endpoint::new(ip(203, 0, 113, 10), 80);
        let out = match n.process_outbound(Packet::udp(src, dst, vec![]), SimTime::ZERO) {
            NatVerdict::Forward(p) => p,
            _ => unreachable!(),
        };
        let back = Packet::udp(dst, out.src, vec![]);
        b.iter(|| black_box(n.process_inbound(back.clone(), SimTime::ZERO)));
    });
    g.finish();
}

fn bench_codecs(c: &mut Criterion) {
    let mut g = c.benchmark_group("codecs");

    let msg = {
        use bt_dht::{CompactNode, KrpcMessage, NodeId160};
        let nodes: Vec<CompactNode> = (0..8)
            .map(|i| {
                CompactNode::new(
                    NodeId160::from_u64(i),
                    Endpoint::new(ip(10, 0, 0, i as u8), 6881),
                )
            })
            .collect();
        KrpcMessage::nodes_response(b"tt", NodeId160::from_u64(9), nodes)
    };
    let wire = msg.encode();
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("krpc_encode_nodes_response", |b| {
        b.iter(|| black_box(msg.encode()))
    });
    g.bench_function("krpc_decode_nodes_response", |b| {
        b.iter(|| black_box(bt_dht::KrpcMessage::decode(&wire).expect("valid")))
    });

    let stun = netalyzr::StunMessage::response(
        [7; 12],
        Endpoint::new(ip(198, 51, 100, 7), 54_321),
        Endpoint::new(ip(203, 0, 113, 51), 3479),
    );
    let stun_wire = stun.encode();
    g.bench_function("stun_encode_response", |b| {
        b.iter(|| black_box(stun.encode()))
    });
    g.bench_function("stun_decode_response", |b| {
        b.iter(|| black_box(netalyzr::StunMessage::decode(&stun_wire).expect("valid")))
    });
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("routing");
    let mut t = RoutingTable::new();
    for i in 0..5000u32 {
        let base = ip(20 + (i / 256) as u8, (i % 256) as u8, 0, 0);
        t.announce(Prefix::new(base, 16), AsId(i));
    }
    g.throughput(Throughput::Elements(1));
    g.bench_function("lpm_lookup_hit", |b| {
        b.iter(|| black_box(t.lookup(ip(20, 100, 7, 9))));
    });
    g.bench_function("lpm_lookup_miss", |b| {
        b.iter(|| black_box(t.lookup(ip(203, 0, 113, 1))));
    });
    g.finish();
}

fn bench_forwarding(c: &mut Criterion) {
    use nat_engine::FilteringBehavior;
    use simnet::{Network, RealmId};

    let mut g = c.benchmark_group("simnet");
    let mut net = Network::new();
    let server = net.add_host(
        RealmId::PUBLIC,
        ip(203, 0, 113, 10),
        vec![ip(203, 0, 113, 1), ip(198, 19, 0, 1)],
    );
    let mut cfg = NatConfig::cgn_default();
    cfg.filtering = FilteringBehavior::EndpointIndependent;
    let (_, realm) = net.add_nat(
        cfg,
        vec![ip(198, 51, 100, 1)],
        RealmId::PUBLIC,
        vec![ip(198, 19, 2, 1)],
        ip(100, 64, 0, 1),
        false,
        1,
    );
    let dev = net.add_host(realm, ip(100, 64, 0, 20), vec![ip(198, 18, 0, 1)]);
    let src = Endpoint::new(ip(100, 64, 0, 20), 40_000);
    let dst = Endpoint::new(ip(203, 0, 113, 10), 8000);
    let _ = server;
    g.throughput(Throughput::Elements(1));
    g.bench_function("walk_through_cgn_6_hops", |b| {
        b.iter(|| black_box(net.send(dev, Packet::udp(src, dst, vec![0u8; 64]))));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_nat_translation,
    bench_codecs,
    bench_routing,
    bench_forwarding
);
criterion_main!(benches);
