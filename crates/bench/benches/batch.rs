//! Burst-pipeline throughput: the driver's event-wheel drains pushed
//! through `Nat::process_burst` at burst sizes 1/8/32/128, at 1× and
//! 16× subscriber scale.
//!
//! Burst = 1 is the scalar-equivalent reference (one packet per
//! `process_burst` call — no useful prefetch lookahead, no sorted
//! slot sweep); the larger sizes measure what the batched hot path
//! buys once the prefetcher can run ahead of translation. The setup
//! also asserts every burst size reproduces the burst=1 digest
//! bit-for-bit, so the bench doubles as an equivalence check.
//!
//! ```text
//! cargo bench -p cgn-bench --bench batch
//! ```
//!
//! The CI `batch` job uploads the output as the `BENCH_batch` artifact
//! (alongside the perf harness's `BENCH_batch.json` gate leg).

use cgn_study::dimensioning::DimensioningConfig;
use cgn_traffic::WorkloadMix;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

/// Burst sizes swept (1 = scalar-equivalent reference).
const BURSTS: [usize; 4] = [1, 8, 32, 128];
/// Subscriber scales swept.
const SCALES: [u32; 2] = [1, 16];
/// Subscribers at 1× — small enough that one 16× pass stays at
/// CI-bench seconds-scale, large enough to exceed the slab's warm set.
const BASE_SUBSCRIBERS: u32 = 120;

fn config(scale: u32, burst: usize) -> DimensioningConfig {
    let mut c = DimensioningConfig::small(2016);
    c.subscribers = BASE_SUBSCRIBERS * scale;
    c.shards = 4;
    c.external_ips_per_shard = 2;
    c.threads = 1;
    c.duration_secs = 60;
    c.sample_secs = 30;
    c.sweep_secs = 20;
    c.mixes = vec![WorkloadMix::all()[0].clone()];
    c.burst = burst;
    c
}

/// One full sweep of the reference mix; returns `(flows, digest)`.
fn sweep(scale: u32, burst: usize) -> (u64, u64) {
    let c = config(scale, burst);
    let mix = c.mixes[0].clone();
    let summary = cgn_traffic::run(&c.driver_config(mix));
    (summary.flows_started, summary.digest())
}

fn bench_batch(c: &mut Criterion) {
    for scale in SCALES {
        let (flows, reference) = sweep(scale, BURSTS[0]);
        let mut g = c.benchmark_group(&format!("burst/{scale}x"));
        g.throughput(Throughput::Elements(flows));
        for burst in BURSTS {
            let (_, digest) = sweep(scale, burst);
            assert_eq!(
                digest, reference,
                "burst={burst} diverged from the scalar-equivalent digest at {scale}x"
            );
            g.bench_function(&format!("{burst}"), |b| b.iter(|| sweep(scale, burst).0));
        }
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(3);
    targets = bench_batch
}
criterion_main!(benches);
