//! Differential test: the **inbound** burst pipeline is
//! observationally identical to packet-at-a-time processing.
//!
//! Two layers, both property-based, mirroring `batch_vs_scalar`:
//!
//! * **raw engine** — mappings are established with scalar outbound
//!   packets (identically on both twins), then each millisecond group
//!   is answered by a generated inbound group: exact replies,
//!   same-IP/different-port replies, stranger replies, inbound ICMP
//!   errors and packets to unmapped ports — the full `ContactSet`
//!   filtering matrix. One twin takes them via `process_inbound`, the
//!   other via `process_inbound_burst` at burst sizes {1, 7, 64},
//!   under each RFC 4787 filtering behaviour. Verdicts, `NatStats`,
//!   store occupancy and the per-connection telemetry log must be
//!   identical.
//! * **driver** — full runs with the inbound-reply leg enabled
//!   (`inbound_reply_permille`) at burst {1, 7, 64} × threads
//!   {1, 2, 4} must reproduce the burst=1/threads=1 run's
//!   `RunSummary`, digest and per-shard telemetry logs bit-for-bit.

use cgn_telemetry::BinaryLogSink;
use cgn_traffic::{DriverConfig, WorkloadMix};
use nat_engine::telemetry::TelemetryMode;
use nat_engine::{FilteringBehavior, Nat, NatConfig, NatVerdict};
use netcore::{Endpoint, IcmpKind, Packet, PacketBody, SimTime, TcpFlags};
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// Burst sizes the engine-level property sweeps (1 = degenerate
/// scalar-equivalent chunking, 7 = never divides the group sizes, 64
/// = larger than most groups).
const BURSTS: [usize; 3] = [1, 7, 64];
/// Worker-thread counts the driver-level property sweeps.
const THREADS: [usize; 3] = [1, 2, 4];
/// Every inbound filtering behaviour the engine implements.
const FILTERINGS: [FilteringBehavior; 3] = [
    FilteringBehavior::EndpointIndependent,
    FilteringBehavior::AddressDependent,
    FilteringBehavior::AddressAndPortDependent,
];

/// One generated outbound packet (same shape as `batch_vs_scalar`):
/// which host sends, to which destination, what transport, and how
/// many milliseconds after the previous packet.
#[derive(Debug, Clone)]
struct Step {
    host: u8,
    port: u8,
    dst: u8,
    kind: u8,
    gap_ms: u8,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (
        any::<u8>(),
        any::<u8>(),
        any::<u8>(),
        any::<u8>(),
        any::<u8>(),
    )
        .prop_map(|(host, port, dst, kind, gap)| Step {
            host: host % 24,
            port: port % 6,
            dst: dst % 5,
            kind: kind % 6,
            gap_ms: if gap % 4 == 0 { gap % 16 } else { 0 },
        })
}

fn outbound(step: &Step) -> Packet {
    let src = Endpoint::new(
        Ipv4Addr::from(u32::from(Ipv4Addr::new(100, 64, 0, 1)) + step.host as u32),
        2000 + step.port as u16 * 13,
    );
    let dst = Endpoint::new(
        Ipv4Addr::from(u32::from(Ipv4Addr::new(203, 0, 113, 1)) + step.dst as u32),
        443 + step.dst as u16,
    );
    match step.kind {
        0..=3 => Packet::udp(src, dst, vec![step.kind]),
        4 => Packet::tcp(src, dst, TcpFlags::SYN, Vec::new()),
        _ => Packet::tcp(src, dst, TcpFlags::ACK, Vec::new()),
    }
}

/// Build one millisecond group's inbound answers from that group's
/// outbound Forward verdicts. The variant cycle deliberately spans
/// the whole filtering matrix: exact reply (passes everything),
/// same-IP/new-port (drops only under port-address restriction),
/// stranger IP (drops under any restriction), inbound ICMP error, and
/// a packet to a port no mapping owns (drops everywhere).
fn replies_for(verdicts: &[NatVerdict], salt: usize) -> Vec<Packet> {
    let mut replies = Vec::new();
    for (j, v) in verdicts.iter().enumerate() {
        let NatVerdict::Forward(t) = v else { continue };
        let (ext, remote) = (t.src, t.dst);
        let udp = matches!(t.body, PacketBody::Udp { .. });
        let pkt = match (salt + j) % 5 {
            0 | 1 => {
                if udp {
                    Packet::udp(remote, ext, vec![])
                } else {
                    Packet::tcp(remote, ext, TcpFlags::ACK, Vec::new())
                }
            }
            2 => Packet::udp(
                Endpoint::new(remote.ip, remote.port.wrapping_add(1)),
                ext,
                vec![],
            ),
            3 => Packet::udp(
                Endpoint::new(Ipv4Addr::new(192, 0, 2, 66), 5353),
                ext,
                vec![],
            ),
            _ => Packet {
                src: remote,
                dst: ext,
                ttl: 64,
                body: PacketBody::Icmp {
                    kind: IcmpKind::TtlExceeded,
                    original_src: ext,
                    original_dst: remote,
                },
            },
        };
        replies.push(pkt);
        if (salt + j) % 7 == 0 {
            // An external probe to a port nothing maps: drop_no_mapping
            // on every policy, and a burst slot with no resolved key.
            replies.push(Packet::udp(
                Endpoint::new(Ipv4Addr::new(192, 0, 2, 66), 5353),
                Endpoint::new(ext.ip, 1),
                vec![],
            ));
        }
    }
    replies
}

fn fresh_nat(filtering: FilteringBehavior, seed: u64) -> Nat {
    let ips = vec![Ipv4Addr::new(198, 18, 0, 1), Ipv4Addr::new(198, 18, 0, 2)];
    let mut config = NatConfig::cgn_default();
    config.filtering = filtering;
    let mut nat = Nat::new(config, ips, seed);
    nat.set_sink(Box::new(BinaryLogSink::new(TelemetryMode::PerConnection)));
    nat
}

fn taken_log(nat: &mut Nat) -> Vec<u8> {
    let sink = nat.take_sink().expect("sink installed");
    BinaryLogSink::from_sink(sink)
        .expect("sink is a BinaryLogSink")
        .into_log()
        .bytes()
        .to_vec()
}

/// Group the steps into same-timestamp packet groups, exactly like the
/// driver's millisecond event batches.
fn groups(steps: &[Step]) -> Vec<(SimTime, Vec<Packet>)> {
    let mut out: Vec<(SimTime, Vec<Packet>)> = Vec::new();
    let mut at_ms = 0u64;
    for step in steps {
        at_ms += step.gap_ms as u64;
        let pkt = outbound(step);
        match out.last_mut() {
            Some((t, group)) if *t == SimTime::from_millis(at_ms) => group.push(pkt),
            _ => out.push((SimTime::from_millis(at_ms), vec![pkt])),
        }
    }
    out
}

/// Establish mappings identically on both twins (scalar outbound),
/// answer every group inbound — scalar on one twin, bursts on the
/// other — and compare every observable the engine exposes.
fn engine_equivalence(steps: &[Step], filtering: FilteringBehavior, burst: usize, seed: u64) {
    let groups = groups(steps);
    let mut scalar = fresh_nat(filtering, seed);
    let mut batched = fresh_nat(filtering, seed);
    let mut scalar_verdicts: Vec<NatVerdict> = Vec::new();
    let mut batched_verdicts: Vec<NatVerdict> = Vec::new();

    for (i, (now, group)) in groups.iter().enumerate() {
        // Outbound establishment: the scalar path on both twins, so
        // the only divergence under test is the inbound pipeline.
        let mut out_verdicts = Vec::with_capacity(group.len());
        for pkt in group {
            out_verdicts.push(scalar.process_outbound(pkt.clone(), *now));
            let twin = batched.process_outbound(pkt.clone(), *now);
            assert_eq!(*out_verdicts.last().unwrap(), twin, "outbound twins agree");
        }

        let replies = replies_for(&out_verdicts, i);
        for pkt in &replies {
            scalar_verdicts.push(scalar.process_inbound(pkt.clone(), *now));
        }
        for chunk in replies.chunks(burst.max(1)) {
            batched_verdicts.extend(batched.process_inbound_burst(chunk.to_vec(), *now));
        }

        if i % 16 == 15 {
            scalar.sweep(*now);
            batched.sweep(*now);
        }
    }

    let tag = format!("filtering={filtering:?} burst={burst}");
    assert_eq!(scalar_verdicts, batched_verdicts, "{tag} inbound verdicts");
    assert_eq!(scalar.stats(), batched.stats(), "{tag} NatStats");
    assert_eq!(
        scalar.store_occupancy(),
        batched.store_occupancy(),
        "{tag} store occupancy"
    );
    assert_eq!(
        scalar.port_occupancy(),
        batched.port_occupancy(),
        "{tag} port occupancy"
    );
    assert_eq!(
        taken_log(&mut scalar),
        taken_log(&mut batched),
        "{tag} telemetry log bytes"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_engine_inbound_burst_paths_are_observationally_identical(
        steps in proptest::collection::vec(step_strategy(), 1..160),
        seed in any::<u64>(),
    ) {
        for filtering in FILTERINGS {
            for burst in BURSTS {
                engine_equivalence(&steps, filtering, burst, seed);
            }
        }
    }
}

fn driver_config(seed: u64, shards: u16, burst: usize, threads: usize) -> DriverConfig {
    let mut config = DriverConfig::new(WorkloadMix::all()[0].clone(), seed);
    config.subscribers = 120;
    config.shards = shards;
    config.external_ips_per_shard = 2;
    config.threads = threads;
    config.duration_secs = 90;
    config.sample_secs = 30;
    config.sweep_secs = 20;
    config.telemetry = TelemetryMode::PerConnection;
    config.burst = burst;
    config.inbound_reply_permille = 300;
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn prop_driver_reply_leg_identical_across_bursts_and_threads(
        seed in any::<u64>(),
        shards in 1u16..=4,
    ) {
        let (reference, ref_logs) =
            cgn_traffic::run_with_logs(&driver_config(seed, shards, 1, 1));
        prop_assert!(reference.stats.in_packets > 0, "reply leg must fire");
        let ref_bytes: Vec<&[u8]> = ref_logs.iter().map(|l| l.bytes()).collect();
        for burst in BURSTS {
            for threads in THREADS {
                let (summary, logs) =
                    cgn_traffic::run_with_logs(&driver_config(seed, shards, burst, threads));
                prop_assert_eq!(
                    &summary,
                    &reference,
                    "summary diverged at burst={} threads={}",
                    burst,
                    threads
                );
                prop_assert_eq!(summary.digest(), reference.digest());
                let bytes: Vec<&[u8]> = logs.iter().map(|l| l.bytes()).collect();
                prop_assert_eq!(
                    &bytes,
                    &ref_bytes,
                    "per-shard logs diverged at burst={} threads={}",
                    burst,
                    threads
                );
            }
        }
    }
}
