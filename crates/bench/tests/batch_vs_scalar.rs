//! Differential test: the burst pipeline is observationally identical
//! to packet-at-a-time processing.
//!
//! Two layers, both property-based:
//!
//! * **raw engine** — arbitrary outbound packet sequences (UDP, TCP
//!   with arbitrary flags, ICMP pass-through; arbitrary timing with
//!   frequent same-millisecond groups; periodic sweeps) are fed to one
//!   `Nat` via `process_outbound` and to a twin via `process_burst` at
//!   burst sizes {1, 7, 64}. Verdicts, `NatStats`, store occupancy,
//!   per-host port usage and the per-connection telemetry log must be
//!   byte-identical.
//! * **driver** — full traffic-driver runs at burst {1, 7, 64} ×
//!   threads {1, 2, 4} must reproduce the burst=1/threads=1 run's
//!   `RunSummary`, digest and per-shard telemetry logs bit-for-bit.

use cgn_telemetry::BinaryLogSink;
use cgn_traffic::{DriverConfig, WorkloadMix};
use nat_engine::telemetry::TelemetryMode;
use nat_engine::{Nat, NatConfig, NatVerdict};
use netcore::{Endpoint, IcmpKind, Packet, PacketBody, SimTime, TcpFlags};
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// Burst sizes the engine-level property sweeps (1 = degenerate
/// scalar-equivalent chunking, 7 = never divides the group sizes, 64
/// = larger than most groups).
const BURSTS: [usize; 3] = [1, 7, 64];
/// Worker-thread counts the driver-level property sweeps.
const THREADS: [usize; 3] = [1, 2, 4];

/// One generated outbound packet: which host sends, to which
/// destination, what transport, and how many milliseconds after the
/// previous packet (0 keeps it in the same burst group).
#[derive(Debug, Clone)]
struct Step {
    host: u8,
    port: u8,
    dst: u8,
    kind: u8,
    gap_ms: u8,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (
        any::<u8>(),
        any::<u8>(),
        any::<u8>(),
        any::<u8>(),
        any::<u8>(),
    )
        .prop_map(|(host, port, dst, kind, gap)| Step {
            host: host % 24,
            port: port % 6,
            dst: dst % 5,
            kind: kind % 8,
            // Bias toward 0 so most packets share a timestamp and
            // burst groups actually fill.
            gap_ms: if gap % 4 == 0 { gap % 16 } else { 0 },
        })
}

fn packet(step: &Step) -> Packet {
    let src = Endpoint::new(
        Ipv4Addr::from(u32::from(Ipv4Addr::new(100, 64, 0, 1)) + step.host as u32),
        2000 + step.port as u16 * 13,
    );
    let dst = Endpoint::new(
        Ipv4Addr::from(u32::from(Ipv4Addr::new(203, 0, 113, 1)) + step.dst as u32),
        443 + step.dst as u16,
    );
    match step.kind {
        0..=3 => Packet::udp(src, dst, vec![step.kind]),
        4 => Packet::tcp(src, dst, TcpFlags::SYN, Vec::new()),
        5 => Packet::tcp(src, dst, TcpFlags::ACK, Vec::new()),
        6 => Packet::tcp(src, dst, TcpFlags::FIN, Vec::new()),
        _ => Packet {
            src,
            dst,
            ttl: 64,
            body: PacketBody::Icmp {
                kind: IcmpKind::TtlExceeded,
                original_src: src,
                original_dst: dst,
            },
        },
    }
}

fn fresh_nat(seed: u64) -> Nat {
    let ips = vec![Ipv4Addr::new(198, 18, 0, 1), Ipv4Addr::new(198, 18, 0, 2)];
    let mut nat = Nat::new(NatConfig::cgn_default(), ips, seed);
    nat.set_sink(Box::new(BinaryLogSink::new(TelemetryMode::PerConnection)));
    nat
}

fn taken_log(nat: &mut Nat) -> Vec<u8> {
    let sink = nat.take_sink().expect("sink installed");
    BinaryLogSink::from_sink(sink)
        .expect("sink is a BinaryLogSink")
        .into_log()
        .bytes()
        .to_vec()
}

/// Group the steps into same-timestamp packet groups, exactly like the
/// driver's millisecond event batches.
fn groups(steps: &[Step]) -> Vec<(SimTime, Vec<Packet>)> {
    let mut out: Vec<(SimTime, Vec<Packet>)> = Vec::new();
    let mut at_ms = 0u64;
    for step in steps {
        at_ms += step.gap_ms as u64;
        let pkt = packet(step);
        match out.last_mut() {
            Some((t, group)) if *t == SimTime::from_millis(at_ms) => group.push(pkt),
            _ => out.push((SimTime::from_millis(at_ms), vec![pkt])),
        }
    }
    out
}

/// Feed the same groups through both paths and compare every
/// observable the engine exposes.
fn engine_equivalence(steps: &[Step], burst: usize, seed: u64) {
    let groups = groups(steps);
    let mut scalar = fresh_nat(seed);
    let mut scalar_verdicts: Vec<NatVerdict> = Vec::new();
    for (i, (now, group)) in groups.iter().enumerate() {
        for pkt in group {
            scalar_verdicts.push(scalar.process_outbound(pkt.clone(), *now));
        }
        if i % 16 == 15 {
            scalar.sweep(*now);
        }
    }

    let mut batched = fresh_nat(seed);
    let mut batched_verdicts: Vec<NatVerdict> = Vec::new();
    for (i, (now, group)) in groups.iter().enumerate() {
        for chunk in group.chunks(burst.max(1)) {
            batched_verdicts.extend(batched.process_burst(chunk.to_vec(), *now));
        }
        if i % 16 == 15 {
            batched.sweep(*now);
        }
    }

    assert_eq!(scalar_verdicts, batched_verdicts, "burst={burst} verdicts");
    assert_eq!(scalar.stats(), batched.stats(), "burst={burst} NatStats");
    assert_eq!(
        scalar.store_occupancy(),
        batched.store_occupancy(),
        "burst={burst} store occupancy"
    );
    let last = groups.last().map(|(t, _)| *t).unwrap_or(SimTime::ZERO);
    assert_eq!(
        scalar.ports_by_host(last),
        batched.ports_by_host(last),
        "burst={burst} per-host port usage"
    );
    assert_eq!(
        scalar.port_occupancy(),
        batched.port_occupancy(),
        "burst={burst} port occupancy"
    );
    assert_eq!(
        taken_log(&mut scalar),
        taken_log(&mut batched),
        "burst={burst} telemetry log bytes"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_engine_burst_paths_are_observationally_identical(
        steps in proptest::collection::vec(step_strategy(), 1..200),
        seed in any::<u64>(),
    ) {
        for burst in BURSTS {
            engine_equivalence(&steps, burst, seed);
        }
    }
}

fn driver_config(seed: u64, shards: u16, burst: usize, threads: usize) -> DriverConfig {
    let mut config = DriverConfig::new(WorkloadMix::all()[0].clone(), seed);
    config.subscribers = 120;
    config.shards = shards;
    config.external_ips_per_shard = 2;
    config.threads = threads;
    config.duration_secs = 90;
    config.sample_secs = 30;
    config.sweep_secs = 20;
    config.telemetry = TelemetryMode::PerConnection;
    config.burst = burst;
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn prop_driver_runs_identical_across_bursts_and_threads(
        seed in any::<u64>(),
        shards in 1u16..=4,
    ) {
        let (reference, ref_logs) =
            cgn_traffic::run_with_logs(&driver_config(seed, shards, 1, 1));
        let ref_bytes: Vec<&[u8]> = ref_logs.iter().map(|l| l.bytes()).collect();
        for burst in BURSTS {
            for threads in THREADS {
                let (summary, logs) =
                    cgn_traffic::run_with_logs(&driver_config(seed, shards, burst, threads));
                prop_assert_eq!(
                    &summary,
                    &reference,
                    "summary diverged at burst={} threads={}",
                    burst,
                    threads
                );
                prop_assert_eq!(summary.digest(), reference.digest());
                let bytes: Vec<&[u8]> = logs.iter().map(|l| l.bytes()).collect();
                prop_assert_eq!(
                    &bytes,
                    &ref_bytes,
                    "per-shard logs diverged at burst={} threads={}",
                    burst,
                    threads
                );
            }
        }
    }
}
