//! End-to-end smoke test for `repro -- top`: bind a real
//! [`cgn_opsd::OpsServer`], publish a snapshot carrying headline
//! gauges, per-shard counters and phase-latency series, then spawn
//! the actual `repro` binary in `top` mode against it and assert the
//! rendered frames. This is the one place the whole client path —
//! scrape → `parse_scalars` → `render_top` → ANSI redraw — runs as a
//! subprocess, exactly as an operator would.

use cgn_metrics::{Snapshot, Value};
use cgn_opsd::OpsServer;
use cgn_traffic::SessionHealth;
use nat_engine::StoreOccupancy;
use std::process::Command;

fn published_state() -> (Snapshot, SessionHealth) {
    let mut snap = Snapshot::default();
    snap.push("cgn_mappings_live", Value::Gauge(777));
    snap.push("cgn_event_wheel_depth", Value::Gauge(42));
    snap.push("cgn_arena_chunks", Value::Gauge(20));
    snap.push("cgn_timers_pending", Value::Gauge(9));
    snap.push("cgn_allocator_fill_permille_worst", Value::Gauge(310));
    snap.push("cgn_mappings_created_total", Value::Counter(2000));
    snap.push("cgn_mappings_expired_total", Value::Counter(1223));
    snap.push("cgn_shard_flows_total{shard=\"0\"}", Value::Counter(1500));
    snap.push("cgn_shard_flows_total{shard=\"1\"}", Value::Counter(900));
    snap.push(
        "cgn_phase_nanos_count{phase=\"translate\"}",
        Value::Counter(150),
    );
    snap.push(
        "cgn_phase_nanos_p50{phase=\"translate\"}",
        Value::Gauge(1500),
    );
    snap.push(
        "cgn_phase_nanos_p95{phase=\"translate\"}",
        Value::Gauge(3000),
    );
    snap.push(
        "cgn_phase_nanos_p99{phase=\"translate\"}",
        Value::Gauge(8000),
    );
    snap.push(
        "cgn_phase_nanos_bucket{phase=\"translate\",le=\"1023\"}",
        Value::Counter(100),
    );
    snap.push(
        "cgn_phase_nanos_bucket{phase=\"translate\",le=\"+Inf\"}",
        Value::Counter(150),
    );
    snap.normalize();
    let health = SessionHealth {
        now_secs: 120,
        horizon_secs: 600,
        flows_started: 2000,
        flows_blocked: 0,
        flows_completed: 1223,
        packets_sent: 5000,
        event_wheel_depth: 42,
        store: StoreOccupancy::default(),
        windows_retained: 2,
        windows_evicted: 0,
    };
    (snap, health)
}

#[test]
fn top_mode_renders_live_dashboard_frames() {
    let server = OpsServer::bind("127.0.0.1:0").expect("bind scrape endpoint");
    let (snap, health) = published_state();
    server.publish(&snap, &health);
    let addr = server.local_addr().to_string();

    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["top", &addr, "--iterations=2", "--interval=0.2"])
        .output()
        .expect("spawn repro top");
    assert!(out.status.success(), "top exits cleanly: {out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf8 frames");

    // Two redraws, each prefixed by the ANSI clear sequence.
    assert_eq!(stdout.matches("\x1b[2J\x1b[H").count(), 2, "{stdout:?}");
    // Header line comes from /healthz.
    assert!(stdout.contains(&format!("cgn top — {addr}")), "{stdout}");
    assert!(stdout.contains("sim 120s/600s"), "{stdout}");
    // Headline gauges from /metrics.
    assert!(stdout.contains("live 777"), "{stdout}");
    assert!(stdout.contains("fill 310‰"), "{stdout}");
    assert!(stdout.contains("wheel 42"), "{stdout}");
    // Per-shard table and phase-latency row with its sparkline.
    assert!(stdout.contains("shard     flows/s"), "{stdout}");
    assert!(stdout.contains("translate"), "{stdout}");
    assert!(stdout.contains("1.5µs"), "{stdout}");
    assert!(
        stdout
            .lines()
            .any(|l| l.contains("translate") && l.contains('█')),
        "phase row carries a sparkline: {stdout}"
    );

    // The dashboard is a pure scrape client: both frames hit /metrics
    // and /healthz, so the server saw four requests.
    assert_eq!(server.shutdown(), 4);
}

#[test]
fn top_mode_fails_fast_when_nothing_listens() {
    // Bind-then-drop to get an address that refuses connections.
    let addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").to_string()
    };
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["top", &addr, "--iterations=1"])
        .output()
        .expect("spawn repro top");
    assert!(!out.status.success(), "dead endpoint is an error: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("/metrics failed"), "{stderr}");
}
