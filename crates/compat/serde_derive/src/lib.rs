//! # serde_derive (offline compat)
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros
//! for the workspace's offline `serde` compat layer. The build
//! environment has no crates.io access, so there is no `syn`/`quote`;
//! the item is parsed directly from the `proc_macro` token stream.
//!
//! Supported shapes (everything this workspace derives on):
//! * structs with named fields, tuple/newtype structs, unit structs;
//! * enums with unit, newtype, tuple and struct variants
//!   (externally tagged, like upstream serde's default);
//! * the `#[serde(with = "module")]` field attribute.
//!
//! Generic parameters are intentionally rejected: no serialized type in
//! this repository is generic, and supporting them without `syn` would
//! add complexity with no user.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

#[derive(Debug, Clone)]
struct Field {
    name: String,
    with: Option<String>,
}

#[derive(Debug)]
enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    body: VariantBody,
}

#[derive(Debug)]
enum VariantBody {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

/// Extract `with = "module"` from a `#[serde(...)]` attribute body; any
/// other serde attribute is a hard error (silent divergence from real
/// serde behaviour would be worse than a loud one).
fn parse_serde_attr(body: TokenStream) -> Option<String> {
    let mut it = body.into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "with" => {}
        Some(other) => panic!("unsupported #[serde(...)] attribute: {other}"),
        None => return None,
    }
    match it.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => {}
        other => panic!("expected `=` after serde(with): {other:?}"),
    }
    match it.next() {
        Some(TokenTree::Literal(lit)) => {
            let s = lit.to_string();
            Some(s.trim_matches('"').to_string())
        }
        other => panic!("expected string literal in serde(with = ...): {other:?}"),
    }
}

/// Consume one leading attribute (`#[...]`) if present; returns the
/// `with`-path when it was a `#[serde(with = "...")]` attribute.
fn skip_attrs<I: Iterator<Item = TokenTree>>(toks: &mut Peekable<I>) -> Option<String> {
    let mut with = None;
    while let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() != '#' {
            break;
        }
        toks.next();
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                let mut inner = g.stream().into_iter();
                if let Some(TokenTree::Ident(id)) = inner.next() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.next() {
                            if let Some(w) = parse_serde_attr(args.stream()) {
                                with = Some(w);
                            }
                        }
                    }
                }
            }
            other => panic!("malformed attribute: {other:?}"),
        }
    }
    with
}

/// Consume a visibility qualifier (`pub`, `pub(crate)`, ...) if present.
fn skip_vis<I: Iterator<Item = TokenTree>>(toks: &mut Peekable<I>) {
    if let Some(TokenTree::Ident(id)) = toks.peek() {
        if id.to_string() == "pub" {
            toks.next();
            if let Some(TokenTree::Group(g)) = toks.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    toks.next();
                }
            }
        }
    }
}

/// Skip one field's type (or one discriminant expression): everything up
/// to a comma at angle-bracket depth zero. Groups are single tokens, so
/// only `<`/`>` need explicit tracking.
fn skip_until_comma<I: Iterator<Item = TokenTree>>(toks: &mut Peekable<I>) {
    let mut angle: i32 = 0;
    while let Some(tok) = toks.peek() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    toks.next();
                    return;
                }
                _ => {}
            }
        }
        toks.next();
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let mut toks = ts.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let with = skip_attrs(&mut toks);
        skip_vis(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field {name}, got {other:?}"),
        }
        skip_until_comma(&mut toks);
        fields.push(Field { name, with });
    }
    fields
}

/// Count the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut toks = ts.into_iter().peekable();
    let mut count = 0;
    while toks.peek().is_some() {
        skip_attrs(&mut toks);
        skip_vis(&mut toks);
        if toks.peek().is_none() {
            break; // trailing comma
        }
        skip_until_comma(&mut toks);
        count += 1;
    }
    count
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut toks = ts.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        let body = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                VariantBody::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                VariantBody::Tuple(n)
            }
            _ => VariantBody::Unit,
        };
        // Skip an optional `= discriminant` and the separating comma.
        skip_until_comma(&mut toks);
        variants.push(Variant { name, body });
    }
    variants
}

fn parse_item(input: TokenStream) -> (String, Body) {
    let mut toks = input.into_iter().peekable();
    loop {
        skip_attrs(&mut toks);
        skip_vis(&mut toks);
        match toks.next() {
            Some(TokenTree::Ident(id)) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" {
                    let name = match toks.next() {
                        Some(TokenTree::Ident(n)) => n.to_string(),
                        other => panic!("expected item name, got {other:?}"),
                    };
                    if let Some(TokenTree::Punct(p)) = toks.peek() {
                        if p.as_char() == '<' {
                            panic!(
                                "derive(Serialize/Deserialize) compat does not support \
                                 generic type `{name}`"
                            );
                        }
                    }
                    let body = if kw == "enum" {
                        match toks.next() {
                            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                                Body::Enum(parse_variants(g.stream()))
                            }
                            other => panic!("expected enum body, got {other:?}"),
                        }
                    } else {
                        match toks.next() {
                            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                                Body::NamedStruct(parse_named_fields(g.stream()))
                            }
                            Some(TokenTree::Group(g))
                                if g.delimiter() == Delimiter::Parenthesis =>
                            {
                                Body::TupleStruct(count_tuple_fields(g.stream()))
                            }
                            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
                            other => panic!("expected struct body, got {other:?}"),
                        }
                    };
                    return (name, body);
                }
                // `union`, or stray tokens before the keyword: keep looking.
            }
            Some(_) => {}
            None => panic!("no struct/enum found in derive input"),
        }
    }
}

const ERR: &str = "<__D::Error as ::serde::de::Error>::custom";

fn gen_serialize(name: &str, body: &Body) -> String {
    let fn_body = match body {
        Body::NamedStruct(fields) => {
            let mut out = String::from(
                "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields {
                let n = &f.name;
                match &f.with {
                    Some(w) => out.push_str(&format!(
                        "__m.push((\"{n}\".to_string(), ::serde::to_value_with(\
                         |__ser| {w}::serialize(&self.{n}, __ser))));\n"
                    )),
                    None => out.push_str(&format!(
                        "__m.push((\"{n}\".to_string(), ::serde::to_value(&self.{n})));\n"
                    )),
                }
            }
            out.push_str("__s.serialize_value(::serde::Value::Map(__m))");
            out
        }
        Body::TupleStruct(1) => "__s.serialize_value(::serde::to_value(&self.0))".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::to_value(&self.{i})"))
                .collect();
            format!(
                "__s.serialize_value(::serde::Value::Seq(vec![{}]))",
                items.join(", ")
            )
        }
        Body::UnitStruct => "__s.serialize_value(::serde::Value::Null)".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.body {
                    VariantBody::Unit => arms.push_str(&format!(
                        "{name}::{vn} => __s.serialize_value(\
                         ::serde::Value::Str(\"{vn}\".to_string())),\n"
                    )),
                    VariantBody::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => __s.serialize_value(::serde::Value::Map(vec![\
                         (\"{vn}\".to_string(), ::serde::to_value(__f0))])),\n"
                    )),
                    VariantBody::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::to_value(__f{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => __s.serialize_value(::serde::Value::Map(vec![\
                             (\"{vn}\".to_string(), ::serde::Value::Seq(vec![{}]))])),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantBody::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut pushes = String::new();
                        for f in fields {
                            let fname = &f.name;
                            pushes.push_str(&format!(
                                "__fm.push((\"{fname}\".to_string(), \
                                 ::serde::to_value({fname})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n\
                             let mut __fm: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new();\n\
                             {pushes}\
                             __s.serialize_value(::serde::Value::Map(vec![\
                             (\"{vn}\".to_string(), ::serde::Value::Map(__fm))]))\n\
                             }}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __s: __S) \
         -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
         {fn_body}\n\
         }}\n\
         }}\n"
    )
}

fn gen_named_field_inits(fields: &[Field], map_var: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let n = &f.name;
        match &f.with {
            Some(w) => out.push_str(&format!(
                "{n}: {w}::deserialize(::serde::ValueDeserializer::new(\
                 ::serde::take_field(&mut {map_var}, \"{n}\"))).map_err({ERR})?,\n"
            )),
            None => out.push_str(&format!(
                "{n}: ::serde::field_from_map(&mut {map_var}, \"{n}\").map_err({ERR})?,\n"
            )),
        }
    }
    out
}

fn gen_deserialize(name: &str, body: &Body) -> String {
    let fn_body = match body {
        Body::NamedStruct(fields) => {
            let inits = gen_named_field_inits(fields, "__m");
            format!(
                "let mut __m = match __d.take_value()? {{\n\
                 ::serde::Value::Map(m) => m,\n\
                 __other => return ::std::result::Result::Err({ERR}(::std::format!(\
                 \"{name}: expected map, got {{:?}}\", __other))),\n\
                 }};\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Body::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(\
             ::serde::from_value(__d.take_value()?).map_err({ERR})?))"
        ),
        Body::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|_| {
                    format!(
                        "::serde::from_value(__it.next().expect(\"length checked\"))\
                         .map_err({ERR})?"
                    )
                })
                .collect();
            format!(
                "let __items = match __d.take_value()? {{\n\
                 ::serde::Value::Seq(v) => v,\n\
                 __other => return ::std::result::Result::Err({ERR}(::std::format!(\
                 \"{name}: expected sequence, got {{:?}}\", __other))),\n\
                 }};\n\
                 if __items.len() != {n} {{\n\
                 return ::std::result::Result::Err({ERR}(::std::format!(\
                 \"{name}: expected {n} elements, got {{}}\", __items.len())));\n\
                 }}\n\
                 let mut __it = __items.into_iter();\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Body::UnitStruct => {
            format!("let _ = __d.take_value()?;\n::std::result::Result::Ok({name})")
        }
        Body::Enum(variants) => {
            let mut str_arms = String::new();
            let mut map_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.body {
                    VariantBody::Unit => str_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantBody::Tuple(1) => map_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::from_value(__val).map_err({ERR})?)),\n"
                    )),
                    VariantBody::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|_| {
                                format!(
                                    "::serde::from_value(__it.next().expect(\"len checked\"))\
                                     .map_err({ERR})?"
                                )
                            })
                            .collect();
                        map_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __items = match __val {{\n\
                             ::serde::Value::Seq(v) => v,\n\
                             __other => return ::std::result::Result::Err({ERR}(\
                             ::std::format!(\"{name}::{vn}: expected sequence, got {{:?}}\", \
                             __other))),\n\
                             }};\n\
                             if __items.len() != {n} {{\n\
                             return ::std::result::Result::Err({ERR}(::std::format!(\
                             \"{name}::{vn}: expected {n} elements, got {{}}\", \
                             __items.len())));\n\
                             }}\n\
                             let mut __it = __items.into_iter();\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n\
                             }}\n",
                            inits.join(", ")
                        ));
                    }
                    VariantBody::Named(fields) => {
                        let inits = gen_named_field_inits(fields, "__fm");
                        map_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let mut __fm = match __val {{\n\
                             ::serde::Value::Map(m) => m,\n\
                             __other => return ::std::result::Result::Err({ERR}(\
                             ::std::format!(\"{name}::{vn}: expected map, got {{:?}}\", \
                             __other))),\n\
                             }};\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n{inits}}})\n\
                             }}\n",
                        ));
                    }
                }
            }
            format!(
                "match __d.take_value()? {{\n\
                 ::serde::Value::Str(__tag) => match __tag.as_str() {{\n\
                 {str_arms}\
                 __other => ::std::result::Result::Err({ERR}(::std::format!(\
                 \"{name}: unknown variant {{}}\", __other))),\n\
                 }},\n\
                 ::serde::Value::Map(mut __m_) if __m_.len() == 1 => {{\n\
                 let (__tag, __val) = __m_.remove(0);\n\
                 match __tag.as_str() {{\n\
                 {map_arms}\
                 __other => ::std::result::Result::Err({ERR}(::std::format!(\
                 \"{name}: unknown variant {{}}\", __other))),\n\
                 }}\n\
                 }},\n\
                 __other => ::std::result::Result::Err({ERR}(::std::format!(\
                 \"{name}: expected variant tag, got {{:?}}\", __other))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, clippy::all)]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__d: __D) \
         -> ::std::result::Result<Self, __D::Error> {{\n\
         {fn_body}\n\
         }}\n\
         }}\n"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_item(input);
    gen_serialize(&name, &body)
        .parse()
        .expect("derive(Serialize): generated code must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_item(input);
    gen_deserialize(&name, &body)
        .parse()
        .expect("derive(Deserialize): generated code must parse")
}
