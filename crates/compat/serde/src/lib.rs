//! # serde (offline compat)
//!
//! A minimal, dependency-free re-implementation of the subset of the
//! `serde` API this workspace uses. The build environment has no access
//! to crates.io, so the workspace ships its own serialization framework
//! with the same spelling: [`Serialize`] / [`Deserialize`] traits, the
//! derive macros (from the sibling `serde_derive` crate, re-exported
//! here), [`Serializer`] / [`Deserializer`] driver traits and the
//! `#[serde(with = "module")]` field attribute.
//!
//! Unlike upstream serde's 29-type data model, this implementation routes
//! everything through one self-describing [`Value`] tree (null / bool /
//! integers / float / string / sequence / string-keyed map). That is
//! exactly what a JSON-shaped pipeline needs and keeps hand-written
//! `Serializer` bounds in the workspace (e.g. the routing-table's
//! `per_len_serde` module) source-compatible with upstream.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::net::Ipv4Addr;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing serialized form.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered string-keyed map (non-string keys are rendered
    /// to strings, as JSON object keys are).
    Map(Vec<(String, Value)>),
}

/// Error type shared by every driver in this compat layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerdeError(pub String);

impl fmt::Display for SerdeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SerdeError {}

pub mod ser {
    use super::fmt;

    /// Serialization error constraint.
    pub trait Error: Sized + fmt::Display {
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    /// Sequence sub-serializer returned by `Serializer::serialize_seq`.
    pub trait SerializeSeq {
        type Ok;
        type Error;
        fn serialize_element<T: ?Sized + super::Serialize>(
            &mut self,
            value: &T,
        ) -> Result<(), Self::Error>;
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }
}

pub mod de {
    use super::fmt;

    /// Deserialization error constraint.
    pub trait Error: Sized + fmt::Display {
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }
}

impl ser::Error for SerdeError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        SerdeError(msg.to_string())
    }
}

impl de::Error for SerdeError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        SerdeError(msg.to_string())
    }
}

/// A format driver on the serialization side.
pub trait Serializer: Sized {
    type Ok;
    type Error: ser::Error;
    type SerializeSeq: ser::SerializeSeq<Ok = Self::Ok, Error = Self::Error>;

    /// Accept a fully-built [`Value`] tree.
    fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;

    /// Begin a sequence of `len` elements.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
}

/// A format driver on the deserialization side.
pub trait Deserializer<'de>: Sized {
    type Error: de::Error;

    /// Surrender the input as a [`Value`] tree.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// Types serializable into the data model.
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Types reconstructible from the data model.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

// ---------------------------------------------------------------------------
// The Value-tree driver: the one concrete Serializer/Deserializer pair.
// ---------------------------------------------------------------------------

/// Serializer that produces a [`Value`] tree.
pub struct ValueSerializer;

/// Sequence builder for [`ValueSerializer`].
pub struct ValueSeqSerializer {
    items: Vec<Value>,
}

impl ser::SerializeSeq for ValueSeqSerializer {
    type Ok = Value;
    type Error = SerdeError;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), SerdeError> {
        self.items.push(to_value(value));
        Ok(())
    }

    fn end(self) -> Result<Value, SerdeError> {
        Ok(Value::Seq(self.items))
    }
}

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = SerdeError;
    type SerializeSeq = ValueSeqSerializer;

    fn serialize_value(self, v: Value) -> Result<Value, SerdeError> {
        Ok(v)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<ValueSeqSerializer, SerdeError> {
        Ok(ValueSeqSerializer {
            items: Vec::with_capacity(len.unwrap_or(0)),
        })
    }
}

/// Deserializer that consumes a [`Value`] tree.
pub struct ValueDeserializer {
    value: Value,
}

impl ValueDeserializer {
    pub fn new(value: Value) -> Self {
        ValueDeserializer { value }
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = SerdeError;

    fn take_value(self) -> Result<Value, SerdeError> {
        Ok(self.value)
    }
}

/// Serialize `value` into a [`Value`] tree.
pub fn to_value<T: ?Sized + Serialize>(value: &T) -> Value {
    value
        .serialize(ValueSerializer)
        .expect("ValueSerializer is infallible")
}

/// Serialize through a `#[serde(with = …)]`-style function pair.
pub fn to_value_with<F>(f: F) -> Value
where
    F: FnOnce(ValueSerializer) -> Result<Value, SerdeError>,
{
    f(ValueSerializer).expect("ValueSerializer is infallible")
}

/// Reconstruct a `T` from a [`Value`] tree.
pub fn from_value<'de, T: Deserialize<'de>>(value: Value) -> Result<T, SerdeError> {
    T::deserialize(ValueDeserializer::new(value))
}

/// Remove `name` from a derive-generated struct map, `Null` if absent
/// (`Option` fields treat that as `None`; anything else reports the miss).
pub fn take_field(map: &mut Vec<(String, Value)>, name: &str) -> Value {
    match map.iter().position(|(k, _)| k == name) {
        Some(i) => map.remove(i).1,
        None => Value::Null,
    }
}

/// Typed variant of [`take_field`] with the field name in the error.
pub fn field_from_map<'de, T: Deserialize<'de>>(
    map: &mut Vec<(String, Value)>,
    name: &str,
) -> Result<T, SerdeError> {
    from_value(take_field(map, name)).map_err(|e| SerdeError(format!("field `{name}`: {e}")))
}

/// Render a key [`Value`] as a map-key string (JSON object-key style).
pub fn value_to_key(v: Value) -> Result<String, SerdeError> {
    match v {
        Value::Str(s) => Ok(s),
        Value::U64(n) => Ok(n.to_string()),
        Value::I64(n) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(SerdeError(format!("unrepresentable map key: {other:?}"))),
    }
}

/// Parse a map-key string back into the most specific key [`Value`].
pub fn key_to_value(s: String) -> Value {
    if let Ok(n) = s.parse::<u64>() {
        return Value::U64(n);
    }
    if let Ok(n) = s.parse::<i64>() {
        return Value::I64(n);
    }
    Value::Str(s)
}

// ---------------------------------------------------------------------------
// Serialize impls for std types.
// ---------------------------------------------------------------------------

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::U64(*self as u64))
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::I64(*self as i64))
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::F64(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::F64(*self as f64))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Bool(*self))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.clone()))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for Ipv4Addr {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.to_string()))
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => v.serialize(s),
            None => s.serialize_value(Value::Null),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeSeq as _;
        let mut seq = s.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::Seq(vec![$(to_value(&self.$n)),+]))
            }
        }
    )*};
}
impl_serialize_tuple!((0 T0) (0 T0, 1 T1) (0 T0, 1 T1, 2 T2) (0 T0, 1 T1, 2 T2, 3 T3));

fn serialize_map_entries<'a, S, K, V, I>(s: S, entries: I, sorted: bool) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut out: Vec<(String, Value)> = entries
        .map(|(k, v)| {
            let key = value_to_key(to_value(k)).map_err(ser::Error::custom)?;
            Ok((key, to_value(v)))
        })
        .collect::<Result<_, S::Error>>()?;
    if sorted {
        out.sort_by(|a, b| a.0.cmp(&b.0));
    }
    s.serialize_value(Value::Map(out))
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        // Sorted for output determinism across runs.
        serialize_map_entries(s, self.iter(), true)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        serialize_map_entries(s, self.iter(), false)
    }
}

impl<T: Serialize, H> Serialize for HashSet<T, H> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut items: Vec<Value> = self.iter().map(|v| to_value(v)).collect();
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        s.serialize_value(Value::Seq(items))
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Seq(self.iter().map(|v| to_value(v)).collect()))
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types.
// ---------------------------------------------------------------------------

fn type_err<T>(want: &str, got: &Value) -> Result<T, SerdeError> {
    Err(SerdeError(format!("expected {want}, got {got:?}")))
}

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                let n: u64 = match v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    other => return type_err("unsigned integer", &other).map_err(de::Error::custom),
                };
                <$t>::try_from(n).map_err(|_| de::Error::custom(format!(
                    "{} out of range for {}", n, stringify!($t)
                )))
            }
        }
    )*};
}
impl_deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                let n: i64 = match v {
                    Value::I64(n) => n,
                    Value::U64(n) if n <= i64::MAX as u64 => n as i64,
                    other => return type_err("integer", &other).map_err(de::Error::custom),
                };
                <$t>::try_from(n).map_err(|_| de::Error::custom(format!(
                    "{} out of range for {}", n, stringify!($t)
                )))
            }
        }
    )*};
}
impl_deserialize_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            other => type_err("float", &other).map_err(de::Error::custom),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|x| x as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Bool(b) => Ok(b),
            other => type_err("bool", &other).map_err(de::Error::custom),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Str(s) => Ok(s),
            other => type_err("string", &other).map_err(de::Error::custom),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(de::Error::custom(format!(
                "expected single char, got {s:?}"
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for Ipv4Addr {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        s.parse()
            .map_err(|_| de::Error::custom(format!("invalid IPv4 address {s:?}")))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Null => Ok(None),
            v => from_value(v).map(Some).map_err(de::Error::custom),
        }
    }
}

fn seq_items<'de, D: Deserializer<'de>>(d: D, want: &str) -> Result<Vec<Value>, D::Error> {
    match d.take_value()? {
        Value::Seq(items) => Ok(items),
        other => type_err(want, &other).map_err(de::Error::custom),
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        seq_items(d, "sequence")?
            .into_iter()
            .map(|v| from_value(v).map_err(de::Error::custom))
            .collect()
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(d)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| de::Error::custom(format!("expected array of {N} elements, got {len}")))
    }
}

impl<'de, T: Deserialize<'de> + Eq + Hash> Deserialize<'de> for HashSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(d).map(|v| v.into_iter().collect())
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(d).map(|v| v.into_iter().collect())
    }
}

fn map_entries<'de, D, K, V>(d: D) -> Result<Vec<(K, V)>, D::Error>
where
    D: Deserializer<'de>,
    K: Deserialize<'de>,
    V: Deserialize<'de>,
{
    match d.take_value()? {
        Value::Map(entries) => entries
            .into_iter()
            .map(|(k, v)| {
                let key: K = from_value(key_to_value(k)).map_err(de::Error::custom)?;
                let val: V = from_value(v).map_err(de::Error::custom)?;
                Ok((key, val))
            })
            .collect(),
        other => type_err("map", &other).map_err(de::Error::custom),
    }
}

impl<'de, K, V> Deserialize<'de> for HashMap<K, V>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        map_entries(d).map(|v| v.into_iter().collect())
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        map_entries(d).map(|v| v.into_iter().collect())
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($len:literal; $($n:tt $t:ident),+))*) => {$(
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let items = seq_items(d, concat!("tuple of ", $len))?;
                if items.len() != $len {
                    return Err(de::Error::custom(format!(
                        "expected tuple of {}, got {} elements", $len, items.len()
                    )));
                }
                let mut it = items.into_iter();
                Ok(($({
                    let _ = $n;
                    from_value::<$t>(it.next().expect("length checked"))
                        .map_err(de::Error::custom)?
                },)+))
            }
        }
    )*};
}
impl_deserialize_tuple!((1; 0 T0) (2; 0 T0, 1 T1) (3; 0 T0, 1 T1, 2 T2) (4; 0 T0, 1 T1, 2 T2, 3 T3));

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.take_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(from_value::<u16>(to_value(&7u16)).unwrap(), 7);
        assert_eq!(from_value::<i32>(to_value(&-3i32)).unwrap(), -3);
        assert!(from_value::<bool>(to_value(&true)).unwrap());
        assert_eq!(from_value::<String>(to_value("hi")).unwrap(), "hi");
        assert_eq!(from_value::<f64>(to_value(&1.5f64)).unwrap(), 1.5);
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(from_value::<Vec<u32>>(to_value(&v)).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert(4u32, "x".to_string());
        assert_eq!(
            from_value::<BTreeMap<u32, String>>(to_value(&m)).unwrap(),
            m
        );
        let mut h = HashMap::new();
        h.insert("k".to_string(), 9u64);
        assert_eq!(from_value::<HashMap<String, u64>>(to_value(&h)).unwrap(), h);
    }

    #[test]
    fn ip_and_option_and_tuple() {
        let ip: Ipv4Addr = "100.64.0.1".parse().unwrap();
        assert_eq!(from_value::<Ipv4Addr>(to_value(&ip)).unwrap(), ip);
        assert_eq!(from_value::<Option<u8>>(Value::Null).unwrap(), None);
        assert_eq!(
            from_value::<Option<u8>>(to_value(&Some(3u8))).unwrap(),
            Some(3)
        );
        let t = (1u8, "a".to_string());
        assert_eq!(from_value::<(u8, String)>(to_value(&t)).unwrap(), t);
    }

    #[test]
    fn hashmap_serializes_sorted() {
        let mut h = HashMap::new();
        for k in [9u32, 1, 5] {
            h.insert(k, k);
        }
        match to_value(&h) {
            Value::Map(entries) => {
                let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["1", "5", "9"]);
            }
            other => panic!("expected map, got {other:?}"),
        }
    }

    #[test]
    fn wrong_type_reports_error() {
        assert!(from_value::<u8>(Value::Str("x".into())).is_err());
        assert!(from_value::<String>(Value::U64(1)).is_err());
        assert!(from_value::<u8>(Value::U64(999)).is_err());
    }
}
