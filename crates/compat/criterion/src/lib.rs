//! # criterion (offline compat)
//!
//! A small wall-clock benchmark harness with the `criterion` API surface
//! this workspace uses: [`Criterion`], [`Criterion::benchmark_group`],
//! [`Throughput`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. The build environment has no crates.io
//! access, so the workspace ships its own harness.
//!
//! Measurement model: per benchmark, a short calibration pass sizes a
//! batch to ~`target_batch_ms`, then `sample_size` batches are timed and
//! the median per-iteration time is reported (median is robust to
//! scheduler noise, which matters more than confidence intervals here).
//! A `BENCH_FILTER` environment variable (or the first CLI argument)
//! restricts which benchmarks run, substring-matched like upstream.

use std::time::Instant;

/// Defeat constant propagation around a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Per-iteration timer handle passed to `bench_function` closures.
pub struct Bencher {
    /// Iterations per timed batch (set by calibration).
    batch: u64,
    /// Median seconds per iteration, filled by [`Bencher::iter`].
    secs_per_iter: f64,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, storing the median per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..self.batch {
                black_box(f());
            }
            samples.push(t0.elapsed().as_secs_f64() / self.batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.secs_per_iter = samples[samples.len() / 2];
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
    target_batch_ms: f64,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::var("BENCH_FILTER")
            .ok()
            .or_else(|| {
                // Skip flags cargo/libtest pass through (--bench etc).
                std::env::args().skip(1).find(|a| !a.starts_with('-'))
            })
            .filter(|s| !s.is_empty());
        Criterion {
            sample_size: 20,
            target_batch_ms: 20.0,
            filter,
        }
    }
}

impl Criterion {
    /// Number of timed batches per benchmark (builder style, like
    /// upstream's `Criterion::default().sample_size(n)`).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, None, name, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// Named group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let group = self.name.clone();
        let throughput = self.throughput;
        run_one(self.parent, Some(&group), name, throughput, f);
        self
    }

    pub fn finish(self) {}
}

fn human_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:8.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:8.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:8.2} ms", secs * 1e3)
    } else {
        format!("{secs:8.2} s ")
    }
}

fn human_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:7.3} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:7.3} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:7.3} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:7.1} {unit}/s")
    }
}

fn run_one<F>(c: &mut Criterion, group: Option<&str>, name: &str, tp: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let full = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    if let Some(filter) = &c.filter {
        if !full.contains(filter.as_str()) {
            return;
        }
    }

    // Calibration: grow the batch until one batch costs ~target_batch_ms.
    let mut bench = Bencher {
        batch: 1,
        secs_per_iter: 0.0,
        sample_size: 1,
    };
    f(&mut bench);
    let mut per_iter = bench.secs_per_iter.max(1e-9);
    let target = c.target_batch_ms / 1e3;
    let batch = ((target / per_iter).clamp(1.0, 1e9)) as u64;

    bench = Bencher {
        batch,
        secs_per_iter: 0.0,
        sample_size: c.sample_size,
    };
    f(&mut bench);
    per_iter = bench.secs_per_iter.max(1e-12);

    let mut line = format!("{full:<48} time: {}", human_time(per_iter));
    match tp {
        Some(Throughput::Elements(n)) => {
            line.push_str(&format!(
                "   thrpt: {}",
                human_rate(n as f64 / per_iter, "elem")
            ));
        }
        Some(Throughput::Bytes(n)) => {
            line.push_str(&format!(
                "   thrpt: {}",
                human_rate(n as f64 / per_iter, "B")
            ));
        }
        None => {}
    }
    println!("{line}");
}

/// Declare a benchmark group function, upstream-style (both the plain
/// and the `name = …; config = …; targets = …` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point running every declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        let mut c = Criterion::default().sample_size(3);
        // Keep the smoke test fast: tiny batches.
        c.target_batch_ms = 0.05;
        let mut ran = false;
        c.bench_function("smoke/add", |b| {
            ran = true;
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(black_box(1));
                x
            });
        });
        assert!(ran);

        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(4));
        g.bench_function("mul", |b| {
            let mut x = 1u64;
            b.iter(|| {
                x = x.wrapping_mul(black_box(3));
                x
            });
        });
        g.finish();
    }

    #[test]
    fn human_units() {
        assert!(human_time(5e-9).contains("ns"));
        assert!(human_time(5e-5).contains("µs"));
        assert!(human_time(5e-2).contains("ms"));
        assert!(human_rate(2e9, "elem").contains("Gelem/s"));
        assert!(human_rate(3.5e6, "B").contains("MB/s"));
    }
}
