//! # proptest (offline compat)
//!
//! A minimal, dependency-light re-implementation of the subset of the
//! `proptest` API this workspace uses. The build environment has no
//! crates.io access, so the workspace ships its own property-testing
//! harness with the same spelling: the [`proptest!`] macro,
//! [`Strategy`] with `prop_map` / `prop_recursive`, [`prop_oneof!`],
//! [`any`], range strategies, and the `collection::{vec, btree_map,
//! hash_set}` constructors.
//!
//! Differences from upstream, by design:
//! * cases are generated from a **fixed seed** (deterministic CI;
//!   reproducing a failure never needs a persisted regression file);
//! * no shrinking — the failing input is printed as-is by the panic;
//! * `prop_assert!` / `prop_assert_eq!` panic immediately instead of
//!   returning `Err`.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng, Standard};
use std::collections::{BTreeMap, HashSet};
use std::hash::Hash;
use std::rc::Rc;

/// Runner configuration, honoring `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite quick while still
        // exploring the space (the generator is seeded, so every run
        // covers the same 64 inputs).
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }

    /// Type-erase for storage in unions / recursion.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut StdRng| self.sample(rng)))
    }

    /// Recursive structures: `depth` levels of `f` stacked on the leaf
    /// strategy, mixing in leaves at every level so generation always
    /// terminates. `_size`/`_branch` are accepted for source
    /// compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _size: u32,
        _branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let rec = f(cur).boxed();
            cur = BoxedStrategy::union(vec![leaf.clone(), rec]);
        }
        cur
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut StdRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> BoxedStrategy<T> {
    /// Uniform choice among alternatives (the engine of [`prop_oneof!`]).
    pub fn union(options: Vec<BoxedStrategy<T>>) -> Self
    where
        T: 'static,
    {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        BoxedStrategy(Rc::new(move |rng: &mut StdRng| {
            let idx = rng.gen_range(0..options.len());
            options[idx].sample(rng)
        }))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Full-range values of `T` (`any::<u64>()` etc.).
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Standard> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

impl<T: SampleUniform + 'static> Strategy for std::ops::Range<T>
where
    std::ops::Range<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform + 'static> Strategy for std::ops::RangeInclusive<T>
where
    std::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_range_from {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}
impl_strategy_range_from!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple!(
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
);

/// Collection strategies (`proptest::collection::*`).
pub mod collection {
    use super::*;

    /// Sizes accepted by collection constructors.
    pub trait IntoSizeRange {
        /// Inclusive `(lo, hi)` length bounds.
        fn size_bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn size_bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn size_bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn size_bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.size_bounds();
        VecStrategy { elem, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.lo..=self.hi);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        val: V,
        lo: usize,
        hi: usize,
    }

    pub fn btree_map<K, V>(key: K, val: V, size: impl IntoSizeRange) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        let (lo, hi) = size.size_bounds();
        BTreeMapStrategy { key, val, lo, hi }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn sample(&self, rng: &mut StdRng) -> BTreeMap<K::Value, V::Value> {
            let target = rng.gen_range(self.lo..=self.hi);
            let mut out = BTreeMap::new();
            // Duplicate keys shrink the result, as upstream allows.
            for _ in 0..target.saturating_mul(2) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.key.sample(rng), self.val.sample(rng));
            }
            out
        }
    }

    pub struct HashSetStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    pub fn hash_set<S>(elem: S, size: impl IntoSizeRange) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        let (lo, hi) = size.size_bounds();
        HashSetStrategy { elem, lo, hi }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> HashSet<S::Value> {
            let target = rng.gen_range(self.lo..=self.hi);
            let mut out = HashSet::new();
            for _ in 0..target.saturating_mul(2) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.elem.sample(rng));
            }
            out
        }
    }
}

/// Deterministic per-case RNG: every run explores the same inputs.
pub fn case_rng(case: u32) -> StdRng {
    StdRng::seed_from_u64(0x9E37_79B9_7F4A_7C15u64 ^ ((case as u64) << 17) ^ 0x5EED)
}

/// The property-test harness macro.
#[macro_export]
macro_rules! proptest {
    // Argument-list muncher: one `let` binding per `pat in strategy` pair.
    (@let $rng:ident;) => {};
    (@let $rng:ident; mut $argn:ident in $strat:expr) => {
        let mut $argn = $crate::Strategy::sample(&($strat), &mut $rng);
    };
    (@let $rng:ident; mut $argn:ident in $strat:expr, $($rest:tt)*) => {
        let mut $argn = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::proptest! { @let $rng; $($rest)* }
    };
    (@let $rng:ident; $argn:ident in $strat:expr) => {
        let $argn = $crate::Strategy::sample(&($strat), &mut $rng);
    };
    (@let $rng:ident; $argn:ident in $strat:expr, $($rest:tt)*) => {
        let $argn = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::proptest! { @let $rng; $($rest)* }
    };
    (@cfg($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($args:tt)*) $body:block
     )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::case_rng(__case);
                    $crate::proptest! { @let __rng; $($args)* }
                    $body
                }
            }
        )+
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)+) => {
        $crate::proptest! { @cfg($crate::ProptestConfig::default()) $($rest)+ }
    };
}

/// Immediate-panic stand-in for upstream's `Err`-returning assertion.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::BoxedStrategy::union(vec![
            $($crate::Strategy::boxed($strat)),+
        ])
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 10u16..20, y in 0usize..=4, f in -1.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_respects_size(v in collection::vec(0u8..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|b| *b < 10));
        }

        #[test]
        fn map_and_tuple(pair in (0u8..4, 100u32..200).prop_map(|(a, b)| (b, a))) {
            prop_assert!((100..200).contains(&pair.0));
            prop_assert!(pair.1 < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_form_accepted(mut n in 1u64..100) {
            n += 1;
            prop_assert!(n >= 2);
        }
    }

    #[test]
    fn oneof_and_recursive_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let leaf = prop_oneof![(0u8..255).prop_map(Tree::Leaf)];
        let strat = leaf.prop_recursive(3, 16, 4, |inner| {
            collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut rng = super::case_rng(1);
        for _ in 0..200 {
            let _ = strat.sample(&mut rng);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = collection::vec(0u32..1000, 0..10);
        let once: Vec<_> = (0..5)
            .map(|c| strat.sample(&mut super::case_rng(c)))
            .collect();
        let twice: Vec<_> = (0..5)
            .map(|c| strat.sample(&mut super::case_rng(c)))
            .collect();
        assert_eq!(once, twice);
    }
}
