//! # serde_json (offline compat)
//!
//! JSON rendering/parsing over the workspace's offline `serde` compat
//! layer. Provides the spellings the workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_value`]/[`from_value`] and a
//! [`Value`] alias (the compat serde's own value tree).

use serde::{Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serialize `value` into the [`Value`] tree.
pub fn to_value<T: ?Sized + Serialize>(value: &T) -> Result<Value, Error> {
    Ok(serde::to_value(value))
}

/// Reconstruct a `T` from a [`Value`] tree.
pub fn from_value<'de, T: Deserialize<'de>>(value: Value) -> Result<T, Error> {
    serde::from_value(value).map_err(|e| Error(e.to_string()))
}

/// Compact JSON text for `value`.
pub fn to_string<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&serde::to_value(value), None, 0, &mut out);
    Ok(out)
}

/// Pretty-printed JSON text (two-space indent) for `value`.
pub fn to_string_pretty<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&serde::to_value(value), Some(2), 0, &mut out);
    Ok(out)
}

/// Parse JSON text into a `T`.
pub fn from_str<'de, T: Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    serde::from_value(v).map_err(|e| Error(e.to_string()))
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    let pad = |out: &mut String, d: usize| {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * d));
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Keep a decimal point so the value re-parses as a float.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                render(item, indent, depth + 1, out);
            }
            pad(out, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, indent, depth + 1, out);
            }
            pad(out, depth);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected ',' or ']' at byte {}, found {other:?}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected ',' or '}}' at byte {}, found {other:?}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pair handling for non-BMP chars.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_literal("\\u") {
                                    return Err(Error("lone high surrogate".into()));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error("invalid codepoint".into()))?);
                        }
                        other => return Err(Error(format!("invalid escape \\{}", other as char))),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the source slice.
                    let start = self.pos - 1;
                    let s = &self.bytes[start..];
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = s
                        .get(..width)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| Error("invalid UTF-8 in string".into()))?;
                    out.push_str(chunk);
                    self.pos = start + width;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|c| std::str::from_utf8(c).ok())
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        self.pos += 4;
        u32::from_str_radix(chunk, 16).map_err(|_| Error(format!("bad \\u escape {chunk:?}")))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .map(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if !text.contains(['.', 'e', 'E']) {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<u64>().is_ok() || stripped.parse::<i64>().is_ok() {
                    return text
                        .parse::<i64>()
                        .map(Value::I64)
                        .map_err(|_| Error(format!("integer out of range: {text}")));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number: {text}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn render_compact_and_pretty() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), vec![1u32, 2]);
        let compact = to_string(&m).unwrap();
        assert_eq!(compact, r#"{"a":[1,2]}"#);
        let pretty = to_string_pretty(&m).unwrap();
        assert!(pretty.contains("\n  \"a\": ["));
    }

    #[test]
    fn parse_round_trip() {
        let m: BTreeMap<String, Vec<u32>> = from_str(r#"{"a": [1, 2], "b": []}"#).unwrap();
        assert_eq!(m["a"], vec![1, 2]);
        assert!(m["b"].is_empty());
    }

    #[test]
    fn numbers_and_floats() {
        assert_eq!(from_str::<i64>("-5").unwrap(), -5);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }

    #[test]
    fn string_escapes() {
        let s: String = from_str(r#""line\nquote\" A 😀""#).unwrap();
        assert_eq!(s, "line\nquote\" A 😀");
        let back = to_string(&"tab\there").unwrap();
        assert_eq!(back, r#""tab\there""#);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn unicode_pass_through() {
        let s: String = from_str("\"héllo → 世界\"").unwrap();
        assert_eq!(s, "héllo → 世界");
        let rendered = to_string(&s).unwrap();
        let back: String = from_str(&rendered).unwrap();
        assert_eq!(back, s);
    }
}
