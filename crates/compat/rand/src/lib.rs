//! # rand (offline compat)
//!
//! A minimal, dependency-free re-implementation of the subset of the
//! `rand` 0.8 API this workspace uses. The build environment has no
//! access to crates.io, so the workspace ships its own deterministic
//! PRNG with the same surface: [`rngs::StdRng`], [`SeedableRng`] and the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`, `fill`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! high-quality, and fully deterministic given the seed. Sequences are
//! **not** bit-compatible with upstream `rand` (which uses ChaCha12 for
//! `StdRng`); everything in this repository only relies on same-seed →
//! same-sequence reproducibility, never on specific values.

/// Low-level uniform bit source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Types samplable uniformly from a closed range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi]` (inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                // Lemire's multiply-shift bounded sampler with rejection of
                // the biased low region; unbiased and branch-light.
                let s = span + 1;
                let threshold = s.wrapping_neg() % s;
                loop {
                    let x = rng.next_u64();
                    let m = (x as u128).wrapping_mul(s as u128);
                    if (m as u64) >= threshold {
                        return lo.wrapping_add((m >> 64) as u64 as $t);
                    }
                }
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // Shift into unsigned space to reuse the unbiased sampler.
                let ulo = (lo as $u).wrapping_add(<$t>::MIN.unsigned_abs() as $u);
                let uhi = (hi as $u).wrapping_add(<$t>::MIN.unsigned_abs() as $u);
                let s = <$u>::sample_inclusive(rng, ulo, uhi);
                s.wrapping_sub(<$t>::MIN.unsigned_abs() as $u) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * f64::standard(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * f32::standard(rng)
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                <$t>::sample_inclusive(rng, self.start, self.end - 1)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                <$t>::sample_inclusive(rng, lo, hi)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // Half-open: standard() never returns 1.0.
                self.start + (self.end - self.start) * <$t as Standard>::standard(rng)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                <$t>::sample_inclusive(rng, *self.start(), *self.end())
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Buffers fillable by [`Rng::fill`].
pub trait Fill {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// The user-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]` (matching upstream).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::standard(self) < p
    }

    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut sm: u64) -> Self {
            // SplitMix64 expansion of the seed, as the xoshiro authors
            // recommend for initializing the full state.
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let seq = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..16).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(seq(7), seq(7));
        assert_ne!(seq(7), seq(8));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u16..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn unit_interval_spans() {
        let mut r = StdRng::seed_from_u64(3);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }

    #[test]
    fn fill_covers_arrays_and_slices() {
        let mut r = StdRng::seed_from_u64(4);
        let mut id = [0u8; 20];
        r.fill(&mut id);
        assert!(id.iter().any(|b| *b != 0));
        let mut v = [0u8; 13];
        r.fill(&mut v[..]);
        assert!(v.iter().any(|b| *b != 0));
    }

    #[test]
    fn full_u64_range_supported() {
        let mut r = StdRng::seed_from_u64(5);
        let v = r.gen_range(0u64..=u64::MAX);
        let _ = v;
    }
}
